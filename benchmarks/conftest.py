"""Shared fixtures for the benchmark harness.

Every ``test_bench_*`` module regenerates one table or figure of the paper.
The benchmarks default to a representative 8-benchmark subset of SPEC2000 at
a reduced trace length so the whole harness runs in a few minutes of pure
Python.  Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run all 26 workloads (slower);
* ``REPRO_BENCH_UOPS`` — override the per-benchmark micro-op count;
* ``REPRO_BENCH_JOBS`` — fan each figure's campaign out over N worker
  processes (0 = all cores) instead of the default serial executor;
* ``REPRO_BENCH_CACHE`` — directory of a campaign result cache, so repeated
  harness runs skip simulation for unchanged cells.

Formatted result tables are printed and also written to
``benchmarks/output/<name>.txt`` so they survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.campaign import ResultCache, make_executor
from repro.campaign import ExperimentSettings

OUTPUT_DIR = Path(__file__).parent / "output"


def _default_uops() -> int:
    return int(os.environ.get("REPRO_BENCH_UOPS", "8000"))


@pytest.fixture(scope="session")
def experiment_settings() -> ExperimentSettings:
    """Experiment scale used by every figure benchmark."""
    uops = _default_uops()
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        return ExperimentSettings(uops_per_benchmark=uops)
    return ExperimentSettings.quick(uops_per_benchmark=uops)


@pytest.fixture(scope="session")
def campaign_executor():
    """Campaign executor shared by the figure benchmarks (serial by default)."""
    return make_executor(int(os.environ.get("REPRO_BENCH_JOBS", "1")))


@pytest.fixture(scope="session")
def campaign_cache():
    """Optional on-disk result cache (``REPRO_BENCH_CACHE=<dir>``)."""
    directory = os.environ.get("REPRO_BENCH_CACHE")
    return ResultCache(directory) if directory else None


@pytest.fixture(scope="session")
def report_writer():
    """Persist a formatted table under benchmarks/output/ and echo it."""

    OUTPUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> Path:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _write

"""Ablations of the design choices called out in DESIGN.md."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_bias_threshold_ablation,
    run_hop_interval_ablation,
    run_partition_count_ablation,
    run_steering_policy_ablation,
)
from repro.campaign import ExperimentSettings


@pytest.fixture(scope="module")
def ablation_settings() -> ExperimentSettings:
    """Ablations sweep many configurations, so they use a smaller workload set."""
    return ExperimentSettings(
        benchmarks=("gzip", "gcc", "swim", "equake"), uops_per_benchmark=4000
    )


def test_bench_ablation_hop_interval(
    benchmark, ablation_settings, campaign_executor, campaign_cache, report_writer
):
    """Hop-interval sweep: more frequent hops cost more misses."""
    result = benchmark.pedantic(
        run_hop_interval_ablation,
        args=(ablation_settings,),
        kwargs={"executor": campaign_executor, "cache": campaign_cache},
        rounds=1,
        iterations=1,
    )
    report_writer("ablation_hop_interval", result.format_table())
    rows = result.rows
    assert set(rows) == {"0.5x", "1x", "2x", "4x"}
    # Hopping more often loses more trace-cache hits than hopping rarely.
    assert rows["0.5x"]["hit-rate loss"] >= rows["4x"]["hit-rate loss"] - 0.01
    # Every setting still reduces the trace-cache average temperature.
    for label, row in rows.items():
        assert row["TC Average reduction"] > 0.0, label


def test_bench_ablation_bias_threshold(
    benchmark, ablation_settings, campaign_executor, campaign_cache, report_writer
):
    """Biased-mapping threshold sweep (the paper uses 3 C per halving)."""
    result = benchmark.pedantic(
        run_bias_threshold_ablation,
        args=(ablation_settings,),
        kwargs={"executor": campaign_executor, "cache": campaign_cache},
        rounds=1,
        iterations=1,
    )
    report_writer("ablation_bias_threshold", result.format_table())
    for label, row in result.rows.items():
        assert row["TC Average reduction"] > 0.0, label
        assert abs(row["slowdown"]) < 0.2, label


def test_bench_ablation_partition_count(
    benchmark, ablation_settings, campaign_executor, campaign_cache, report_writer
):
    """Two vs four frontend partitions for the distributed rename/commit."""
    result = benchmark.pedantic(
        run_partition_count_ablation,
        args=(ablation_settings,),
        kwargs={"executor": campaign_executor, "cache": campaign_cache},
        rounds=1,
        iterations=1,
    )
    report_writer("ablation_partition_count", result.format_table())
    rows = result.rows
    # Four partitions spread the activity at least as well as two.
    assert rows["4"]["ROB Average reduction"] >= rows["2"]["ROB Average reduction"] - 0.05
    # More partitions generate at least as many inter-frontend copy requests.
    assert (
        rows["4"]["inter-frontend copy requests"]
        >= rows["2"]["inter-frontend copy requests"] * 0.8
    )


def test_bench_ablation_steering_policy(
    benchmark, ablation_settings, campaign_executor, campaign_cache, report_writer
):
    """Dependence-based steering versus naive policies."""
    result = benchmark.pedantic(
        run_steering_policy_ablation,
        args=(ablation_settings,),
        kwargs={"executor": campaign_executor, "cache": campaign_cache},
        rounds=1,
        iterations=1,
    )
    report_writer("ablation_steering_policy", result.format_table())
    rows = result.rows
    # Dependence-based steering needs fewer copy micro-ops than round-robin.
    assert rows["dependence"]["copies per benchmark"] <= rows["round_robin"]["copies per benchmark"]

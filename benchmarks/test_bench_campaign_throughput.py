"""End-to-end campaign throughput: coupled vs two-stage capture+replay.

The two-stage simulation core exists for exactly one workload shape — the
paper's own: sweeping physics-side parameters (package, leakage, frequency)
over identical instruction streams.  This benchmark times that shape both
ways through the real :func:`repro.campaign.run_campaign` path and emits a
machine-readable ``benchmarks/output/BENCH_campaign.json`` (cells/s coupled,
cells/s with replay, speedup) next to the in-file baseline semantics, so the
campaign-level performance trajectory is tracked from PR to PR (the CI
workflow uploads the file as an artifact).

The sweep: one benchmark trace, :data:`SWEEP_CELLS` configurations that
differ only in leakage fraction and package convection resistance.  Coupled,
every cell pays the per-uop timing simulation; with replay, exactly one cell
does and the rest ride the captured activity trace through the array-backed
physics stage.  The acceptance floor (>= 3x cells/s) is asserted directly:
replay removes ~95% of per-cell work here, so the margin is wide even on
noisy CI hardware.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.campaign import (
    Campaign,
    ExperimentSettings,
    SerialExecutor,
    run_campaign,
)
from repro.core.presets import baseline_config

#: Cells in the physics sweep (one timing key shared by all of them).
SWEEP_CELLS = 8
#: Trace length per cell; long enough that the timing stage dominates a
#: coupled cell, short enough to keep the coupled baseline measurement fast.
SWEEP_TRACE_UOPS = 4_000
#: Acceptance floor for the two-stage path on this sweep.
MIN_SPEEDUP = 3.0


def _physics_sweep() -> Campaign:
    """A leakage x package grid over one shared instruction stream."""
    base = baseline_config()
    configs = []
    for i in range(SWEEP_CELLS):
        configs.append(
            dataclasses.replace(
                base,
                name=f"phys_{i}",
                power=dataclasses.replace(
                    base.power,
                    leakage_fraction_at_ambient=0.20 + 0.04 * (i % 4),
                ),
                thermal=dataclasses.replace(
                    base.thermal,
                    convection_resistance_k_per_w=0.14 + 0.04 * (i // 4),
                ),
            )
        )
    settings = ExperimentSettings(
        benchmarks=("gzip",), uops_per_benchmark=SWEEP_TRACE_UOPS, seed=7
    )
    return Campaign(configs, settings, name="bench_physics_sweep")


def _timed_run(campaign: Campaign, replay: bool) -> dict:
    start = time.perf_counter()
    outcome = run_campaign(campaign, executor=SerialExecutor(), replay=replay)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "cells": outcome.total_cells,
        "cells_per_second": outcome.total_cells / elapsed,
        "cells_executed": outcome.cells_executed,
        "cells_replayed": outcome.cells_replayed,
        "traces_captured": outcome.traces_captured,
    }


def test_bench_campaign_replay_throughput_json(report_writer):
    """Measure the physics sweep both ways and emit ``BENCH_campaign.json``."""
    campaign = _physics_sweep()
    coupled = _timed_run(campaign, replay=False)
    replayed = _timed_run(campaign, replay=True)
    assert coupled["cells_executed"] == SWEEP_CELLS
    assert replayed["cells_executed"] == 1
    assert replayed["cells_replayed"] == SWEEP_CELLS - 1

    speedup = replayed["cells_per_second"] / coupled["cells_per_second"]
    payload = {
        "schema_version": 1,
        "parameters": {
            "benchmark": "gzip",
            "sweep_cells": SWEEP_CELLS,
            "trace_uops": SWEEP_TRACE_UOPS,
            "executor": "SerialExecutor",
        },
        "coupled": coupled,
        "replay": replayed,
        "speedup_cells_per_second": speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    output_path = Path(__file__).parent / "output" / "BENCH_campaign.json"
    output_path.parent.mkdir(exist_ok=True)
    output_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    report_writer(
        "BENCH_campaign",
        f"physics sweep ({SWEEP_CELLS} cells x {SWEEP_TRACE_UOPS} uops): "
        f"coupled {coupled['cells_per_second']:.2f} cells/s, "
        f"capture+replay {replayed['cells_per_second']:.2f} cells/s "
        f"({replayed['cells_executed']} simulated + "
        f"{replayed['cells_replayed']} replayed), "
        f"{speedup:.1f}x [JSON: {output_path}]",
    )

    assert speedup >= MIN_SPEEDUP, (
        f"two-stage replay is only {speedup:.2f}x the coupled baseline on a "
        f"physics-only sweep (acceptance floor: {MIN_SPEEDUP}x)"
    )

"""End-to-end campaign throughput: coupled vs two-stage capture+replay.

The two-stage simulation core exists for exactly one workload shape — the
paper's own: sweeping physics-side parameters (package, leakage, frequency)
over identical instruction streams.  This benchmark times that shape both
ways through the real :func:`repro.campaign.run_campaign` path and emits a
machine-readable ``benchmarks/output/BENCH_campaign.json`` (cells/s coupled,
cells/s with replay, speedup) next to the in-file baseline semantics, so the
campaign-level performance trajectory is tracked from PR to PR (the CI
workflow uploads the file as an artifact).

The sweep: one benchmark trace, :data:`SWEEP_CELLS` configurations that
differ only in leakage fraction and package convection resistance.  Coupled,
every cell pays the per-uop timing simulation; with replay, exactly one cell
does and the rest ride the captured activity trace through the array-backed
physics stage.  The acceptance floor (>= 3x cells/s) is asserted directly:
replay removes ~95% of per-cell work here, so the margin is wide even on
noisy CI hardware.

Schema v2 adds the ``replay_batched`` section: the replay *phase itself*
timed in isolation (one captured trace, :func:`execute_replay_group` over
the same 8-cell sweep) in sequential-exact versus batched mode.  The trace
is longer here (:data:`BATCHED_TRACE_UOPS`) so the interval chain — the
part the batched engine vectorizes — dominates the one-time per-cell setup,
matching the paper-scale campaigns the engine targets.  The sweep spans two
convection values, so the group splits into two thermal sub-groups and each
interval costs exactly two batched advances (``solves_per_interval``).
``REPRO_BENCH_STRICT=1`` asserts the batched engine's >= 3x floor.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

from repro.campaign import (
    Campaign,
    ExperimentSettings,
    SerialExecutor,
    run_campaign,
    scale_paper_intervals,
)
from repro.campaign.executors import execute_cell_capture, execute_replay_group
from repro.campaign.spec import RunSpec
from repro.core.presets import baseline_config

#: Cells in the physics sweep (one timing key shared by all of them).
SWEEP_CELLS = 8
#: Trace length per cell; long enough that the timing stage dominates a
#: coupled cell, short enough to keep the coupled baseline measurement fast.
SWEEP_TRACE_UOPS = 4_000
#: Acceptance floor for the two-stage path on this sweep.
MIN_SPEEDUP = 3.0

#: Trace length for the batched-replay phase measurement (~100 thermal
#: intervals at the paper's interval scaling): interval-chain-dominated,
#: the regime batched replay exists for.
BATCHED_TRACE_UOPS = 64_000
#: Nominal thermal-interval length of the batched measurement's capture.
BATCHED_INTERVAL_CYCLES = 800
#: Acceptance floor (batched vs sequential-exact replay, strict mode).
MIN_BATCHED_SPEEDUP = 3.0
#: Repo commit whose bench output these floors were calibrated against.
BASELINE_COMMIT = "9d731dd"


def _sweep_configs():
    """The leakage x package grid over one shared instruction stream."""
    base = baseline_config()
    configs = []
    for i in range(SWEEP_CELLS):
        configs.append(
            dataclasses.replace(
                base,
                name=f"phys_{i}",
                power=dataclasses.replace(
                    base.power,
                    leakage_fraction_at_ambient=0.20 + 0.04 * (i % 4),
                ),
                thermal=dataclasses.replace(
                    base.thermal,
                    convection_resistance_k_per_w=0.14 + 0.04 * (i // 4),
                ),
            )
        )
    return configs


def _physics_sweep() -> Campaign:
    settings = ExperimentSettings(
        benchmarks=("gzip",), uops_per_benchmark=SWEEP_TRACE_UOPS, seed=7
    )
    return Campaign(_sweep_configs(), settings, name="bench_physics_sweep")


def _timed_run(campaign: Campaign, replay: bool) -> dict:
    start = time.perf_counter()
    outcome = run_campaign(campaign, executor=SerialExecutor(), replay=replay)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "cells": outcome.total_cells,
        "cells_per_second": outcome.total_cells / elapsed,
        "cells_executed": outcome.cells_executed,
        "cells_replayed": outcome.cells_replayed,
        "traces_captured": outcome.traces_captured,
    }


def _timed_replay_phase(trace, specs, mode: str, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall time of the replay phase alone."""
    mode_specs = [dataclasses.replace(s, replay_mode=mode) for s in specs]
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        results = execute_replay_group((trace, mode_specs))
        best = min(best, time.perf_counter() - start)
    assert len(results) == len(specs)
    return {
        "seconds": best,
        "cells": len(specs),
        "cells_per_second": len(specs) / best,
    }


def _batched_replay_section() -> dict:
    """Time the replay phase sequential-exact vs batched on the 8-cell sweep."""
    configs = [
        scale_paper_intervals(config, BATCHED_INTERVAL_CYCLES)
        for config in _sweep_configs()
    ]
    specs = [
        RunSpec(
            config=config,
            benchmark="gzip",
            trace_uops=BATCHED_TRACE_UOPS,
            interval_cycles=BATCHED_INTERVAL_CYCLES,
            seed=7,
        )
        for config in configs
    ]
    _, trace = execute_cell_capture(specs[0])
    sequential = _timed_replay_phase(trace, specs, "exact")
    batched = _timed_replay_phase(trace, specs, "batched")
    # Two convection values -> two thermal sub-groups -> two batched
    # advances per interval for the whole 8-cell sweep.
    thermal_groups = len(
        {config.thermal.convection_resistance_k_per_w for config in configs}
    )
    return {
        "trace_uops": BATCHED_TRACE_UOPS,
        "intervals": len(trace),
        "sweep_cells": len(specs),
        "thermal_subgroups": thermal_groups,
        "solves_per_interval": thermal_groups,
        "sequential": sequential,
        "batched": batched,
        "speedup_cells_per_second": (
            batched["cells_per_second"] / sequential["cells_per_second"]
        ),
        "min_speedup": MIN_BATCHED_SPEEDUP,
    }


def test_bench_campaign_replay_throughput_json(report_writer):
    """Measure the physics sweep both ways and emit ``BENCH_campaign.json``."""
    campaign = _physics_sweep()
    coupled = _timed_run(campaign, replay=False)
    replayed = _timed_run(campaign, replay=True)
    assert coupled["cells_executed"] == SWEEP_CELLS
    assert replayed["cells_executed"] == 1
    assert replayed["cells_replayed"] == SWEEP_CELLS - 1

    speedup = replayed["cells_per_second"] / coupled["cells_per_second"]
    replay_batched = _batched_replay_section()
    batched_speedup = replay_batched["speedup_cells_per_second"]
    payload = {
        "schema_version": 2,
        "baseline_commit": BASELINE_COMMIT,
        "parameters": {
            "benchmark": "gzip",
            "sweep_cells": SWEEP_CELLS,
            "trace_uops": SWEEP_TRACE_UOPS,
            "executor": "SerialExecutor",
        },
        "coupled": coupled,
        "replay": replayed,
        "replay_batched": replay_batched,
        "speedup_cells_per_second": speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    output_path = Path(__file__).parent / "output" / "BENCH_campaign.json"
    output_path.parent.mkdir(exist_ok=True)
    output_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    report_writer(
        "BENCH_campaign",
        f"physics sweep ({SWEEP_CELLS} cells x {SWEEP_TRACE_UOPS} uops): "
        f"coupled {coupled['cells_per_second']:.2f} cells/s, "
        f"capture+replay {replayed['cells_per_second']:.2f} cells/s "
        f"({replayed['cells_executed']} simulated + "
        f"{replayed['cells_replayed']} replayed), "
        f"{speedup:.1f}x; replay phase "
        f"({replay_batched['intervals']} intervals, "
        f"{replay_batched['solves_per_interval']} solves/interval): "
        f"sequential {replay_batched['sequential']['cells_per_second']:.0f} "
        f"cells/s, batched "
        f"{replay_batched['batched']['cells_per_second']:.0f} cells/s, "
        f"{batched_speedup:.1f}x [JSON: {output_path}]",
    )

    assert speedup >= MIN_SPEEDUP, (
        f"two-stage replay is only {speedup:.2f}x the coupled baseline on a "
        f"physics-only sweep (acceptance floor: {MIN_SPEEDUP}x)"
    )
    assert batched_speedup > 1.0
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert batched_speedup >= MIN_BATCHED_SPEEDUP, (
            f"batched group replay is only {batched_speedup:.2f}x the "
            f"sequential-exact replay phase on the {SWEEP_CELLS}-cell physics "
            f"sweep (acceptance floor: {MIN_BATCHED_SPEEDUP}x, calibrated at "
            f"{BASELINE_COMMIT})"
        )

"""Figure 1: baseline temperature of processor, frontend, backend and UL2."""

from __future__ import annotations

from repro.experiments.fig01_baseline_temperature import run_fig01


def test_bench_fig01_baseline_temperature(
    benchmark, experiment_settings, campaign_executor, campaign_cache, report_writer
):
    """Regenerate Figure 1 and check the paper's qualitative observations."""
    result = benchmark.pedantic(
        run_fig01,
        args=(experiment_settings,),
        kwargs={"executor": campaign_executor, "cache": campaign_cache},
        rounds=1,
        iterations=1,
    )
    report_writer("fig01_baseline_temperature", result.format_table())

    values = result.values
    # The frontend is (one of) the hottest processor elements — the paper's
    # motivation for distributing it.
    assert result.frontend_is_hottest_element()
    # The whole-processor peak is set by the frontend.
    assert abs(values["Processor"]["Peak"] - values["Frontend"]["Peak"]) < 1.0
    # The UL2 is the coolest element, the backend sits in between.
    assert values["UL2"]["Average"] <= values["Backend"]["Average"]
    assert values["Backend"]["Peak"] <= values["Frontend"]["Peak"]
    # Temperatures are meaningful increases over ambient (tens of degrees),
    # not numerical noise.
    assert values["Frontend"]["Peak"] > 20.0
    assert values["Frontend"]["Average"] > 10.0

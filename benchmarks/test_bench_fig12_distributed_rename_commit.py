"""Figure 12: distributed rename and commit."""

from __future__ import annotations

from repro.experiments.fig12_distributed_rename_commit import run_fig12


def test_bench_fig12_distributed_rename_commit(
    benchmark, experiment_settings, campaign_executor, campaign_cache, report_writer
):
    """Regenerate Figure 12 and check the paper's headline shape.

    Paper (Section 4.1): reorder-buffer and rename-table temperature
    increases drop by roughly a third (32-35% across the three metrics), the
    trace cache improves indirectly (about 10%) through heat spreading, the
    slowdown is about 2%, the area overhead about 3% and the distributed ROB
    uses less power than the monolithic one.
    """
    result = benchmark.pedantic(
        run_fig12,
        args=(experiment_settings,),
        kwargs={"executor": campaign_executor, "cache": campaign_cache},
        rounds=1,
        iterations=1,
    )
    report_writer("fig12_distributed_rename_commit", result.format_table())

    rob = result.reductions["ReorderBuffer"]
    rat = result.reductions["RenameTable"]
    tc = result.reductions["TraceCache"]

    # Both distributed structures see large reductions (shape: roughly a
    # third in the paper; we accept anything clearly above 15%).
    assert rob["Average"] > 0.15
    assert rat["Average"] > 0.15
    assert rob["AbsMax"] > 0.10
    assert rat["AbsMax"] > 0.10
    # The trace cache benefits indirectly, but less than the distributed
    # structures themselves.
    assert tc["Average"] > 0.0
    assert tc["Average"] < rat["Average"]
    # Small performance cost (paper: 2%).
    assert abs(result.slowdown) < 0.08
    # Distribution reduces ROB/RAT power (paper: 11% for the ROB) and costs a
    # few percent of processor area (paper: 3%).
    assert result.rob_power_reduction > 0.0
    assert 0.0 < result.area_overhead < 0.08

"""Figure 13: sub-banked thermal-aware trace cache."""

from __future__ import annotations

from repro.experiments.fig13_trace_cache import run_fig13


def test_bench_fig13_trace_cache(
    benchmark, experiment_settings, campaign_executor, campaign_cache, report_writer
):
    """Regenerate Figure 13 and check the paper's qualitative claims.

    Paper (Section 4.2): the biased mapping alone reduces the trace-cache
    peak temperature slightly but not its average; bank hopping reduces both
    (17% average, 12% peak) and also helps the rename table; the combination
    of hopping and biasing is at least as good; the proposed techniques
    outperform the blank-silicon option; slowdowns stay within a few percent.
    """
    result = benchmark.pedantic(
        run_fig13,
        args=(experiment_settings,),
        kwargs={"executor": campaign_executor, "cache": campaign_cache},
        rounds=1,
        iterations=1,
    )
    report_writer("fig13_trace_cache", result.format_table())

    biasing = result.reductions["Address Biasing"]["TraceCache"]
    hopping = result.reductions["Bank Hopping"]["TraceCache"]
    combined = result.reductions["Bank Hopping + Address Biasing"]["TraceCache"]
    blank = result.reductions["Blank silicon"]["TraceCache"]

    # Biasing alone: small peak benefit, negligible average benefit.
    assert biasing["Average"] < 0.06
    assert biasing["AbsMax"] >= -0.02
    # Hopping delivers a clear average-temperature reduction of the trace
    # cache and beats biasing alone.
    assert hopping["Average"] > 0.05
    assert hopping["Average"] > biasing["Average"]
    # Hopping (rotating gating) beats statically gated blank silicon on the
    # time-averaged-maximum metric.
    assert result.hopping_beats_blank_silicon()
    # The combination is not worse than hopping alone on the average metric
    # (allowing a small tolerance for run-to-run noise).
    assert combined["Average"] > hopping["Average"] - 0.03
    # Hit-ratio loss and slowdown stay bounded (paper: <1% hit-ratio loss,
    # 2-4% slowdown; the scaled-down traces hop orders of magnitude more
    # often relative to the trace length, so the bound is looser here).
    for label, slowdown in result.slowdowns.items():
        assert abs(slowdown) < 0.15, f"{label} slowdown {slowdown:.3f} out of range"
    assert result.hit_ratio_loss["Bank Hopping"] < 0.3
    # Area overhead of the extra bank is a few percent (paper: 1.6%).
    assert 0.0 < result.area_overhead["Bank Hopping"] < 0.06

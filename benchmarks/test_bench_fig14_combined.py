"""Figure 14: the complete distributed frontend."""

from __future__ import annotations

from repro.experiments.fig14_combined import CONFIG_LABELS, run_fig14


def test_bench_fig14_combined(
    benchmark, experiment_settings, campaign_executor, campaign_cache, report_writer
):
    """Regenerate Figure 14 and check the combined-technique shape.

    Paper (Section 4.3): combining distributed rename/commit with the
    thermal-aware bank-hopping trace cache reduces the reorder buffer,
    rename table and trace cache temperature increases by roughly 35%, 32%
    and 25%; the combination is synergistic (each structure does at least as
    well as with the individual technique that targets it).
    """
    result = benchmark.pedantic(
        run_fig14,
        args=(experiment_settings,),
        kwargs={"executor": campaign_executor, "cache": campaign_cache},
        rounds=1,
        iterations=1,
    )
    report_writer("fig14_combined", result.format_table())

    combined = result.reductions[CONFIG_LABELS["distributed_frontend"]]
    distributed = result.reductions[CONFIG_LABELS["distributed_rc"]]
    hopping = result.reductions[CONFIG_LABELS["hopping_biasing"]]

    # Clear reductions on all three structures for the full proposal.
    assert combined["ReorderBuffer"]["Average"] > 0.15
    assert combined["RenameTable"]["Average"] > 0.15
    assert combined["TraceCache"]["Average"] > 0.08
    # Synergy: the combination matches or beats the individual techniques on
    # the structures they do not target.
    assert result.combination_is_synergistic()
    # The trace cache improves more with hopping in the mix than with
    # distribution alone.
    assert combined["TraceCache"]["Average"] >= distributed["TraceCache"]["Average"] - 0.02
    # The ROB/RAT improve more with distribution in the mix than with the
    # trace-cache techniques alone.
    assert combined["ReorderBuffer"]["Average"] > hopping["ReorderBuffer"]["Average"]
    assert combined["RenameTable"]["Average"] > hopping["RenameTable"]["Average"]
    # Slowdown of the full proposal stays bounded (paper: ~4-5%; the
    # scaled-down hop interval makes flushes relatively more expensive here).
    assert abs(result.slowdowns[CONFIG_LABELS["distributed_frontend"]]) < 0.15

"""Figures 10 and 11: floorplans of the evaluated processors."""

from __future__ import annotations

from repro.experiments.floorplans import describe_floorplans
from repro.sim import blocks


def test_bench_floorplans(benchmark, report_writer):
    """Regenerate the floorplans and check their structural properties."""
    reports = benchmark.pedantic(describe_floorplans, rounds=1, iterations=1)
    text = "\n\n".join(report.format_table() for report in reports.values())
    report_writer("fig10_fig11_floorplans", text)

    baseline = reports["baseline (Figure 10)"]
    hopping = reports["bank hopping (Figure 11)"]
    distributed = reports["distributed rename/commit"]

    # The frontend occupies a minority but significant share of the die
    # (paper: about 20% for this microarchitecture).
    assert 0.10 < baseline.frontend_area_fraction() < 0.35

    # Figure 10: two trace-cache banks; Figure 11 adds the hop bank.
    assert "TC0" in baseline.floorplan and "TC1" in baseline.floorplan
    assert "TC2" not in baseline.floorplan
    assert "TC2" in hopping.floorplan

    # The distributed organization splits the ROB and RAT into partitions
    # placed where the monolithic structures used to be.
    assert "ROB0" in distributed.floorplan and "ROB1" in distributed.floorplan
    assert "RAT0" in distributed.floorplan and "RAT1" in distributed.floorplan
    assert "ROB" not in distributed.floorplan

    # Every floorplan block is adjacent to at least one other block, and the
    # UL2 spans the bottom edge of the die.
    for name, report in reports.items():
        plan = report.floorplan
        for block in plan.block_names:
            assert plan.neighbours(block), f"{name}: block {block} is isolated"
        ul2 = plan.block(blocks.UL2)
        assert abs((ul2.y + ul2.height) - plan.die_height) < 1e-9
        assert abs(ul2.width - plan.die_width) < 1e-9

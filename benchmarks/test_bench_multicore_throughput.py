"""Multi-core campaign throughput: per-core trace reuse across a physics sweep.

The chip layer's performance claim mirrors the single-core two-stage core,
one level up: a physics-side sweep over an N-core die should pay the per-uop
timing cost once per *distinct thread workload* — not once per (cell x
core).  This benchmark runs a 4-core physics-only sweep (configurations
differing only in leakage fraction) at two grid sizes and emits
``benchmarks/output/BENCH_multicore.json`` (cells/s, captures, replays),
asserting the structural property directly: ``cells_executed`` (coupled
timing simulations, captures included) stays flat — 4, one per thread
scenario — as the physics grid grows, while every added cell is a pure
composite-die physics replay.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.campaign import Campaign, ExperimentSettings, SerialExecutor, run_campaign
from repro.core.presets import baseline_config

#: Threads of the 4-core mix (one per core, mixed intensity).
MIX = ("hot_loop", "thermal_virus", "memory_bound", "idle_crawl")
#: Physics-grid sizes compared by the flatness assertion.
SMALL_CELLS = 2
LARGE_CELLS = 6
#: Trace length per thread.
TRACE_UOPS = 2_500


def _physics_sweep(cells: int) -> Campaign:
    """``cells`` leakage variants of one 4-core chip mix (one timing set)."""
    base = baseline_config()
    configs = [
        dataclasses.replace(
            base,
            name=f"chip_phys_{i}",
            power=dataclasses.replace(
                base.power, leakage_fraction_at_ambient=0.20 + 0.02 * i
            ),
        )
        for i in range(cells)
    ]
    settings = ExperimentSettings(
        benchmarks=MIX,
        uops_per_benchmark=TRACE_UOPS,
        seed=7,
        honor_relative_length=False,
    )
    return Campaign(
        configs,
        settings,
        name=f"bench_multicore_{cells}",
        cores=len(MIX),
        per_core_scenarios=(MIX,),
    )


def _timed_run(cells: int) -> dict:
    campaign = _physics_sweep(cells)
    start = time.perf_counter()
    outcome = run_campaign(campaign, executor=SerialExecutor())
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "cells": outcome.total_cells,
        "cells_per_second": outcome.total_cells / elapsed,
        "cells_executed": outcome.cells_executed,
        "cells_replayed": outcome.cells_replayed,
        "traces_captured": outcome.traces_captured,
    }


def test_bench_multicore_throughput_json(report_writer):
    """Time the 4-core physics sweep and emit ``BENCH_multicore.json``."""
    small = _timed_run(SMALL_CELLS)
    large = _timed_run(LARGE_CELLS)

    # The structural claim: timing work is per-scenario, not per-cell.
    assert small["cells_executed"] == len(MIX)
    assert large["cells_executed"] == len(MIX)
    assert small["cells_replayed"] == SMALL_CELLS
    assert large["cells_replayed"] == LARGE_CELLS

    payload = {
        "schema_version": 1,
        "parameters": {
            "mix": list(MIX),
            "cores": len(MIX),
            "trace_uops": TRACE_UOPS,
            "small_cells": SMALL_CELLS,
            "large_cells": LARGE_CELLS,
            "executor": "SerialExecutor",
        },
        "small": small,
        "large": large,
    }
    output_path = Path(__file__).parent / "output" / "BENCH_multicore.json"
    output_path.parent.mkdir(exist_ok=True)
    output_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    report_writer(
        "BENCH_multicore",
        f"4-core physics sweep ({TRACE_UOPS} uops/thread): "
        f"{SMALL_CELLS} cells at {small['cells_per_second']:.2f} cells/s, "
        f"{LARGE_CELLS} cells at {large['cells_per_second']:.2f} cells/s; "
        f"captures flat at {large['cells_executed']} "
        f"(one per thread scenario) [JSON: {output_path}]",
    )

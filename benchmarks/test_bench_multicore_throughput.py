"""Multi-core campaign throughput: per-core trace reuse across a physics sweep.

The chip layer's performance claim mirrors the single-core two-stage core,
one level up: a physics-side sweep over an N-core die should pay the per-uop
timing cost once per *distinct thread workload* — not once per (cell x
core).  This benchmark runs a 4-core physics-only sweep (configurations
differing only in leakage fraction) at two grid sizes and emits
``benchmarks/output/BENCH_multicore.json`` (cells/s, captures, replays),
asserting the structural property directly: ``cells_executed`` (coupled
timing simulations, captures included) stays flat — 4, one per thread
scenario — as the physics grid grows, while every added cell is a pure
composite-die physics replay.

A second section measures the thermal solver's dense-vs-sparse scaling on
4/16/64-core composite Laplacians (factorization time, solve time, peak
resident memory of the factorization) and folds it into the same JSON
payload.  ``REPRO_BENCH_STRICT=1`` asserts that the sparse SuperLU backend
beats the dense LAPACK factorization by at least 3x end-to-end at 16 cores
and above — the scaling claim the ``solver_backend="auto"`` threshold rests
on.
"""

from __future__ import annotations

import dataclasses
import json
import os
import resource
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.campaign import Campaign, ExperimentSettings, SerialExecutor, run_campaign
from repro.chip import build_chip_physics
from repro.core.presets import baseline_config
from repro.thermal import ThermalSolver, sparse_backend_available

#: Threads of the 4-core mix (one per core, mixed intensity).
MIX = ("hot_loop", "thermal_virus", "memory_bound", "idle_crawl")
#: Physics-grid sizes compared by the flatness assertion.
SMALL_CELLS = 2
LARGE_CELLS = 6
#: Trace length per thread.
TRACE_UOPS = 2_500

#: Die sizes of the solver-scaling section: below, at, and far beyond the
#: ``auto`` backend's sparse threshold (4 cores = 194 nodes, 16 = 770,
#: 64 = 3074).
SOLVER_CORE_COUNTS = (4, 16, 64)
#: Single-RHS steady-state solves timed per backend (the post-factorization
#: hot path of warmup and every transient interval).
SOLVER_STEADY_SOLVES = 64
#: Columns of the timed multi-RHS batch solve (the campaign replay shape).
SOLVER_BATCH_CELLS = 32


def _physics_sweep(cells: int) -> Campaign:
    """``cells`` leakage variants of one 4-core chip mix (one timing set)."""
    base = baseline_config()
    configs = [
        dataclasses.replace(
            base,
            name=f"chip_phys_{i}",
            power=dataclasses.replace(
                base.power, leakage_fraction_at_ambient=0.20 + 0.02 * i
            ),
        )
        for i in range(cells)
    ]
    settings = ExperimentSettings(
        benchmarks=MIX,
        uops_per_benchmark=TRACE_UOPS,
        seed=7,
        honor_relative_length=False,
    )
    return Campaign(
        configs,
        settings,
        name=f"bench_multicore_{cells}",
        cores=len(MIX),
        per_core_scenarios=(MIX,),
    )


def _timed_run(cells: int) -> dict:
    campaign = _physics_sweep(cells)
    start = time.perf_counter()
    outcome = run_campaign(campaign, executor=SerialExecutor())
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "cells": outcome.total_cells,
        "cells_per_second": outcome.total_cells / elapsed,
        "cells_executed": outcome.cells_executed,
        "cells_replayed": outcome.cells_replayed,
        "traces_captured": outcome.traces_captured,
    }


def _timed_backend(network, backend: str) -> dict:
    """Factorize + solve with one backend; time it and track peak memory.

    ``peak_alloc_bytes`` is the factorization's tracemalloc high-water mark
    (per-backend, comparable across backends); ``ru_maxrss_kb`` is the
    process-wide resident high-water mark after this backend ran (monotone
    across the whole pytest process — an upper bound, not a per-backend
    delta).
    """
    tracemalloc.start()
    start = time.perf_counter()
    solver = ThermalSolver(network, backend=backend)
    factor_seconds = time.perf_counter() - start
    _, peak_alloc = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    rng = np.random.default_rng(1905)
    singles = rng.uniform(0.0, 5.0, size=(network.num_nodes, SOLVER_STEADY_SOLVES))
    start = time.perf_counter()
    for i in range(SOLVER_STEADY_SOLVES):
        solver.steady_state_nodes(singles[:, i])
    solve_seconds = time.perf_counter() - start

    batch = rng.uniform(0.0, 5.0, size=(network.num_nodes, SOLVER_BATCH_CELLS))
    start = time.perf_counter()
    solver.steady_state_nodes_batch(batch)
    batch_seconds = time.perf_counter() - start

    return {
        "backend": solver.backend,
        "factor_seconds": factor_seconds,
        "solve_seconds": solve_seconds,
        "batch_seconds": batch_seconds,
        "total_seconds": factor_seconds + solve_seconds + batch_seconds,
        "peak_alloc_bytes": peak_alloc,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def _solver_scaling() -> dict:
    """Dense-vs-sparse factorization/solve scaling over composite dies."""
    config = baseline_config()
    rows = []
    for cores in SOLVER_CORE_COUNTS:
        physics, _, _ = build_chip_physics(config, cores=cores)
        network = physics.network
        g_sparse = network.conductance_sparse()
        row = {
            "cores": cores,
            "nodes": network.num_nodes,
            "nnz": int(g_sparse.nnz),
            "density": g_sparse.nnz / network.num_nodes**2,
            "dense": _timed_backend(network, "dense"),
            "sparse": _timed_backend(network, "sparse"),
        }
        row["speedup_total"] = (
            row["dense"]["total_seconds"] / row["sparse"]["total_seconds"]
        )
        rows.append(row)
    return {
        "steady_solves": SOLVER_STEADY_SOLVES,
        "batch_cells": SOLVER_BATCH_CELLS,
        "rows": rows,
    }


def test_bench_multicore_throughput_json(report_writer):
    """Time the 4-core physics sweep and emit ``BENCH_multicore.json``."""
    small = _timed_run(SMALL_CELLS)
    large = _timed_run(LARGE_CELLS)

    # The structural claim: timing work is per-scenario, not per-cell.
    assert small["cells_executed"] == len(MIX)
    assert large["cells_executed"] == len(MIX)
    assert small["cells_replayed"] == SMALL_CELLS
    assert large["cells_replayed"] == LARGE_CELLS

    solver = (
        _solver_scaling()
        if sparse_backend_available()
        else {"skipped": "scipy unavailable"}
    )

    payload = {
        "schema_version": 2,
        "parameters": {
            "mix": list(MIX),
            "cores": len(MIX),
            "trace_uops": TRACE_UOPS,
            "small_cells": SMALL_CELLS,
            "large_cells": LARGE_CELLS,
            "solver_core_counts": list(SOLVER_CORE_COUNTS),
            "executor": "SerialExecutor",
        },
        "small": small,
        "large": large,
        "solver": solver,
    }
    output_path = Path(__file__).parent / "output" / "BENCH_multicore.json"
    output_path.parent.mkdir(exist_ok=True)
    output_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    solver_note = ""
    if "rows" in solver:
        largest = solver["rows"][-1]
        solver_note = (
            f"; solver at {largest['cores']} cores ({largest['nodes']} nodes, "
            f"{largest['density']:.1%} dense): sparse "
            f"{largest['speedup_total']:.1f}x faster end-to-end"
        )
    report_writer(
        "BENCH_multicore",
        f"4-core physics sweep ({TRACE_UOPS} uops/thread): "
        f"{SMALL_CELLS} cells at {small['cells_per_second']:.2f} cells/s, "
        f"{LARGE_CELLS} cells at {large['cells_per_second']:.2f} cells/s; "
        f"captures flat at {large['cells_executed']} "
        f"(one per thread scenario){solver_note} [JSON: {output_path}]",
    )

    if "rows" in solver and os.environ.get("REPRO_BENCH_STRICT") == "1":
        for row in solver["rows"]:
            if row["nodes"] < 256:  # below the auto threshold, no claim
                continue
            assert (
                row["sparse"]["total_seconds"] * 3.0
                <= row["dense"]["total_seconds"]
            ), (
                f"sparse backend is only {row['speedup_total']:.2f}x the dense "
                f"one at {row['cores']} cores / {row['nodes']} nodes "
                "(expected >= 3x on comparable hardware — the "
                "solver_backend='auto' threshold rests on this)"
            )

"""Load benchmark of the campaign service HTTP pipeline.

Boots an in-process :class:`~repro.service.manager.CampaignService` behind
its :class:`~repro.service.server.ServiceServer`, fires a repeat-heavy
workload at it over real HTTP, and emits a machine-readable
``benchmarks/output/BENCH_service.json`` (uploaded by CI) with:

* **submission throughput and p99 latency** — timed ``POST /jobs`` calls
  (the submit path validates the spec and enqueues; it must never wait for
  simulation);
* **aggregate cells/s** — total cells completed across every job divided
  by the wall-clock of the whole run; and
* **cache hit rate** on the repeat-heavy workload: wave 1 populates the
  shared sharded cache with :data:`DISTINCT_SPECS` distinct campaigns,
  wave 2 re-submits them :data:`REPEAT_ROUNDS` times — the issue's
  acceptance floor (hit rate > 0.5) is asserted in-file.

Correctness rides along: every repeat job's result payload must be
identical to its wave-1 original (the cache is content-addressed, so a
hit IS the original document).

A second section (schema v2, ``worker_runtime`` key) benchmarks the
process-worker runtime itself on a replay-heavy workload: the same
power-sweep replay groups driven through fork-per-task workers
(``keepalive=False``, cold caches every task) and through persistent
workers (``keepalive=True``, warm solver/trace caches), recording cells/s
and task-latency percentiles for both.  ``REPRO_BENCH_STRICT=1`` asserts
the persistent runtime's >= 2x cells/s floor.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

from repro.campaign import Campaign, ExperimentSettings
from repro.campaign.executors import execute_cell_capture, execute_replay_group
from repro.core.presets import baseline_config
from repro.service import (
    CampaignService,
    ServiceClient,
    ShardedResultCache,
    WorkerPool,
    create_server,
)
from repro.service.manager import PoolBackedExecutor
from repro.sim.serialization import result_to_dict
from repro.sim.warmcache import warm_cache

#: Distinct campaign specs in the populate wave (2 cells each).
DISTINCT_SPECS = 4
#: How many times wave 2 re-submits each distinct spec.
REPEAT_ROUNDS = 3
#: Micro-ops per cell; small enough to keep the bench quick, large enough
#: that simulated work dominates HTTP overhead.
TRACE_UOPS = 1_200
#: Acceptance floor from the issue: repeat-heavy traffic must be served
#: mostly from the shared cache.
MIN_HIT_RATE = 0.5

_BENCH_PAIRS = (("gzip", "swim"), ("mcf", "eon"), ("gzip", "mcf"), ("swim", "eon"))


def _specs() -> list:
    return [
        {
            "name": f"bench-{i}",
            "benchmarks": list(_BENCH_PAIRS[i % len(_BENCH_PAIRS)]),
            "uops": TRACE_UOPS,
            "seed": 11 + i,
        }
        for i in range(DISTINCT_SPECS)
    ]


def _submit_all(client: ServiceClient, specs) -> tuple:
    """POST every spec, returning (job ids, per-request submit latencies)."""
    ids, latencies = [], []
    for spec in specs:
        start = time.perf_counter()
        job = client.submit(spec)
        latencies.append(time.perf_counter() - start)
        ids.append(job["id"])
    return ids, latencies


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index]


def test_bench_service_throughput_json(tmp_path, report_writer):
    cache = ShardedResultCache(tmp_path / "cache", shards=8)
    service = CampaignService(
        pool=WorkerPool(workers=4, mode="thread"),
        cache=cache,
        max_concurrent_jobs=4,
    )
    server = create_server(service)
    server.serve_in_background()
    client = ServiceClient(server.address, timeout=60)
    try:
        wall_start = time.perf_counter()
        specs = _specs()

        # Wave 1: populate the cache with the distinct specs.
        first_ids, latencies = _submit_all(client, specs)
        originals = {}
        for spec_index, job_id in enumerate(first_ids):
            final = client.wait(job_id, timeout=600)
            assert final["state"] == "done"
            originals[spec_index] = json.dumps(
                final["results"]["summaries"], sort_keys=True
            )

        # Wave 2: repeat-heavy traffic — every spec again, several rounds.
        repeat_ids = []
        for _ in range(REPEAT_ROUNDS):
            ids, more = _submit_all(client, specs)
            latencies.extend(more)
            repeat_ids.append(ids)
        cache_hits = 0
        for ids in repeat_ids:
            for spec_index, job_id in enumerate(ids):
                final = client.wait(job_id, timeout=600)
                assert final["state"] == "done"
                cache_hits += final["cache_hits"]
                served = json.dumps(
                    final["results"]["summaries"], sort_keys=True
                )
                assert served == originals[spec_index]
        wall_seconds = time.perf_counter() - wall_start

        metrics = client.metrics()
        total_jobs = DISTINCT_SPECS * (1 + REPEAT_ROUNDS)
        total_cells = 2 * total_jobs
        hit_rate = cache_hits / total_cells
        payload = {
            "schema_version": 2,
            "parameters": {
                "distinct_specs": DISTINCT_SPECS,
                "repeat_rounds": REPEAT_ROUNDS,
                "cells_per_job": 2,
                "trace_uops": TRACE_UOPS,
                "workers": 4,
                "worker_mode": "thread",
                "cache_shards": 8,
            },
            "jobs": total_jobs,
            "wall_seconds": wall_seconds,
            "requests_per_second": len(latencies) / sum(latencies),
            "submit_latency_p50_seconds": _percentile(latencies, 0.50),
            "submit_latency_p99_seconds": _percentile(latencies, 0.99),
            "cells_per_second_aggregate": total_cells / wall_seconds,
            "cache_hit_rate": hit_rate,
            "min_cache_hit_rate": MIN_HIT_RATE,
            "server_metrics": {
                "pool": metrics["pool"],
                "cache": metrics["cache"],
                "jobs": metrics["jobs"],
            },
        }
        output_path = Path(__file__).parent / "output" / "BENCH_service.json"
        output_path.parent.mkdir(exist_ok=True)
        output_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        report_writer(
            "BENCH_service",
            f"{total_jobs} jobs ({total_cells} cells) over HTTP in "
            f"{wall_seconds:.2f}s: "
            f"{payload['requests_per_second']:.0f} submits/s "
            f"(p99 {payload['submit_latency_p99_seconds'] * 1000:.1f} ms), "
            f"{payload['cells_per_second_aggregate']:.2f} cells/s aggregate, "
            f"cache hit rate {hit_rate:.2f} [JSON: {output_path}]",
        )

        assert metrics["jobs"]["done"] == total_jobs
        assert hit_rate > MIN_HIT_RATE, (
            f"repeat-heavy workload only hit the cache at {hit_rate:.2f} "
            f"(acceptance floor: {MIN_HIT_RATE})"
        )
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(drain=False, timeout=60)


# ----------------------------------------------------------------------
# Worker runtime: fork-per-task vs persistent workers (schema v2 section)
# ----------------------------------------------------------------------

#: Replay-group tasks per phase and power-side variants per task.  Every
#: task replays the SAME captured trace, so a persistent worker decodes it
#: once and factorizes the thermal solver once, while fork-per-task pays
#: both (plus the fork) on every single task.
RUNTIME_TASKS = 12
RUNTIME_VARIANTS = 3
RUNTIME_UOPS = 1_200
RUNTIME_WORKERS = 2
#: Acceptance floor from the issue: persistent workers must at least
#: double replay-heavy throughput over fork-per-task.
MIN_WARM_SPEEDUP = 2.0


def _runtime_tasks():
    """One captured trace + RUNTIME_TASKS identical power-sweep groups."""
    settings = ExperimentSettings(
        benchmarks=("gzip",), uops_per_benchmark=RUNTIME_UOPS, seed=23
    )
    spec = Campaign.single(baseline_config(), settings).cells()[0]
    _, trace = execute_cell_capture(spec)
    variants = []
    for index in range(RUNTIME_VARIANTS):
        config = dataclasses.replace(
            spec.config,
            name=f"bench_variant_{index}",
            power=dataclasses.replace(
                spec.config.power,
                leakage_fraction_at_ambient=0.20 + 0.04 * index,
            ),
        )
        variants.append(dataclasses.replace(spec, config=config))
    return trace, [(trace, tuple(variants))] * RUNTIME_TASKS


def _run_runtime_phase(keepalive: bool, tasks) -> tuple:
    """Time one fan-out; returns (result docs, phase stats)."""
    # Forked children inherit the parent's process-global warm cache —
    # clear it first so the cold phase is genuinely cold and the warm
    # phase measures in-worker warm-up, not inherited state.
    warm_cache().clear()
    pool = WorkerPool(workers=RUNTIME_WORKERS, mode="process", keepalive=keepalive)
    try:
        executor = PoolBackedExecutor(pool)
        start = time.perf_counter()
        groups = executor.run_tasks(execute_replay_group, tasks)
        pool.drain(timeout=600)
        wall = time.perf_counter() - start
        metrics = pool.metrics()
    finally:
        pool.shutdown()
    docs = [
        json.dumps(result_to_dict(result), sort_keys=True)
        for group in groups
        for result in group
    ]
    cells = len(tasks) * RUNTIME_VARIANTS
    stats = {
        "keepalive": keepalive,
        "wall_seconds": wall,
        "cells_per_second": cells / wall,
        "task_latency_p50_seconds": metrics["task_latency_p50_seconds"],
        "task_latency_p99_seconds": metrics["task_latency_p99_seconds"],
        "worker_respawns": metrics["worker_respawns"],
        "warm_cache": metrics["warm_cache"],
    }
    return docs, stats


def test_bench_worker_runtime_warm_vs_cold(report_writer):
    trace, tasks = _runtime_tasks()

    cold_docs, cold = _run_runtime_phase(keepalive=False, tasks=tasks)
    warm_docs, warm = _run_runtime_phase(keepalive=True, tasks=tasks)

    # Byte-identity first: the warm runtime must not change a single result.
    assert warm_docs == cold_docs, "warm replay diverged from fork-per-task"

    speedup = warm["cells_per_second"] / cold["cells_per_second"]
    section = {
        "parameters": {
            "tasks": RUNTIME_TASKS,
            "variants_per_task": RUNTIME_VARIANTS,
            "trace_uops": RUNTIME_UOPS,
            "workers": RUNTIME_WORKERS,
            "trace_bytes": len(trace.to_bytes()),
        },
        "fork_per_task": cold,
        "persistent": warm,
        "warm_speedup": speedup,
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "byte_identical": True,
    }

    # Merge into the JSON the HTTP bench wrote (fresh file if it did not
    # run this session) and stamp the v2 schema.
    output_path = Path(__file__).parent / "output" / "BENCH_service.json"
    output_path.parent.mkdir(exist_ok=True)
    try:
        payload = json.loads(output_path.read_text())
    except (OSError, json.JSONDecodeError):
        payload = {}
    payload["schema_version"] = 2
    payload["worker_runtime"] = section
    output_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    report_writer(
        "BENCH_worker_runtime",
        f"{RUNTIME_TASKS} replay groups x {RUNTIME_VARIANTS} cells: "
        f"fork-per-task {cold['cells_per_second']:.1f} cells/s "
        f"(p99 {cold['task_latency_p99_seconds'] * 1000:.0f} ms) vs "
        f"persistent {warm['cells_per_second']:.1f} cells/s "
        f"(p99 {warm['task_latency_p99_seconds'] * 1000:.0f} ms) — "
        f"{speedup:.2f}x warm speedup [JSON: {output_path}]",
    )

    # The warm workers must actually have reused their caches: one trace
    # decode and one factorization per worker, hits for everything else.
    assert warm["warm_cache"]["trace_hits"] > warm["warm_cache"]["trace_misses"]
    assert warm["warm_cache"]["solver_hits"] > warm["warm_cache"]["solver_misses"]
    assert speedup > 1.0
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"persistent workers are only {speedup:.2f}x fork-per-task on the "
            f"replay-heavy workload (acceptance floor: {MIN_WARM_SPEEDUP}x)"
        )

"""Micro-benchmarks of the simulator itself (cycles per second).

These are conventional pytest-benchmark timings (multiple rounds) of the two
hot paths of the reproduction: the cycle-level timing simulator and the
thermal RC solve.  They exist so performance regressions of the simulator are
visible, independently of the paper's figures.
"""

from __future__ import annotations

import pytest

from repro.core.presets import baseline_config
from repro.power.energy import build_block_parameters
from repro.sim.processor import Processor
from repro.thermal.floorplan import build_floorplan
from repro.thermal.rc_model import ThermalRCNetwork
from repro.thermal.solver import ThermalSolver
from repro.workloads.generator import TraceGenerator


def test_bench_processor_throughput(benchmark):
    """Timing-simulator throughput on a small gzip-like trace."""

    def run_once():
        trace = TraceGenerator("gzip", seed=7).generate(2500)
        processor = Processor(baseline_config(), iter(trace.uops))
        processor.run()
        return processor.stats.committed_uops

    committed = benchmark(run_once)
    assert committed == 2500


def test_bench_thermal_steady_state(benchmark):
    """Steady-state thermal solve of the full baseline floorplan."""
    config = baseline_config()
    params = build_block_parameters(config)
    floorplan = build_floorplan(config, {n: p.area_mm2 for n, p in params.items()})
    network = ThermalRCNetwork(floorplan, config.thermal)
    solver = ThermalSolver(network)
    power = {name: 1.0 for name in floorplan.block_names}

    temperatures = benchmark(lambda: solver.steady_state(power))
    assert min(temperatures.values()) > config.thermal.ambient_celsius


def test_bench_thermal_transient_step(benchmark):
    """One transient advance of the RC network (1 ms interval)."""
    config = baseline_config()
    params = build_block_parameters(config)
    floorplan = build_floorplan(config, {n: p.area_mm2 for n, p in params.items()})
    network = ThermalRCNetwork(floorplan, config.thermal)
    solver = ThermalSolver(network)
    power = {name: 1.5 for name in floorplan.block_names}
    state = network.uniform_state(config.thermal.ambient_celsius)
    # Warm the propagator cache outside the timed region.
    solver.advance(state, power, config.thermal.interval_seconds)

    new_state = benchmark(
        lambda: solver.advance(state, power, config.thermal.interval_seconds)
    )
    assert new_state.shape == state.shape

"""Micro-benchmarks of the simulator itself (cycles per second).

These are conventional pytest-benchmark timings (multiple rounds) of the two
hot paths of the reproduction: the cycle-level timing simulator and the
thermal RC solve.  They exist so performance regressions of the simulator are
visible, independently of the paper's figures.

``test_bench_interval_pipeline_json`` additionally emits a machine-readable
``benchmarks/output/BENCH_simulator.json`` with the simulator's throughput
numbers (uops/sec of the timing model, intervals/sec of the power/thermal
interval pipeline, the thermal solver's share of pipeline time) next to a
pre-change baseline recorded below, so the performance trajectory of the
inner loop is tracked from PR to PR (the CI workflow uploads the file as an
artifact).  Set ``REPRO_BENCH_STRICT=1`` to turn the recorded fast-path
speedup into a hard assertion (meaningful on hardware comparable to the
baseline machine).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.presets import baseline_config
from repro.power.energy import build_block_parameters
from repro.sim.engine import SimulationEngine, run_benchmark
from repro.sim.processor import Processor
from repro.thermal.floorplan import build_floorplan
from repro.thermal.rc_model import ThermalRCNetwork
from repro.thermal.solver import ThermalSolver
from repro.workloads.generator import TraceGenerator

#: Throughput of the per-uop timing loop over the dict-per-block pipeline —
#: the state before the vectorized timing fast path landed — measured with
#: exactly this harness (same trace, same interval length, same tight-loop
#: iteration count) on the reference development container.  Recorded here so
#: ``BENCH_simulator.json`` always reports the fast-path speedup relative to
#: the pre-change implementation.  ``commit`` names the last mainline commit
#: whose engine still ran every cell through the per-uop loop (the previously
#: recorded ``aceea7f`` predated a history re-anchor and no longer resolves).
PRE_CHANGE_BASELINE = {
    "commit": "21f8c84",
    "pipeline": "per-uop timing loop, dict-per-block power/thermal pipeline",
    "uops_per_second": 16243.2,
    "intervals_per_second": 8562.9,
    "solver_time_share": 0.402,
}

#: Harness parameters (shared by the baseline recording and every rerun).
BENCH_TRACE_UOPS = 6_000
BENCH_INTERVAL_CYCLES = 800
BENCH_PIPELINE_ITERATIONS = 3_000


def _measure_uops_per_second(repeats: int = 3, timing_mode: str = "auto") -> float:
    """End-to-end engine throughput (timing model + power/thermal pipeline)."""
    best = 0.0
    for _ in range(repeats):
        trace = TraceGenerator("gzip", seed=7).generate(BENCH_TRACE_UOPS)
        start = time.perf_counter()
        result = run_benchmark(
            baseline_config(), trace.uops, "gzip",
            interval_cycles=BENCH_INTERVAL_CYCLES,
            timing_mode=timing_mode,
        )
        elapsed = time.perf_counter() - start
        best = max(best, result.stats.committed_uops / elapsed)
    return best


def _measure_interval_pipeline() -> dict:
    """Tight-loop throughput of the per-interval power/thermal pipeline.

    Builds an engine, runs a few real intervals so the leakage averages and
    the thermal state are realistic, then drives
    :meth:`SimulationEngine.interval_pipeline` — the exact production hot
    path — with a fixed activity vector.  The tight loop isolates the
    pipeline from the (much slower) pure-Python timing simulation, so the
    number is stable and directly comparable across implementations.
    """
    trace = TraceGenerator("gzip", seed=7).generate(BENCH_TRACE_UOPS)
    engine = SimulationEngine(
        baseline_config(), trace.uops, "gzip",
        interval_cycles=BENCH_INTERVAL_CYCLES,
    )
    engine.run(max_intervals=3)
    counts = engine.block_index.array_from_mapping(
        engine.processor.activity.total_counts()
    )

    solver_seconds = 0.0
    original_advance = engine.solver.advance_nodes

    def timed_advance(*args, **kwargs):
        nonlocal solver_seconds
        start = time.perf_counter()
        out = original_advance(*args, **kwargs)
        solver_seconds += time.perf_counter() - start
        return out

    engine.solver.advance_nodes = timed_advance
    dt = engine.config.thermal.interval_seconds
    records = []
    start = time.perf_counter()
    for i in range(BENCH_PIPELINE_ITERATIONS):
        records.append(
            engine.interval_pipeline(
                counts, BENCH_INTERVAL_CYCLES, cycle=i, seconds=i * dt
            )
        )
    elapsed = time.perf_counter() - start
    assert len(records) == BENCH_PIPELINE_ITERATIONS
    return {
        "intervals_per_second": BENCH_PIPELINE_ITERATIONS / elapsed,
        "solver_time_share": solver_seconds / elapsed,
        "microseconds_per_interval": elapsed / BENCH_PIPELINE_ITERATIONS * 1e6,
    }


def test_bench_interval_pipeline_json(report_writer):
    """Measure simulator throughput and emit ``BENCH_simulator.json``."""
    pipeline = _measure_interval_pipeline()
    # The engine benchmark runs both timing paths: ``auto`` resolves to the
    # vectorized fast path on the baseline configuration (its throughput is
    # the headline ``uops_per_second``), and ``reference`` pins the per-uop
    # golden loop so its cost stays visible alongside.
    trace = TraceGenerator("gzip", seed=7).generate(BENCH_TRACE_UOPS)
    resolved_mode = SimulationEngine(
        baseline_config(), trace.uops, "gzip",
        interval_cycles=BENCH_INTERVAL_CYCLES,
    ).resolved_timing_mode
    uops_per_second = _measure_uops_per_second()
    reference_uops_per_second = _measure_uops_per_second(timing_mode="reference")
    speedup = (
        pipeline["intervals_per_second"] / PRE_CHANGE_BASELINE["intervals_per_second"]
    )
    speedup_uops = uops_per_second / PRE_CHANGE_BASELINE["uops_per_second"]
    payload = {
        "schema_version": 2,
        "parameters": {
            "benchmark": "gzip",
            "trace_uops": BENCH_TRACE_UOPS,
            "interval_cycles": BENCH_INTERVAL_CYCLES,
            "pipeline_iterations": BENCH_PIPELINE_ITERATIONS,
        },
        "baseline": dict(PRE_CHANGE_BASELINE),
        "current": {
            "timing_mode": resolved_mode,
            "uops_per_second": uops_per_second,
            "reference_uops_per_second": reference_uops_per_second,
            **pipeline,
        },
        "speedup_intervals_per_second": speedup,
        "speedup_uops_per_second": speedup_uops,
    }
    output_path = Path(__file__).parent / "output" / "BENCH_simulator.json"
    output_path.parent.mkdir(exist_ok=True)
    output_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    report_writer(
        "BENCH_simulator",
        f"interval pipeline: {pipeline['intervals_per_second']:.0f} intervals/s "
        f"({pipeline['microseconds_per_interval']:.1f} us/interval, "
        f"solver share {pipeline['solver_time_share']:.2f}), "
        f"engine ({resolved_mode}): {uops_per_second:.0f} uops/s "
        f"({speedup_uops:.1f}x vs pre-fast-path baseline; reference path "
        f"{reference_uops_per_second:.0f} uops/s), "
        f"pipeline {speedup:.2f}x vs baseline "
        f"[JSON: {output_path}]",
    )

    assert pipeline["intervals_per_second"] > 0
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert speedup >= 1.5, (
            f"interval pipeline is only {speedup:.2f}x the recorded pre-change "
            f"baseline (expected >= 1.5x on comparable hardware)"
        )
        assert resolved_mode == "fast", (
            "the baseline configuration should auto-select the fast timing "
            f"path, but the engine resolved {resolved_mode!r}"
        )
        assert speedup_uops >= 10.0, (
            f"fast-path engine throughput is only {speedup_uops:.2f}x the "
            f"recorded per-uop baseline of "
            f"{PRE_CHANGE_BASELINE['uops_per_second']:.0f} uops/s "
            f"(expected >= 10x on comparable hardware)"
        )


def test_bench_processor_throughput(benchmark):
    """Timing-simulator throughput on a small gzip-like trace."""

    def run_once():
        trace = TraceGenerator("gzip", seed=7).generate(2500)
        processor = Processor(baseline_config(), iter(trace.uops))
        processor.run()
        return processor.stats.committed_uops

    committed = benchmark(run_once)
    assert committed == 2500


def test_bench_thermal_steady_state(benchmark):
    """Steady-state thermal solve of the full baseline floorplan."""
    config = baseline_config()
    params = build_block_parameters(config)
    floorplan = build_floorplan(config, {n: p.area_mm2 for n, p in params.items()})
    network = ThermalRCNetwork(floorplan, config.thermal)
    solver = ThermalSolver(network)
    power = {name: 1.0 for name in floorplan.block_names}

    temperatures = benchmark(lambda: solver.steady_state(power))
    assert min(temperatures.values()) > config.thermal.ambient_celsius


def test_bench_thermal_transient_step(benchmark):
    """One transient advance of the RC network (1 ms interval)."""
    config = baseline_config()
    params = build_block_parameters(config)
    floorplan = build_floorplan(config, {n: p.area_mm2 for n, p in params.items()})
    network = ThermalRCNetwork(floorplan, config.thermal)
    solver = ThermalSolver(network)
    power = {name: 1.5 for name in floorplan.block_names}
    state = network.uniform_state(config.thermal.ambient_celsius)
    # Warm the propagator cache outside the timed region.
    solver.advance(state, power, config.thermal.interval_seconds)

    new_state = benchmark(
        lambda: solver.advance(state, power, config.thermal.interval_seconds)
    )
    assert new_state.shape == state.shape

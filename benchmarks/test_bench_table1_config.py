"""Table 1: processor configuration of the baseline architecture."""

from __future__ import annotations

from repro.core.presets import baseline_config


def test_bench_table1_configuration(benchmark, report_writer):
    """Regenerate Table 1 and check its headline parameters."""
    config = benchmark(lambda: baseline_config())
    table = config.describe()
    report_writer("table1_configuration", table)

    # Frontend (Table 1, "Frontend").
    tc = config.frontend.trace_cache
    assert tc.capacity_uops == 32 * 1024
    assert tc.associativity == 4
    assert tc.fetch_to_dispatch_latency == 4
    assert config.frontend.decode_rename_steer_latency == 8
    assert config.frontend.fetch_width == 8
    assert config.frontend.commit_width == 8

    # UL2 and communication fabric.
    assert config.memory.ul2_kb == 2 * 1024
    assert config.memory.ul2_associativity == 8
    assert config.memory.ul2_hit_latency == 12
    assert config.memory.ul2_miss_latency >= 500
    assert config.interconnect.num_memory_buses == 2
    assert config.interconnect.num_disambiguation_buses == 2
    assert config.interconnect.bus_latency == 4
    assert config.interconnect.bus_arbitration_latency == 1
    assert config.interconnect.num_p2p_links == 2
    assert config.interconnect.p2p_hop_latency == 1

    # Each backend (Table 1, "Each backend").
    backend = config.backend
    assert backend.num_clusters == 4
    assert backend.int_queue_entries == 40
    assert backend.fp_queue_entries == 40
    assert backend.copy_queue_entries == 40
    assert backend.mem_queue_entries == 96
    assert backend.dispatch_latency == 10
    assert backend.prescheduler_entries == 20
    assert backend.int_registers == 160
    assert backend.fp_registers == 160
    assert backend.int_rf_read_ports == 6 and backend.int_rf_write_ports == 3
    assert backend.fp_rf_read_ports == 5 and backend.fp_rf_write_ports == 3
    assert backend.dcache_kb == 16
    assert backend.dcache_associativity == 2
    assert backend.dcache_hit_latency == 1

    # Design point (Section 4).
    assert config.power.technology_nm == 65
    assert config.power.frequency_ghz == 10.0
    assert config.power.vdd == 1.1
    assert config.thermal.emergency_limit_kelvin == 381.0
    assert config.thermal.ambient_celsius == 45.0

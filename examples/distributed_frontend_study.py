#!/usr/bin/env python
"""Compare the paper's frontend organizations on a small workload set.

Run with:  python examples/distributed_frontend_study.py [uops_per_benchmark] [jobs]

This is a miniature version of the paper's Figures 12-14: one declarative
campaign simulates the baseline, the distributed rename/commit frontend, the
thermal-aware bank-hopping trace cache and the full distributed frontend over
a handful of SPEC2000-like workloads, then prints the temperature reductions
(relative to the baseline's increase over ambient) together with the
slowdown.  Pass a second argument > 1 to fan the campaign's cells out over
that many worker processes.
"""

from __future__ import annotations

import sys

from repro import Campaign, ExperimentSettings, run_campaign
from repro.campaign import make_executor
from repro.core.presets import (
    bank_hopping_biasing_config,
    baseline_config,
    distributed_frontend_config,
    distributed_rename_commit_config,
)

GROUPS = ("ReorderBuffer", "RenameTable", "TraceCache")


def main() -> None:
    uops = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    settings = ExperimentSettings(
        benchmarks=("gzip", "gcc", "crafty", "swim", "equake", "mesa"),
        uops_per_benchmark=uops,
    )
    print(f"Workloads: {', '.join(settings.benchmarks)} "
          f"({settings.uops_per_benchmark} micro-ops each)\n")

    variants = (
        distributed_rename_commit_config(),
        bank_hopping_biasing_config(),
        distributed_frontend_config(),
    )
    campaign = Campaign(
        (baseline_config(),) + variants, settings, name="distributed-frontend-study"
    )
    outcome = run_campaign(campaign, executor=make_executor(jobs))
    print(outcome.describe() + "\n")

    baseline = outcome.summaries["baseline"]
    print("Baseline temperature increases over ambient (C):")
    for group in GROUPS:
        metrics = baseline.mean_metrics(group)
        print(f"  {group:<14} AbsMax {metrics['AbsMax']:6.1f}   "
              f"Average {metrics['Average']:6.1f}   AvgMax {metrics['AvgMax']:6.1f}")
    print()

    for config in variants:
        summary = outcome.summaries[config.name]
        slowdown = summary.mean_slowdown_vs(baseline)
        print(f"{config.name} (slowdown {slowdown * 100:+.1f}%):")
        for group in GROUPS:
            reductions = summary.mean_reductions_vs(baseline, group)
            print(f"  {group:<14} AbsMax {reductions['AbsMax'] * 100:5.1f}%   "
                  f"Average {reductions['Average'] * 100:5.1f}%   "
                  f"AvgMax {reductions['AvgMax'] * 100:5.1f}%")
        print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""DTM sweep: compare thermal-management policies over stress scenarios.

Run with:  python examples/dtm_sweep.py [uops] [jobs]

Declares one campaign with a DTM policy axis — the no-op baseline plus the
four mechanisms of ``repro.dtm`` — over a handful of scenarios from
``repro.scenarios``, runs it (optionally across worker processes), and
prints the classic DTM trade-off per policy: peak/average temperature
against wall-clock performance loss, with the actuator telemetry next to
it.  The full 5-policy x 11-scenario table is one command away::

    PYTHONPATH=src python -m repro.campaign.cli run --figure dtm --jobs 4

See docs/dtm.md for the policy and DVFS model documentation.
"""

from __future__ import annotations

import sys

from repro.campaign import make_executor
from repro.experiments import dtm_settings, run_dtm_comparison

SCENARIOS = ("thermal_virus", "hot_loop", "imbalanced_cluster", "idle_crawl")


def main() -> None:
    uops = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    settings = dtm_settings(scenarios=SCENARIOS, uops_per_scenario=uops)
    result = run_dtm_comparison(settings, executor=make_executor(jobs))
    print(result.format_table())
    print()
    print("Per-policy trade-off (fractions vs. the no-DTM baseline):")
    for policy, point in result.performance_loss_vs_peak_temp().items():
        print(f"  {policy:<16} peak -{point['peak_reduction'] * 100:5.1f}%  "
              f"time +{point['performance_loss'] * 100:6.1f}%")


if __name__ == "__main__":
    main()

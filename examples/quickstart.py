#!/usr/bin/env python
"""Quickstart: simulate one SPEC2000-like workload on the baseline processor.

Run with:  python examples/quickstart.py [benchmark] [num_uops]

The script declares a one-cell campaign on the paper's baseline configuration
(Table 1), runs it through the campaign API — which scales the paper's
10 M-cycle thermal/hop/remap interval down with the trace length — and prints
the headline numbers: IPC, power, and the temperature metrics of the paper's
Figure 1 groups.
"""

from __future__ import annotations

import sys

from repro import Campaign, ExperimentSettings, baseline_config, run_campaign


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    num_uops = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000

    settings = ExperimentSettings(
        benchmarks=(benchmark,),
        uops_per_benchmark=num_uops,
        honor_relative_length=False,
    )
    campaign = Campaign.single(baseline_config(), settings, name="quickstart")
    # The campaign expands into one cell; its config carries the scaled intervals.
    print(campaign.cells()[0].config.describe())
    print()

    outcome = run_campaign(campaign)
    result = outcome.summaries["baseline"].results[benchmark]

    stats = result.stats
    print(f"Simulated {stats.committed_uops} micro-ops in {stats.cycles} cycles "
          f"(IPC {stats.ipc:.2f})")
    print(f"Trace cache hit rate {stats.trace_cache_hit_rate:.3f}, "
          f"L1 data hit rate {stats.dcache_hit_rate:.3f}, "
          f"{stats.copy_uops_generated} inter-cluster copies")
    print(f"Average power {result.average_power():.1f} W "
          f"({result.average_dynamic_power():.1f} W dynamic), "
          f"peak temperature {result.peak_temperature():.1f} C")
    print()
    print(f"{'group':<14}{'AbsMax':>10}{'Average':>10}{'AvgMax':>10}   (increase over 45 C ambient)")
    for group in ("Processor", "Frontend", "Backend", "UL2",
                  "ReorderBuffer", "RenameTable", "TraceCache"):
        metrics = result.temperature_metrics(group)
        print(f"{group:<14}{metrics['AbsMax']:>10.1f}{metrics['Average']:>10.1f}"
              f"{metrics['AvgMax']:>10.1f}")


if __name__ == "__main__":
    main()

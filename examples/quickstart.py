#!/usr/bin/env python
"""Quickstart: simulate one SPEC2000-like workload on the baseline processor.

Run with:  python examples/quickstart.py [benchmark] [num_uops]

The script builds the paper's baseline configuration (Table 1), generates a
synthetic gcc-like micro-op trace, runs the coupled timing / power / thermal
simulation and prints the headline numbers: IPC, power, and the temperature
metrics of the paper's Figure 1 groups.
"""

from __future__ import annotations

import sys

from repro import baseline_config
from repro.sim.engine import SimulationEngine
from repro.workloads.generator import TraceGenerator


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    num_uops = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000

    config = baseline_config()
    # Scale the paper's 10 M-cycle thermal/hop/remap interval down with the
    # trace length so the run still spans a few tens of thermal intervals.
    interval_cycles = max(200, num_uops // 25)
    config = config.with_intervals(interval_cycles)

    print(config.describe())
    print()

    trace = TraceGenerator(benchmark, seed=1).generate(num_uops)
    engine = SimulationEngine(config, trace.uops, benchmark, interval_cycles=interval_cycles)
    result = engine.run()

    stats = result.stats
    print(f"Simulated {stats.committed_uops} micro-ops in {stats.cycles} cycles "
          f"(IPC {stats.ipc:.2f})")
    print(f"Trace cache hit rate {stats.trace_cache_hit_rate:.3f}, "
          f"L1 data hit rate {stats.dcache_hit_rate:.3f}, "
          f"{stats.copy_uops_generated} inter-cluster copies")
    print(f"Average power {result.average_power():.1f} W "
          f"({result.average_dynamic_power():.1f} W dynamic), "
          f"peak temperature {result.peak_temperature():.1f} C")
    print()
    print(f"{'group':<14}{'AbsMax':>10}{'Average':>10}{'AvgMax':>10}   (increase over 45 C ambient)")
    for group in ("Processor", "Frontend", "Backend", "UL2",
                  "ReorderBuffer", "RenameTable", "TraceCache"):
        metrics = result.temperature_metrics(group)
        print(f"{group:<14}{metrics['AbsMax']:>10.1f}{metrics['Average']:>10.1f}"
              f"{metrics['AvgMax']:>10.1f}")


if __name__ == "__main__":
    main()

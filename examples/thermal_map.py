#!/usr/bin/env python
"""Render an ASCII thermal map of the die, like the paper's thermal plots.

Run with:  python examples/thermal_map.py [benchmark] [configuration]

``configuration`` is one of: baseline, distributed_rc, address_biasing,
blank_silicon, bank_hopping, hopping_biasing, distributed_frontend.

The script runs the chosen (configuration, workload) cell through the
campaign API, takes the hottest thermal interval and rasterizes the
floorplan onto a character grid where hotter blocks get "denser" glyphs, so
the effect of distributing the frontend is directly visible: compare
`baseline` against `distributed_frontend`.
"""

from __future__ import annotations

import sys

from repro import Campaign, ExperimentSettings, run_campaign
from repro.core.presets import ALL_CONFIGURATIONS, FrontendOrganization, config_for
from repro.experiments.floorplans import build_report

#: Cold-to-hot glyph ramp used by the ASCII renderer.
RAMP = " .:-=+*#%@"


def render(floorplan, temperatures, width: int = 72, height: int = 30) -> str:
    """Rasterize block temperatures onto a character grid."""
    t_min = min(temperatures.values())
    t_max = max(temperatures.values())
    span = max(1e-6, t_max - t_min)
    die_w = floorplan.die_width
    die_h = floorplan.die_height
    rows = []
    for row in range(height):
        y = (row + 0.5) / height * die_h
        line = []
        for col in range(width):
            x = (col + 0.5) / width * die_w
            glyph = " "
            for block in floorplan.blocks():
                if block.x <= x < block.x + block.width and block.y <= y < block.y + block.height:
                    level = (temperatures[block.name] - t_min) / span
                    glyph = RAMP[min(len(RAMP) - 1, int(level * (len(RAMP) - 1) + 0.5))]
                    break
            line.append(glyph)
        rows.append("".join(line))
    legend = f"coldest {t_min:.1f} C {RAMP} hottest {t_max:.1f} C"
    return "\n".join(rows) + "\n" + legend


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "swim"
    config_name = sys.argv[2] if len(sys.argv) > 2 else "baseline"
    organization = FrontendOrganization(config_name)
    config = config_for(organization)

    settings = ExperimentSettings(
        benchmarks=(benchmark,), uops_per_benchmark=8_000, honor_relative_length=False
    )
    campaign = Campaign.single(config, settings, name="thermal-map")
    outcome = run_campaign(campaign)
    result = outcome.summaries[config.name].results[benchmark]
    # The floorplan is derived from the configuration alone, so it can be
    # rebuilt for rendering without keeping the simulation engine around.
    floorplan = build_report(campaign.cells()[0].config).floorplan

    hottest = max(result.intervals, key=lambda record: max(record.temperature.values()))
    print(f"{benchmark} on {config.name}: hottest interval at cycle {hottest.cycle}, "
          f"total power {hottest.total_power():.1f} W")
    print(render(floorplan, hottest.temperature))
    print()
    hot_blocks = sorted(hottest.temperature.items(), key=lambda kv: -kv[1])[:8]
    print("hottest blocks: " + ", ".join(f"{name} {temp:.1f}C" for name, temp in hot_blocks))
    print(f"valid configurations: {[o.value for o in ALL_CONFIGURATIONS]}")


if __name__ == "__main__":
    main()

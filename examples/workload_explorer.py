#!/usr/bin/env python
"""Inspect the synthetic SPEC2000-like workloads.

Run with:  python examples/workload_explorer.py [num_uops]

For every benchmark profile the script generates a short trace and compares
the generated instruction mix, branch behaviour and footprint against the
profile's targets, which is exactly what the property-based tests assert in
bulk.  Useful when adding new profiles or tuning existing ones.
"""

from __future__ import annotations

import sys

from repro.campaign import available_benchmarks
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import get_profile


def main() -> None:
    num_uops = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    header = (f"{'benchmark':<10}{'suite':<10}{'loads':>8}{'stores':>8}{'branch':>8}"
              f"{'mispred':>9}{'fp':>7}{'pcs':>7}{'lines':>8}")
    print(header)
    print("-" * len(header))
    for name in available_benchmarks():
        profile = get_profile(name)
        generator = TraceGenerator(profile, seed=0)
        trace = generator.generate(num_uops)
        stats = trace.statistics()
        print(f"{name:<10}{profile.suite:<10}"
              f"{stats.load_fraction:>8.2f}{stats.store_fraction:>8.2f}"
              f"{stats.branch_fraction:>8.2f}{stats.misprediction_rate:>9.3f}"
              f"{stats.fp_fraction:>7.2f}{stats.distinct_pcs:>7}"
              f"{stats.distinct_cache_lines:>8}")
    print()
    print("Columns are measured on the generated traces; compare against the "
          "targets in repro.workloads.profiles.")


if __name__ == "__main__":
    main()

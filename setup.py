"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that ``pip install -e .`` (and ``python setup.py develop``) work in
offline environments whose setuptools/pip combination cannot build PEP 660
editable wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup()

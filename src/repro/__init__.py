"""Reproduction of *Distributing the Frontend for Temperature Reduction* (HPCA 2005).

The package implements, from scratch, every system the paper's evaluation
depends on:

* a cycle-level timing simulator of a clustered microarchitecture with a
  trace-cache frontend (:mod:`repro.sim`, :mod:`repro.frontend`,
  :mod:`repro.backend`, :mod:`repro.memory`, :mod:`repro.interconnect`),
* a Wattch-style activity-based dynamic power model with temperature-dependent
  leakage (:mod:`repro.power`),
* a HotSpot-style dynamic compact thermal RC model with floorplans, heat
  spreader and heat sink (:mod:`repro.thermal`),
* synthetic SPEC2000-like workloads (:mod:`repro.workloads`), and
* the paper's contribution — the distributed frontend: distributed rename and
  commit, trace-cache bank hopping and the thermal-aware biased bank mapping
  function (:mod:`repro.core`).

Experiment drivers that regenerate every figure of the paper's evaluation
live in :mod:`repro.experiments`.
"""

from repro.sim.config import ProcessorConfig
from repro.sim.processor import Processor
from repro.sim.results import SimulationResult
from repro.workloads.profiles import SPEC2000_PROFILES, WorkloadProfile
from repro.workloads.generator import TraceGenerator
from repro.core.presets import (
    FrontendOrganization,
    baseline_config,
    distributed_rename_commit_config,
    address_biasing_config,
    blank_silicon_config,
    bank_hopping_config,
    bank_hopping_biasing_config,
    distributed_frontend_config,
)

__version__ = "1.0.0"

__all__ = [
    "ProcessorConfig",
    "Processor",
    "SimulationResult",
    "WorkloadProfile",
    "SPEC2000_PROFILES",
    "TraceGenerator",
    "FrontendOrganization",
    "baseline_config",
    "distributed_rename_commit_config",
    "address_biasing_config",
    "blank_silicon_config",
    "bank_hopping_config",
    "bank_hopping_biasing_config",
    "distributed_frontend_config",
    "__version__",
]

"""Reproduction of *Distributing the Frontend for Temperature Reduction* (HPCA 2005).

The package implements, from scratch, every system the paper's evaluation
depends on:

* a cycle-level timing simulator of a clustered microarchitecture with a
  trace-cache frontend (:mod:`repro.sim`, :mod:`repro.frontend`,
  :mod:`repro.backend`, :mod:`repro.memory`, :mod:`repro.interconnect`),
* a Wattch-style activity-based dynamic power model with temperature-dependent
  leakage (:mod:`repro.power`),
* a HotSpot-style dynamic compact thermal RC model with floorplans, heat
  spreader and heat sink (:mod:`repro.thermal`),
* synthetic SPEC2000-like workloads (:mod:`repro.workloads`), and
* the paper's contribution — the distributed frontend: distributed rename and
  commit, trace-cache bank hopping and the thermal-aware biased bank mapping
  function (:mod:`repro.core`).

Experiments are declared and executed through :mod:`repro.campaign`: a
:class:`Campaign` (configurations x benchmarks x an
:class:`ExperimentSettings` scale) expands into independent cells that run on
a pluggable executor — serially or across worker processes
(:class:`ParallelExecutor`) — with an optional content-keyed on-disk
:class:`ResultCache` so repeated runs skip simulation.  Ad-hoc configuration
variants are derived with the fluent :class:`ConfigBuilder`.  The figure
drivers in :mod:`repro.experiments` are thin layers over this API, and the
``repro-campaign`` console script exposes it from the shell.

Beyond the paper's layout techniques, :mod:`repro.dtm` adds the *control*
side of thermal management — sensor-triggered fetch throttling, stop-go
clock gating, per-cluster DVFS and a hybrid policy — swept over the named
workload scenarios of :mod:`repro.scenarios` via the campaign's
``dtm_policies`` axis (``repro-campaign run --figure dtm``).

:mod:`repro.chip` composes everything into chip multiprocessors: N per-core
timing stages over one composite-die physics stage (namespaced floorplan
composition, cross-core thermal coupling through the shared silicon,
spreader and sink), chip-level DTM (``core_migration``, ``chip_dvfs``), and
campaign ``cores`` / ``per_core_scenarios`` axes whose replay path reuses
cached *single-core* activity traces (``repro-campaign run --figure
multicore``).  The full documentation lives under ``docs/``.
"""

from repro.sim.config import ProcessorConfig
from repro.sim.processor import Processor
from repro.sim.results import SimulationResult
from repro.workloads.profiles import SPEC2000_PROFILES, WorkloadProfile
from repro.workloads.generator import TraceGenerator
from repro.core.presets import (
    FrontendOrganization,
    baseline_config,
    distributed_rename_commit_config,
    address_biasing_config,
    blank_silicon_config,
    bank_hopping_config,
    bank_hopping_biasing_config,
    distributed_frontend_config,
)
from repro.campaign import (
    Campaign,
    CampaignOutcome,
    ConfigBuilder,
    ConfigurationSummary,
    ExperimentSettings,
    ParallelExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    run_campaign,
)
from repro.dtm import (
    DTMPolicy,
    available_policies,
    make_policy,
)
from repro.chip import (
    ChipEngine,
    ChipRunSpec,
    available_chip_policies,
    make_chip_policy,
    replay_chip,
)
from repro.scenarios import SCENARIOS, SCENARIO_NAMES, Scenario, get_scenario

__version__ = "1.6.0"

__all__ = [
    "ProcessorConfig",
    "Processor",
    "SimulationResult",
    "WorkloadProfile",
    "SPEC2000_PROFILES",
    "TraceGenerator",
    "FrontendOrganization",
    "baseline_config",
    "distributed_rename_commit_config",
    "address_biasing_config",
    "blank_silicon_config",
    "bank_hopping_config",
    "bank_hopping_biasing_config",
    "distributed_frontend_config",
    "Campaign",
    "CampaignOutcome",
    "ConfigBuilder",
    "ConfigurationSummary",
    "ExperimentSettings",
    "ParallelExecutor",
    "ResultCache",
    "RunSpec",
    "SerialExecutor",
    "run_campaign",
    "DTMPolicy",
    "available_policies",
    "make_policy",
    "ChipEngine",
    "ChipRunSpec",
    "available_chip_policies",
    "make_chip_policy",
    "replay_chip",
    "SCENARIOS",
    "SCENARIO_NAMES",
    "Scenario",
    "get_scenario",
    "__version__",
]

"""Clustered backend.

Each backend cluster has its own integer and floating-point register files
and issue queues, a copy queue for inter-cluster register communication, and
a memory order buffer coupled with a data TLB and a first-level data cache
(Figure 2b of the paper).
"""

from repro.backend.register_file import PhysicalRegisterFile
from repro.backend.issue_queue import IssueQueue
from repro.backend.data_cache import L1DataCache
from repro.backend.mob import MemoryOrderBuffer
from repro.backend.functional_units import fu_block_suffix
from repro.backend.cluster import Cluster

__all__ = [
    "PhysicalRegisterFile",
    "IssueQueue",
    "L1DataCache",
    "MemoryOrderBuffer",
    "fu_block_suffix",
    "Cluster",
]

"""One backend cluster: queues, register files, MOB, L1 data cache.

The cluster bundles the per-cluster structures of Figure 2b and exposes the
resource checks the dispatch stage needs (queue space, prescheduler space,
MOB slots, free physical registers).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.backend.data_cache import L1DataCache
from repro.backend.issue_queue import IssueQueue
from repro.backend.mob import MemoryOrderBuffer
from repro.backend.register_file import PhysicalRegisterFile
from repro.isa.microops import UopClass
from repro.sim.config import BackendConfig, MemoryConfig
from repro.sim.uop import DynamicUop


class Cluster:
    """A single backend cluster of the clustered microarchitecture."""

    def __init__(
        self,
        cluster_id: int,
        backend_config: BackendConfig,
        memory_config: MemoryConfig,
    ) -> None:
        self.cluster_id = cluster_id
        self.config = backend_config
        self.int_rf = PhysicalRegisterFile(
            f"C{cluster_id}.IRF", backend_config.int_registers
        )
        self.fp_rf = PhysicalRegisterFile(
            f"C{cluster_id}.FPRF", backend_config.fp_registers
        )
        self.int_queue = IssueQueue(
            f"C{cluster_id}.IQ",
            backend_config.int_queue_entries,
            backend_config.issue_width_per_queue,
        )
        self.fp_queue = IssueQueue(
            f"C{cluster_id}.FPQ",
            backend_config.fp_queue_entries,
            backend_config.issue_width_per_queue,
        )
        self.copy_queue = IssueQueue(
            f"C{cluster_id}.CopyQ",
            backend_config.copy_queue_entries,
            backend_config.issue_width_per_queue,
        )
        self.mem_queue = IssueQueue(
            f"C{cluster_id}.MemQ",
            backend_config.mem_queue_entries,
            backend_config.issue_width_per_queue,
        )
        self.mob = MemoryOrderBuffer(backend_config.mem_queue_entries)
        self.dcache = L1DataCache(
            backend_config.dcache_kb,
            backend_config.dcache_associativity,
            backend_config.dcache_line_bytes,
            backend_config.dcache_hit_latency,
        )
        #: Micro-ops travelling from rename/steer to the issue queues
        #: (the prescheduler queues), as (arrival_cycle, uop) pairs.
        self.dispatch_pipe: Deque[Tuple[int, DynamicUop]] = deque()
        #: Micro-ops currently executing, as (completion_cycle, uop) pairs.
        self.executing: List[Tuple[int, DynamicUop]] = []
        #: Number of micro-ops dispatched to this cluster and not yet committed.
        self.in_flight = 0

    # ------------------------------------------------------------------
    # Resource checks used by rename/dispatch
    # ------------------------------------------------------------------
    def register_file_for(self, is_fp: bool) -> PhysicalRegisterFile:
        return self.fp_rf if is_fp else self.int_rf

    def queue_for(self, uop_class: UopClass) -> IssueQueue:
        if uop_class in (UopClass.FPADD, UopClass.FPMUL, UopClass.FPDIV):
            return self.fp_queue
        if uop_class is UopClass.COPY:
            return self.copy_queue
        if uop_class in (UopClass.LOAD, UopClass.STORE):
            return self.mem_queue
        return self.int_queue

    def prescheduler_has_space(self) -> bool:
        """Whether the dispatch pipe (prescheduler queues) can accept a uop."""
        return len(self.dispatch_pipe) < self.config.prescheduler_entries * 4

    def all_queues(self) -> Tuple[IssueQueue, IssueQueue, IssueQueue, IssueQueue]:
        return (self.int_queue, self.fp_queue, self.mem_queue, self.copy_queue)

    def occupancy(self) -> int:
        """Total micro-ops waiting in this cluster's issue queues."""
        return sum(len(queue) for queue in self.all_queues())

    def load(self) -> int:
        """Steering load metric: in-flight micro-ops assigned to this cluster."""
        return self.in_flight

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster({self.cluster_id}, in_flight={self.in_flight}, "
            f"iq={len(self.int_queue)}, fpq={len(self.fp_queue)}, "
            f"memq={len(self.mem_queue)}, copyq={len(self.copy_queue)})"
        )

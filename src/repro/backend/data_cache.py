"""First-level data cache (one per cluster) with its data TLB.

Table 1: 16 KB, 2-way set associative, 1-cycle hit, one read and one write
port, write-update policy.  Data caches are distributed: a load can be
steered to any cluster, and on a miss the line is brought from the UL2 into
the cache of the cluster where the requesting load resides.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict


class L1DataCache:
    """A set-associative, LRU, line-granularity data cache model."""

    def __init__(
        self,
        capacity_kb: int,
        associativity: int,
        line_bytes: int,
        hit_latency: int = 1,
    ) -> None:
        if capacity_kb <= 0 or associativity <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        self.capacity_bytes = capacity_kb * 1024
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.num_sets = max(1, self.capacity_bytes // (line_bytes * associativity))
        #: One ordered dict per set: line address -> True, LRU first.
        self._sets: Dict[int, OrderedDict] = {}
        self.hits = 0
        self.misses = 0

    def _set_index(self, address: int) -> int:
        return (address // self.line_bytes) % self.num_sets

    def _line_address(self, address: int) -> int:
        return address // self.line_bytes

    def access(self, address: int, is_store: bool = False) -> bool:
        """Access the cache; allocate the line on a miss.  Returns hit/miss.

        Both loads and stores allocate (write-update keeps the line in the
        cache of the accessing cluster).
        """
        set_index = self._set_index(address)
        line = self._line_address(address)
        entries = self._sets.setdefault(set_index, OrderedDict())
        if line in entries:
            entries.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(entries) >= self.associativity:
            entries.popitem(last=False)
        entries[line] = True
        return False

    def update(self, address: int) -> None:
        """Write-update from another cluster: refresh the line if present."""
        set_index = self._set_index(address)
        line = self._line_address(address)
        entries = self._sets.get(set_index)
        if entries and line in entries:
            entries.move_to_end(line)

    @property
    def hit_rate(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0

    def occupancy(self) -> int:
        """Number of valid lines currently cached."""
        return sum(len(entries) for entries in self._sets.values())

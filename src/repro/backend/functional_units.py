"""Functional-unit activity mapping.

The timing of execution is captured by per-micro-op latencies
(:data:`repro.isa.microops.OP_LATENCY`); issue bandwidth is limited by the
issue queues (one instruction per queue per cycle).  This module maps each
micro-op class to the floorplan block whose activity counter must be charged
when the micro-op executes: the integer functional units (``IFU``, which also
perform address generation for loads and stores and execute copies) or the
floating-point functional units (``FPFU``).
"""

from __future__ import annotations

from repro.isa.microops import UopClass
from repro.sim import blocks

_FP_CLASSES = frozenset({UopClass.FPADD, UopClass.FPMUL, UopClass.FPDIV})


def fu_block_suffix(uop_class: UopClass) -> str:
    """Cluster block suffix of the functional unit executing ``uop_class``."""
    if uop_class in _FP_CLASSES:
        return blocks.CLUSTER_FP_FU
    return blocks.CLUSTER_INT_FU


def scheduler_block_suffix(uop_class: UopClass) -> str:
    """Cluster block suffix of the scheduler (issue queue) holding ``uop_class``."""
    if uop_class in _FP_CLASSES:
        return blocks.CLUSTER_FP_SCHED
    if uop_class is UopClass.COPY:
        return blocks.CLUSTER_COPY_SCHED
    if uop_class in (UopClass.LOAD, UopClass.STORE):
        return blocks.CLUSTER_MOB
    return blocks.CLUSTER_INT_SCHED


def register_file_block_suffix(is_fp: bool) -> str:
    """Cluster block suffix of the register file holding a value."""
    return blocks.CLUSTER_FP_RF if is_fp else blocks.CLUSTER_INT_RF

"""Issue queues (schedulers) of a backend cluster.

Each cluster has four queues (Table 1): a 40-entry integer queue, a 40-entry
FP queue, a 40-entry copy queue and a 96-entry memory queue, each issuing one
instruction per cycle.  Selection is oldest-first among ready entries.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.uop import DynamicUop


class IssueQueue:
    """An oldest-first, capacity-limited issue queue."""

    def __init__(self, name: str, capacity: int, issue_width: int = 1) -> None:
        if capacity <= 0 or issue_width <= 0:
            raise ValueError("capacity and issue width must be positive")
        self.name = name
        self.capacity = capacity
        self.issue_width = issue_width
        self._entries: List[DynamicUop] = []
        self.inserted = 0
        self.issued = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def has_space(self, count: int = 1) -> bool:
        return len(self._entries) + count <= self.capacity

    def insert(self, uop: DynamicUop) -> None:
        """Insert a dispatched micro-op (entries stay in dispatch order)."""
        if not self.has_space():
            raise RuntimeError(f"issue queue {self.name} is full")
        self._entries.append(uop)
        self.inserted += 1

    # ------------------------------------------------------------------
    def issue(self, cycle: int) -> List[DynamicUop]:
        """Select and remove up to ``issue_width`` ready entries, oldest first."""
        selected: List[DynamicUop] = []
        if not self._entries:
            return selected
        remaining_width = self.issue_width
        index = 0
        while index < len(self._entries) and remaining_width > 0:
            uop = self._entries[index]
            if uop.sources_ready(cycle):
                selected.append(uop)
                self._entries.pop(index)
                self.issued += 1
                remaining_width -= 1
                continue
            index += 1
        return selected

    def peek_oldest(self) -> Optional[DynamicUop]:
        return self._entries[0] if self._entries else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IssueQueue({self.name}, {len(self._entries)}/{self.capacity})"

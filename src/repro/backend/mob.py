"""Memory order buffer (MOB) occupancy model.

Store instructions are steered like any other instruction to compute their
effective address, but a slot is allocated in *all* memory order buffers so
that disambiguation can be performed locally in every cluster once the store
address is broadcast on the disambiguation bus (Section 2 of the paper).
Loads occupy a slot only in their own cluster's MOB until they complete.
"""

from __future__ import annotations


class MemoryOrderBufferFullError(RuntimeError):
    """Raised when a slot allocation is attempted on a full MOB."""


class MemoryOrderBuffer:
    """Slot-counting model of one cluster's memory order buffer."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MOB capacity must be positive")
        self.capacity = capacity
        self._occupied = 0
        self.allocations = 0
        self.disambiguation_updates = 0

    @property
    def occupancy(self) -> int:
        return self._occupied

    @property
    def free_slots(self) -> int:
        return self.capacity - self._occupied

    def can_allocate(self, count: int = 1) -> bool:
        return self._occupied + count <= self.capacity

    def allocate(self, count: int = 1) -> None:
        if not self.can_allocate(count):
            raise MemoryOrderBufferFullError("memory order buffer is full")
        self._occupied += count
        self.allocations += count

    def release(self, count: int = 1) -> None:
        if count > self._occupied:
            raise ValueError("releasing more MOB slots than are occupied")
        self._occupied -= count

    def record_disambiguation(self) -> None:
        """Account a store-address broadcast received by this MOB."""
        self.disambiguation_updates += 1

"""Per-cluster physical register file with a free list and a scoreboard.

The register file does not hold values — the timing simulator only needs to
know *when* each physical register becomes available.  Allocation and freeing
follow the usual renaming discipline: a physical register is allocated when
an instruction's destination is renamed and freed when a later writer of the
same logical register commits.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional


class RegisterFileFullError(RuntimeError):
    """Raised when an allocation is attempted on an exhausted free list."""


class PhysicalRegisterFile:
    """A single physical register file (integer or FP) of one cluster."""

    #: A ready cycle meaning "never" (producer not yet issued).
    NOT_READY = 1 << 60

    def __init__(self, name: str, num_registers: int) -> None:
        if num_registers <= 0:
            raise ValueError("register file must have at least one register")
        self.name = name
        self.num_registers = num_registers
        self._free: Deque[int] = deque(range(num_registers))
        self._allocated: List[bool] = [False] * num_registers
        #: Cycle at which each register's value becomes available.
        self._ready_cycle: List[int] = [0] * num_registers
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def allocated_count(self) -> int:
        return self.num_registers - len(self._free)

    def can_allocate(self, count: int = 1) -> bool:
        return len(self._free) >= count

    def allocate(self) -> int:
        """Allocate a physical register; it is not ready until written."""
        if not self._free:
            raise RegisterFileFullError(f"{self.name}: no free physical registers")
        index = self._free.popleft()
        self._allocated[index] = True
        self._ready_cycle[index] = self.NOT_READY
        return index

    def free(self, index: int) -> None:
        """Return a physical register to the free list."""
        if not 0 <= index < self.num_registers:
            raise IndexError(f"{self.name}: register {index} out of range")
        if not self._allocated[index]:
            raise ValueError(f"{self.name}: register {index} is not allocated")
        self._allocated[index] = False
        self._ready_cycle[index] = 0
        self._free.append(index)

    def is_allocated(self, index: int) -> bool:
        return self._allocated[index]

    # ------------------------------------------------------------------
    # Scoreboard
    # ------------------------------------------------------------------
    def set_ready(self, index: int, cycle: int) -> None:
        """Mark register ``index`` as produced at ``cycle`` (writeback)."""
        if not self._allocated[index]:
            raise ValueError(f"{self.name}: register {index} is not allocated")
        self._ready_cycle[index] = cycle
        self.writes += 1

    def ready_cycle(self, index: int) -> int:
        return self._ready_cycle[index]

    def is_ready(self, index: int, cycle: int) -> bool:
        """Whether the value of register ``index`` is available at ``cycle``."""
        return self._ready_cycle[index] <= cycle

    def record_read(self, count: int = 1) -> None:
        """Account operand reads (used by the power model via activity counters)."""
        self.reads += count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhysicalRegisterFile({self.name}, {self.allocated_count}/"
            f"{self.num_registers} allocated)"
        )

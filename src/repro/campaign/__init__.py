"""Declarative experiment orchestration for the reproduction.

``repro.campaign`` is the public experiment API: declare *what* to simulate
(a :class:`Campaign`: configurations x benchmarks x an
:class:`ExperimentSettings` scale), pick *how* to run it (a
:class:`SerialExecutor` or a process-pool :class:`ParallelExecutor`), and
optionally *where* to remember it (a content-keyed :class:`ResultCache`), then
call :func:`run_campaign`::

    from repro.campaign import (
        Campaign, ConfigBuilder, ExperimentSettings, ParallelExecutor,
        ResultCache, run_campaign,
    )

    campaign = Campaign(
        configs=[baseline_config(), distributed_frontend_config()],
        settings=ExperimentSettings.quick(),
    )
    outcome = run_campaign(
        campaign,
        executor=ParallelExecutor(jobs=4),
        cache=ResultCache("~/.cache/repro"),
    )
    outcome.summaries["distributed_frontend"].mean_metrics("Frontend")

A campaign optionally sweeps a dynamic-thermal-management axis
(``Campaign(..., dtm_policies=("none", "dvfs", ...))``, see
:mod:`repro.dtm`): every (config, benchmark) cell is then simulated once per
policy and summaries are keyed ``"<config>@<policy>"``.

Campaigns execute through the engine's two-stage simulation core: cells
whose configurations differ only in physics-side parameters (package,
leakage, frequency — anything the timing model never reads) share one
:meth:`~repro.campaign.spec.RunSpec.timing_key`, capture the per-uop timing
simulation once as an :class:`~repro.sim.activity_trace.ActivityTrace`
(stored as a content-keyed artifact in the :class:`ResultCache`) and replay
the array-backed physics stage over it — bit-identical to the coupled run.
Cells with temperature-into-timing feedback (thermal-aware mapping,
feedback-bearing DTM policies) are detected automatically and simulated
coupled.

Every figure driver in :mod:`repro.experiments`, the ``repro-campaign`` CLI
and the benchmark harness run through this layer; the single-configuration
helpers :func:`run_configuration`/:func:`summarize`/:func:`summarize_many`
are conveniences over it.
"""

from repro.campaign.builder import ConfigBuilder, scale_paper_intervals
from repro.campaign.cache import ResultCache
from repro.campaign.core import (
    CampaignOutcome,
    run_campaign,
    run_configuration,
    summarize,
    summarize_many,
)
from repro.campaign.executors import (
    Executor,
    ExecutorTaskError,
    ParallelExecutor,
    SerialExecutor,
    execute_cell,
    execute_cell_capture,
    execute_cell_replay,
    execute_replay_group,
    make_executor,
)
from repro.campaign.spec import (
    QUICK_BENCHMARKS,
    Campaign,
    ExperimentSettings,
    RunSpec,
    available_benchmarks,
)
from repro.campaign.summary import ConfigurationSummary

__all__ = [
    "Campaign",
    "CampaignOutcome",
    "ConfigBuilder",
    "ConfigurationSummary",
    "Executor",
    "ExecutorTaskError",
    "ExperimentSettings",
    "ParallelExecutor",
    "QUICK_BENCHMARKS",
    "ResultCache",
    "RunSpec",
    "SerialExecutor",
    "available_benchmarks",
    "execute_cell",
    "execute_cell_capture",
    "execute_cell_replay",
    "execute_replay_group",
    "make_executor",
    "run_campaign",
    "run_configuration",
    "scale_paper_intervals",
    "summarize",
    "summarize_many",
]

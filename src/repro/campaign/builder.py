"""Fluent construction and rewriting of :class:`ProcessorConfig` trees.

The processor configuration is a tree of frozen dataclasses, so deriving a
variant used to require nested :func:`dataclasses.replace` calls at every
site (``replace(config, frontend=replace(config.frontend, trace_cache=
replace(...)))``).  :class:`ConfigBuilder` replaces that plumbing with a
small fluent API: every method returns a *new* builder, so partially applied
builders can be shared and reused safely::

    config = (
        ConfigBuilder.baseline()
        .distributed(num_frontends=2)
        .bank_hopping()
        .biased_mapping()
        .named("distributed_frontend")
        .build()
    )

The presets in :mod:`repro.core.presets`, the ablation sweeps and the
interval scaling applied by every experiment campaign are all expressed
through this builder.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.sim.config import ProcessorConfig, SteeringPolicy

#: Any periodic interval at or above this value is considered "unscaled"
#: (the paper's 10 M-cycle default) and is replaced by the experiment-scale
#: interval; smaller values were set deliberately (e.g. by an ablation sweep)
#: and are preserved.
UNSCALED_INTERVAL_THRESHOLD = 1_000_000


def scale_paper_intervals(config: ProcessorConfig, interval_cycles: int) -> ProcessorConfig:
    """Scale the paper-default 10 M-cycle intervals of ``config`` down.

    The thermal update, bank-hop and remap intervals that still carry the
    paper's default are replaced by ``interval_cycles``; intervals below
    :data:`UNSCALED_INTERVAL_THRESHOLD` were set deliberately (ablations)
    and are preserved.
    """
    if interval_cycles <= 0:
        raise ValueError("interval_cycles must be positive")
    builder = ConfigBuilder(config)
    tc = config.frontend.trace_cache
    tc_changes = {}
    if tc.hop_interval_cycles >= UNSCALED_INTERVAL_THRESHOLD:
        tc_changes["hop_interval_cycles"] = interval_cycles
    if tc.remap_interval_cycles >= UNSCALED_INTERVAL_THRESHOLD:
        tc_changes["remap_interval_cycles"] = interval_cycles
    if tc_changes:
        builder = builder.trace_cache(**tc_changes)
    if config.thermal.interval_cycles >= UNSCALED_INTERVAL_THRESHOLD:
        builder = builder.thermal(interval_cycles=interval_cycles)
    return builder.build()


class ConfigBuilder:
    """Immutable fluent builder over a :class:`ProcessorConfig`.

    Every mutator returns a new builder wrapping a new configuration, so a
    builder can be forked mid-chain; :meth:`build` returns the underlying
    (already validated) frozen configuration.
    """

    __slots__ = ("_config",)

    def __init__(self, base: Optional[ProcessorConfig] = None) -> None:
        self._config = base if base is not None else ProcessorConfig.baseline()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    @classmethod
    def baseline(cls) -> "ConfigBuilder":
        """Start from the paper's Table 1 baseline."""
        return cls(ProcessorConfig.baseline())

    @classmethod
    def from_config(cls, config: ProcessorConfig) -> "ConfigBuilder":
        """Start from an arbitrary existing configuration."""
        return cls(config)

    # ------------------------------------------------------------------
    # Section rewrites (each keyword is a field of the section dataclass)
    # ------------------------------------------------------------------
    def _derive(self, **changes) -> "ConfigBuilder":
        return ConfigBuilder(replace(self._config, **changes))

    def frontend(self, **changes) -> "ConfigBuilder":
        return self._derive(frontend=replace(self._config.frontend, **changes))

    def trace_cache(self, **changes) -> "ConfigBuilder":
        frontend = self._config.frontend
        new_tc = replace(frontend.trace_cache, **changes)
        return self._derive(frontend=replace(frontend, trace_cache=new_tc))

    def backend(self, **changes) -> "ConfigBuilder":
        return self._derive(backend=replace(self._config.backend, **changes))

    def memory(self, **changes) -> "ConfigBuilder":
        return self._derive(memory=replace(self._config.memory, **changes))

    def interconnect(self, **changes) -> "ConfigBuilder":
        return self._derive(interconnect=replace(self._config.interconnect, **changes))

    def power(self, **changes) -> "ConfigBuilder":
        return self._derive(power=replace(self._config.power, **changes))

    def thermal(self, **changes) -> "ConfigBuilder":
        return self._derive(thermal=replace(self._config.thermal, **changes))

    # ------------------------------------------------------------------
    # Paper-technique shorthands
    # ------------------------------------------------------------------
    def named(self, name: str) -> "ConfigBuilder":
        return self._derive(name=name)

    def steering(self, policy: SteeringPolicy) -> "ConfigBuilder":
        return self._derive(steering_policy=policy)

    def distributed(self, num_frontends: int = 2) -> "ConfigBuilder":
        """Distribute rename and commit over ``num_frontends`` partitions."""
        return self.frontend(num_frontends=num_frontends)

    def bank_hopping(self, physical_banks: int = 3) -> "ConfigBuilder":
        """Rotating Vdd-gating with ``physical_banks`` trace-cache banks."""
        return self.trace_cache(physical_banks=physical_banks, bank_hopping=True)

    def biased_mapping(self, threshold_celsius: Optional[float] = None) -> "ConfigBuilder":
        """Enable the thermal-aware biased bank mapping function."""
        changes = {"thermal_aware_mapping": True}
        if threshold_celsius is not None:
            changes["bias_threshold_celsius"] = threshold_celsius
        return self.trace_cache(**changes)

    def blank_silicon(self, physical_banks: int = 3) -> "ConfigBuilder":
        """Statically gate the extra trace-cache bank(s)."""
        return self.trace_cache(physical_banks=physical_banks, blank_silicon=True)

    def scaled_intervals(self, interval_cycles: int) -> "ConfigBuilder":
        """Scale paper-default thermal/hop/remap intervals (see
        :func:`scale_paper_intervals`)."""
        return ConfigBuilder(scale_paper_intervals(self._config, interval_cycles))

    # ------------------------------------------------------------------
    def build(self) -> ProcessorConfig:
        """Return the built (frozen, validated) configuration."""
        return self._config

    def __repr__(self) -> str:
        return f"ConfigBuilder({self._config.name!r})"

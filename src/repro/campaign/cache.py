"""Content-keyed on-disk cache of simulated campaign cells.

Each cell is stored as one JSON file named by the cell's
:meth:`~repro.campaign.spec.RunSpec.cache_key` — a hash over the scaled
configuration, benchmark, trace length, interval and seed — using the same
schema as :mod:`repro.sim.serialization`.  Repeated figure runs therefore
skip simulation entirely: a campaign whose cells are all cached performs
zero simulator invocations.

The cache is safe to share between runs and across released upgrades: a file
that fails to load (corrupt, stale schema, foreign content) is treated as a
miss, and the cache key embeds both the serialization ``SCHEMA_VERSION`` and
the package version, so entries written by a different release are never
matched.  The one case the key cannot see is a *local, unreleased* edit to
simulation code — when developing on the simulator itself, point campaigns at
a fresh ``--cache-dir`` (or delete the old one).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.campaign.spec import RunSpec
from repro.sim.results import SimulationResult
from repro.sim.serialization import SCHEMA_VERSION, load_result, save_result


class ResultCache:
    """Directory of per-cell results keyed by content hash."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _key(self, spec: RunSpec) -> str:
        # Both the serialization schema version and the package version
        # participate in the key: a schema bump must not mis-load old files,
        # and a code change that alters simulation output (without touching
        # the schema) must not silently serve the previous version's numbers
        # from a shared cache directory.
        from repro import __version__

        return f"v{SCHEMA_VERSION}-{__version__}-{spec.cache_key()}"

    def path_for(self, spec: RunSpec) -> Path:
        """On-disk location of the cell's result (whether or not it exists)."""
        return self.directory / f"{self._key(spec)}.json"

    def load(self, spec: RunSpec) -> Optional[SimulationResult]:
        """Return the cached result for ``spec``, or ``None`` on a miss."""
        path = self.path_for(spec)
        if not path.exists():
            self.misses += 1
            return None
        try:
            result = load_result(path)
        except (ValueError, KeyError, TypeError, OSError, json.JSONDecodeError):
            # Anything unreadable is a miss; the entry will be rewritten.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, spec: RunSpec, result: SimulationResult) -> Path:
        """Persist a freshly simulated cell."""
        self.stores += 1
        return save_result(result, self.path_for(spec))

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )

"""Content-keyed on-disk cache of simulated campaign cells and trace artifacts.

Each *result* is stored as one JSON file named by the cell's
:meth:`~repro.campaign.spec.RunSpec.cache_key` — a hash over the scaled
configuration, benchmark, trace length, interval and seed — using the same
schema as :mod:`repro.sim.serialization`.  Repeated figure runs therefore
skip simulation entirely: a campaign whose cells are all cached performs
zero simulator invocations.

Since the two-stage simulation core landed, the cache also holds *activity
traces* (``*.trace.json``): the timing stage's serialized output, keyed by
the cell's :meth:`~repro.campaign.spec.RunSpec.timing_key`.  A physics
sweep that misses on every result key can still hit the trace artifact and
replay all of its cells without a single per-uop timing simulation — the
expensive stage is shared across campaigns, not just within one.

The cache is safe to share between runs and across released upgrades: a file
that fails to load (corrupt, stale schema, foreign content) is treated as a
miss, and both key kinds embed their schema version and the package version,
so entries written by a different release are never matched.  The one case
the keys cannot see is a *local, unreleased* edit to simulation code — when
developing on the simulator itself, point campaigns at a fresh
``--cache-dir`` (or delete the old one).

Because trace artifacts accumulate alongside results, the cache exposes
:meth:`ResultCache.stats` and :meth:`ResultCache.prune` (oldest-first, down
to a byte budget), surfaced on the CLI as ``repro-campaign cache stats`` and
``repro-campaign cache prune --max-bytes N``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.campaign.spec import RunSpec
from repro.sim.activity_trace import TRACE_SCHEMA_VERSION, ActivityTrace
from repro.sim.warmcache import stamp_trace_source
from repro.sim.results import SimulationResult
from repro.sim.serialization import SCHEMA_VERSION, load_result, save_result

#: Suffix of legacy JSON trace artifacts (still loaded, no longer written).
TRACE_SUFFIX = ".trace.json"
#: Suffix of compact binary trace artifacts (what new captures are stored as).
TRACE_BIN_SUFFIX = ".trace.bin"


class ResultCache:
    """Directory of per-cell results and trace artifacts keyed by content hash."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.trace_hits = 0
        self.trace_misses = 0
        self.trace_stores = 0

    def _key(self, spec: RunSpec) -> str:
        # Both the serialization schema version and the package version
        # participate in the key: a schema bump must not mis-load old files,
        # and a code change that alters simulation output (without touching
        # the schema) must not silently serve the previous version's numbers
        # from a shared cache directory.
        from repro import __version__

        return f"v{SCHEMA_VERSION}-{__version__}-{spec.cache_key()}"

    def path_for(self, spec: RunSpec) -> Path:
        """On-disk location of the cell's result (whether or not it exists)."""
        return self.directory / f"{self._key(spec)}.json"

    def load(self, spec: RunSpec) -> Optional[SimulationResult]:
        """Return the cached result for ``spec``, or ``None`` on a miss."""
        path = self.path_for(spec)
        if not path.exists():
            self.misses += 1
            return None
        try:
            result = load_result(path)
        except (ValueError, KeyError, TypeError, OSError, json.JSONDecodeError):
            # Anything unreadable is a miss; the entry will be rewritten.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, spec: RunSpec, result: SimulationResult) -> Path:
        """Persist a freshly simulated cell."""
        self.stores += 1
        return save_result(result, self.path_for(spec))

    # ------------------------------------------------------------------
    # Activity-trace artifacts (keyed by RunSpec.timing_key)
    # ------------------------------------------------------------------
    def trace_path_for(self, timing_key: str) -> Path:
        """On-disk location of a timing key's trace artifact (binary form)."""
        from repro import __version__

        name = f"trace-v{TRACE_SCHEMA_VERSION}-{__version__}-{timing_key}"
        return self.directory / f"{name}{TRACE_BIN_SUFFIX}"

    def _legacy_trace_path(self, path: Path) -> Path:
        """The JSON spelling of a binary trace-artifact path."""
        return path.with_name(path.name[: -len(TRACE_BIN_SUFFIX)] + TRACE_SUFFIX)

    def load_trace(self, timing_key: str) -> Optional[ActivityTrace]:
        """Return the cached activity trace for a timing key, or ``None``.

        Prefers the compact binary artifact; a cache populated by an older
        release that wrote ``*.trace.json`` is still served transparently
        (same key material — only the suffix and encoding changed).
        """
        path = self.trace_path_for(timing_key)
        if not path.exists():
            path = self._legacy_trace_path(path)
        if not path.exists():
            self.trace_misses += 1
            return None
        try:
            if path.name.endswith(TRACE_BIN_SUFFIX):
                trace = ActivityTrace.load_bytes(path)
            else:
                trace = ActivityTrace.load(path)
        except (ValueError, KeyError, TypeError, OSError, json.JSONDecodeError):
            self.trace_misses += 1
            return None
        self.trace_hits += 1
        if path.name.endswith(TRACE_BIN_SUFFIX):
            # Remember the on-disk artifact so the service can ship replay
            # tasks as a zero-copy path reference instead of pickled bytes.
            stamp_trace_source(trace, path)
        return trace

    def store_trace(self, timing_key: str, trace: ActivityTrace) -> Path:
        """Persist a freshly captured activity trace (binary form)."""
        self.trace_stores += 1
        path = trace.save_bytes(self.trace_path_for(timing_key))
        stamp_trace_source(trace, path)
        return path

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def _result_files(self):
        return [
            path
            for path in self.directory.glob("*.json")
            if not path.name.endswith(TRACE_SUFFIX)
        ]

    def _trace_files(self):
        return list(self.directory.glob(f"*{TRACE_SUFFIX}")) + list(
            self.directory.glob(f"*{TRACE_BIN_SUFFIX}")
        )

    @staticmethod
    def _stat_entries(paths):
        """``(path, mtime, size)`` for every path that still exists.

        Listing and stat-ing a shared cache directory is inherently racy:
        another process (a concurrent ``prune``, the service janitor) may
        evict an entry between the two.  Every consumer therefore stats each
        entry exactly once and treats a vanished file as already gone.
        """
        entries = []
        for path in paths:
            try:
                stat = path.stat()
            except OSError:
                continue  # evicted concurrently - no longer our problem
            entries.append((path, stat.st_mtime, stat.st_size))
        return entries

    def stats(self) -> Dict[str, int]:
        """Entry and byte counts by kind (results vs trace artifacts)."""
        results = self._stat_entries(self._result_files())
        traces = self._stat_entries(self._trace_files())
        result_bytes = sum(size for _, _, size in results)
        trace_bytes = sum(size for _, _, size in traces)
        return {
            "results": len(results),
            "result_bytes": result_bytes,
            "traces": len(traces),
            "trace_bytes": trace_bytes,
            "total_bytes": result_bytes + trace_bytes,
        }

    def prune(self, max_bytes: int) -> Dict[str, int]:
        """Delete the oldest entries until the cache fits in ``max_bytes``.

        Results and trace artifacts age together (least-recently-modified
        first) — every entry is re-creatable, a trace merely costs one
        timing simulation to rebuild.  Ties on modification time break by
        file name, so the eviction order is deterministic rather than
        whatever order the filesystem happens to iterate a directory in.
        Entries evicted concurrently by another process count toward the
        freed budget but not toward this call's removal tally.  Returns
        what was removed.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        entries = self._stat_entries(self._result_files() + self._trace_files())
        entries.sort(key=lambda entry: (entry[1], entry[0].name))
        total = sum(size for _, _, size in entries)
        removed = 0
        removed_bytes = 0
        for path, _, size in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                # Someone else pruned it first; the bytes are freed either
                # way, so keep the running total converging on the budget.
                total -= size
                continue
            total -= size
            removed += 1
            removed_bytes += size
        return {
            "removed": removed,
            "removed_bytes": removed_bytes,
            "remaining_bytes": total,
        }

    def __len__(self) -> int:
        """Number of cached *results* (trace artifacts are not cells)."""
        return len(self._result_files())

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores}, "
            f"trace_hits={self.trace_hits}, trace_misses={self.trace_misses}, "
            f"trace_stores={self.trace_stores})"
        )

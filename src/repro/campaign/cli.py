"""``repro-campaign`` — command-line front door of the campaign API.

Subcommands:

* ``list-presets`` — the named frontend organizations of the paper;
* ``list-benchmarks`` — the synthetic SPEC2000-like workloads;
* ``list-scenarios`` — the named workload scenarios (:mod:`repro.scenarios`);
* ``list-policies`` — the dynamic-thermal-management policies (:mod:`repro.dtm`);
* ``run`` — run a paper figure (``--figure fig01|fig12|fig13|fig14``), the
  DTM policy x scenario comparison (``--figure dtm``), the multi-core
  scaling sweep (``--figure multicore``) or an ad-hoc campaign
  (``--configs``/``--benchmarks``/``--dtm``), optionally in parallel
  (``--jobs N``) and with a result cache (``--cache-dir DIR``), printing the
  figure tables and/or writing a JSON summary (``--output FILE``).
  ``--cores N`` composes every configuration into an N-core chip
  (:mod:`repro.chip`); ``--per-core-scenarios "virus+idle;gzip+gzip"``
  names explicit per-core workload mixes (``+`` separates cores, ``;`` or
  ``,`` separates mixes), and ``--dtm`` then sweeps *chip-level* policies
  (``none``, ``core_migration``, ``chip_dvfs``).  ``--timing-mode
  auto|fast|reference`` selects the engine timing path (the vectorized
  fast path is byte-identical to the per-uop golden reference wherever
  ``auto`` picks it);
* ``cache`` — housekeeping for an on-disk result cache, which since the
  two-stage simulation core also holds activity-trace artifacts:
  ``cache stats --cache-dir DIR`` prints entry/byte counts by kind, and
  ``cache prune --cache-dir DIR --max-bytes N`` deletes the oldest entries
  until the directory fits the budget;
* ``floorplan`` — print the floorplan of a named preset;
* ``serve`` — run the campaign service (:mod:`repro.service`): an HTTP job
  server with a persistent worker pool and an optional shared sharded
  result cache (``--cache-dir``/``--cache-max-bytes`` turn on LRU budget
  enforcement via a background janitor).  Ctrl-C drains in-flight jobs
  and exits 130;
* ``submit`` — submit an ad-hoc campaign to a running service
  (``--server URL``) using the same axes flags as ``run``.  If the server
  is unreachable the campaign runs locally instead, with a warning;
  ``--wait`` polls the job to completion and ``--output`` writes its
  results payload;
* ``status`` — list a service's jobs, or show one job (``--job N``,
  ``--results`` embeds the results payload, ``--metrics`` prints server
  metrics);
* ``watch`` — follow one job's NDJSON progress event stream to stdout.

Benchmark lists accept scenario names everywhere (``--benchmarks
thermal_virus,gzip`` is a valid mix), and ``--benchmarks scenarios`` expands
to the whole scenario library.  ``--dtm`` adds a DTM policy axis to an
ad-hoc campaign: policies are separated by ``;`` or ``,`` — a bare
``key=value`` token continues the previous policy's parameter list, so
``none,dvfs:target=85`` parses as two policies.

Examples::

    repro-campaign run --figure fig12 --scale smoke --jobs 4
    repro-campaign run --figure dtm --jobs 4 --output dtm.json
    repro-campaign run --configs baseline --benchmarks scenarios \\
        --dtm "none;dvfs;fetch_throttle:trigger=80,duty=0.25" --uops 6000
    repro-campaign run --configs baseline,bank_hopping \\
        --benchmarks gzip,swim --uops 3000 --cache-dir /tmp/repro-cache \\
        --output summary.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.core import CampaignOutcome, run_campaign
from repro.campaign.executors import Executor, make_executor
from repro.campaign.spec import Campaign, ExperimentSettings, available_benchmarks
from repro.campaign.summary import ConfigurationSummary
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable

#: Block groups included in JSON summaries (the groups the paper reports on).
SUMMARY_GROUPS = (
    "Processor",
    "Frontend",
    "Backend",
    "UL2",
    "ReorderBuffer",
    "RenameTable",
    "TraceCache",
)

_SCALES = {
    "smoke": ExperimentSettings.smoke,
    "quick": ExperimentSettings.quick,
    "full": ExperimentSettings.full,
}


def _benchmarks_from_arg(text: str) -> tuple:
    """Expand a ``--benchmarks`` value; ``scenarios`` means the whole library."""
    names = []
    for name in text.split(","):
        name = name.strip()
        if name == "scenarios":
            from repro.scenarios import SCENARIO_NAMES

            names.extend(SCENARIO_NAMES)
        elif name:
            names.append(name)
    return tuple(names)


def _mixes_from_arg(text: str) -> tuple:
    """Split a ``--per-core-scenarios`` value into per-core workload mixes.

    ``;`` and ``,`` separate mixes; ``+`` separates the cores within one
    mix, so ``"thermal_virus+idle_crawl;gzip+gzip"`` is two 2-core mixes.
    """
    mixes = []
    for piece in text.replace(";", ",").split(","):
        piece = piece.strip()
        if not piece:
            continue
        mix = tuple(name.strip() for name in piece.split("+") if name.strip())
        if not mix:
            raise ValueError(f"empty per-core scenario mix in {text!r}")
        mixes.append(mix)
    if not mixes:
        raise ValueError(f"no per-core scenario mixes in {text!r}")
    return tuple(mixes)


def _policies_from_arg(text: str) -> tuple:
    """Split a ``--dtm`` value into policy specs.

    ``;`` always separates policies.  A comma separates them too, except
    that a ``key=value`` token (no ``:``) continues the previous policy's
    parameter list — so both ``none,dvfs:target=85`` and
    ``fetch_throttle:trigger=80,duty=0.25,none`` parse as intended.
    """
    policies = []
    for piece in text.split(";"):
        current = []
        for token in piece.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" in token and ":" not in token:
                # A bare key=value continues the previous spec's parameters
                # (":" opens the parameter list, "," extends it) — but only
                # within one ";"-delimited piece, since ";" always starts a
                # new policy.
                if not current:
                    raise ValueError(
                        f"misplaced DTM policy parameter {token!r} in "
                        f"{text!r}: a key=value token must follow the "
                        "policy it parameterizes"
                    )
                joiner = "," if ":" in current[-1] else ":"
                current[-1] = f"{current[-1]}{joiner}{token}"
            else:
                current.append(token)
        policies.extend(current)
    return tuple(policies)


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    settings = _SCALES[args.scale or "smoke"]()
    changes: Dict[str, object] = {}
    if args.benchmarks:
        changes["benchmarks"] = _benchmarks_from_arg(args.benchmarks)
        # Scenario sweeps run every workload at full length; the SPEC
        # relative-length table only applies to the paper's benchmarks.
        if all(b not in _spec_names() for b in changes["benchmarks"]):
            changes["honor_relative_length"] = False
    if args.uops is not None:
        changes["uops_per_benchmark"] = args.uops
    if args.seed is not None:
        changes["seed"] = args.seed
    if changes:
        from dataclasses import replace

        settings = replace(settings, **changes)
    return settings


def _spec_names() -> tuple:
    from repro.workloads.profiles import SPEC2000_PROFILES

    return tuple(SPEC2000_PROFILES)


def _summary_payload(summary: ConfigurationSummary) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "benchmarks": sorted(summary.results),
        "mean_ipc": summary.mean_ipc(),
        "mean_power_watts": summary.mean_power(),
        "mean_trace_cache_hit_rate": summary.mean_trace_cache_hit_rate(),
        "temperature_metrics": {
            group: summary.mean_metrics(group) for group in SUMMARY_GROUPS
        },
    }
    if any(r.dtm for r in summary.results.values()):
        payload["dtm"] = {
            "mean_throttle_ratio": summary.mean_dtm("throttle_ratio"),
            "mean_gated_intervals": summary.mean_dtm("gated_intervals"),
            "mean_freq_ratio": summary.mean_dtm("mean_freq_ratio", default=1.0),
        }
    return payload


def _outcome_payload(outcome: CampaignOutcome) -> Dict[str, object]:
    return {
        "campaign": outcome.campaign.name,
        "total_cells": outcome.total_cells,
        "cells_executed": outcome.cells_executed,
        "cache_hits": outcome.cache_hits,
        "executor": outcome.executor_description,
        "configurations": {
            name: _summary_payload(summary)
            for name, summary in outcome.summaries.items()
        },
    }


def _write_output(payload: Dict[str, object], output: Optional[str]) -> None:
    if output is None:
        return
    from pathlib import Path

    path = Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[summary written to {path}]")


def _cmd_list_presets(_args: argparse.Namespace) -> int:
    from repro.core.presets import FrontendOrganization, config_for

    for organization in FrontendOrganization:
        config = config_for(organization)
        tc = config.frontend.trace_cache
        traits = []
        if config.frontend.num_frontends > 1:
            traits.append(f"{config.frontend.num_frontends} frontends")
        if tc.bank_hopping:
            traits.append("bank hopping")
        if tc.thermal_aware_mapping:
            traits.append("biased mapping")
        if tc.blank_silicon:
            traits.append("blank silicon")
        detail = ", ".join(traits) if traits else "paper baseline (Table 1)"
        print(f"{organization.value:<22} {detail}")
    return 0


def _cmd_list_benchmarks(_args: argparse.Namespace) -> int:
    from repro.workloads.profiles import get_profile

    for name in available_benchmarks():
        profile = get_profile(name)
        print(f"{name:<10} {profile.suite}")
    return 0


def _cmd_list_scenarios(_args: argparse.Namespace) -> int:
    from repro.scenarios import SCENARIOS

    for scenario in SCENARIOS.values():
        print(f"{scenario.name:<22} {scenario.title}")
        print(f"{'':<22} stresses: {scenario.stresses}")
    return 0


def _cmd_list_policies(_args: argparse.Namespace) -> int:
    import inspect

    from repro.chip import CHIP_POLICIES
    from repro.dtm import POLICIES

    def show(registry) -> None:
        for name, factory in registry.items():
            defaults = ", ".join(
                f"{p.name}={p.default:g}"
                for p in inspect.signature(factory).parameters.values()
                if isinstance(p.default, (int, float)) and not isinstance(p.default, bool)
            )
            summary = ((inspect.getdoc(factory) or "").splitlines() or [""])[0]
            print(f"{name:<16} {summary}")
            if defaults:
                print(f"{'':<16} defaults: {defaults}")

    show(POLICIES)
    print()
    print("chip-level policies (--cores > 1):")
    show(CHIP_POLICIES)
    return 0


def _format_bytes(count: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return f"{count:.1f} {unit}" if unit != "B" else f"{count} B"
        count /= 1024
    return f"{count} B"  # pragma: no cover - unreachable


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache directory: {cache.directory}")
        print(
            f"  results: {stats['results']} entries, "
            f"{_format_bytes(stats['result_bytes'])}"
        )
        print(
            f"  traces : {stats['traces']} artifacts, "
            f"{_format_bytes(stats['trace_bytes'])}"
        )
        print(f"  total  : {_format_bytes(stats['total_bytes'])}")
        return 0
    # prune
    if args.max_bytes is None:
        raise ValueError("cache prune requires --max-bytes")
    report = cache.prune(args.max_bytes)
    print(
        f"pruned {report['removed']} entries "
        f"({_format_bytes(report['removed_bytes'])}); "
        f"{_format_bytes(report['remaining_bytes'])} remain"
    )
    return 0


def _cmd_floorplan(args: argparse.Namespace) -> int:
    from repro.experiments.floorplans import floorplan_report_for

    print(floorplan_report_for(args.preset).format_table())
    return 0


def _run_dtm_figure(
    args: argparse.Namespace,
    executor: Executor,
    cache: Optional[ResultCache],
) -> int:
    """``--figure dtm``: the policy x scenario comparison sweep."""
    from repro.experiments.fig_dtm_comparison import (
        DEFAULT_POLICIES,
        dtm_settings,
        run_dtm_comparison,
    )

    if args.scale is not None:
        raise ValueError(
            "--scale does not apply to --figure dtm (the sweep has its own "
            "scenario scale); use --benchmarks/--uops/--seed to adjust it"
        )
    config = None
    if args.configs:
        from repro.core.presets import FrontendOrganization, config_for

        names = args.configs.split(",")
        if len(names) != 1:
            raise ValueError(
                "--figure dtm compares policies on one configuration; give "
                f"a single --configs preset (got {names})"
            )
        config = config_for(FrontendOrganization(names[0]))
    settings = dtm_settings(
        scenarios=_benchmarks_from_arg(args.benchmarks) if args.benchmarks else None,
        uops_per_scenario=args.uops if args.uops is not None else 8_000,
        seed=args.seed if args.seed is not None else 7,
    )
    policies = _policies_from_arg(args.dtm) if args.dtm else DEFAULT_POLICIES
    result = run_dtm_comparison(
        settings, policies=policies, config=config, executor=executor, cache=cache
    )
    print(result.format_table())
    payload: Dict[str, object] = {
        "figure": "dtm",
        "config": result.config_name,
        "performance_loss_vs_peak_temp": result.performance_loss_vs_peak_temp(),
        "policies": {
            policy: _summary_payload(summary)
            for policy, summary in result.summaries.items()
        },
    }
    _write_output(payload, args.output)
    return 0


def _run_figure(
    figure: str,
    settings: ExperimentSettings,
    executor: Executor,
    cache: Optional[ResultCache],
    output: Optional[str],
) -> int:
    from repro.experiments import run_fig01, run_fig12, run_fig13, run_fig14

    drivers = {
        "fig01": run_fig01,
        "fig12": run_fig12,
        "fig13": run_fig13,
        "fig14": run_fig14,
    }
    result = drivers[figure](settings, executor=executor, cache=cache)
    print(result.format_table())
    # The figure results expose their ConfigurationSummary objects under
    # slightly different attributes; collect whichever are present.
    collected: Dict[str, ConfigurationSummary] = {}
    for attribute in ("baseline", "distributed", "summary"):
        summary = getattr(result, attribute, None)
        if summary is not None:
            collected[summary.config_name] = summary
    for summary in (getattr(result, "summaries", None) or {}).values():
        collected[summary.config_name] = summary
    payload: Dict[str, object] = {
        "figure": figure,
        "configurations": {
            name: _summary_payload(summary) for name, summary in collected.items()
        },
    }
    _write_output(payload, output)
    return 0


def _run_multicore_figure(
    args: argparse.Namespace,
    executor: Executor,
    cache: Optional[ResultCache],
) -> int:
    """``--figure multicore``: the core-count x mix scaling sweep."""
    from repro.experiments.fig_multicore_scaling import run_multicore_scaling

    config = None
    if args.configs:
        from repro.core.presets import FrontendOrganization, config_for

        names = args.configs.split(",")
        if len(names) != 1:
            raise ValueError(
                "--figure multicore scales one configuration across core "
                f"counts; give a single --configs preset (got {names})"
            )
        config = config_for(FrontendOrganization(names[0]))
    kwargs = {}
    if args.cores is not None:
        # Scale 1 -> N in powers of two (always anchored at the 1-core run,
        # which is bit-identical to the single-core engine).
        counts = [1]
        while counts[-1] * 2 <= args.cores:
            counts.append(counts[-1] * 2)
        if counts[-1] != args.cores:
            counts.append(args.cores)
        kwargs["core_counts"] = tuple(counts)
    result = run_multicore_scaling(
        config=config,
        uops_per_thread=args.uops if args.uops is not None else 2_500,
        seed=args.seed if args.seed is not None else 7,
        executor=executor,
        cache=cache,
        solver_backend=args.solver_backend,
        **kwargs,
    )
    print(result.format_table())
    payload: Dict[str, object] = {
        "figure": "multicore",
        "config": result.config_name,
        "rows": result.rows(),
    }
    _write_output(payload, args.output)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.figure and args.figure not in ("dtm",) and args.dtm:
        raise ValueError(
            f"--dtm does not apply to --figure {args.figure}; the paper "
            "figures simulate without DTM (use --figure dtm or an ad-hoc "
            "--configs campaign to sweep policies)"
        )
    if args.figure and args.per_core_scenarios:
        raise ValueError(
            f"--per-core-scenarios does not apply to --figure {args.figure}; "
            "use an ad-hoc --configs campaign for explicit workload mixes"
        )
    if args.figure and args.figure != "multicore" and args.cores is not None:
        raise ValueError(
            f"--cores does not apply to --figure {args.figure}; the paper "
            "figures are single-core (use --figure multicore or an ad-hoc "
            "--configs campaign for chip runs)"
        )
    if args.cores is not None and args.cores < 1:
        raise ValueError("--cores must be at least 1")
    if args.timing_mode is not None:
        # Carried in the environment (not the cell specs) so it reaches
        # pool worker processes; see ``executors.resolved_timing_mode``.
        import os

        os.environ["REPRO_TIMING_MODE"] = args.timing_mode
    if args.replay_mode != "exact":
        # Also carried in the environment (see executors.resolved_replay_mode)
        # so --figure campaigns — which build their own Campaign objects —
        # and pool workers honor the flag too.
        import os

        os.environ["REPRO_REPLAY_MODE"] = args.replay_mode
    executor = make_executor(args.jobs)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    try:
        if args.figure == "dtm":
            status = _run_dtm_figure(args, executor, cache)
        elif args.figure == "multicore":
            status = _run_multicore_figure(args, executor, cache)
        elif args.figure:
            settings = _settings_from_args(args)
            status = _run_figure(args.figure, settings, executor, cache, args.output)
        else:
            from repro.core.presets import FrontendOrganization, config_for

            settings = _settings_from_args(args)
            names = args.configs.split(",") if args.configs else ["baseline"]
            configs = [config_for(FrontendOrganization(name)) for name in names]
            policies = _policies_from_arg(args.dtm) if args.dtm else ()
            mixes = (
                _mixes_from_arg(args.per_core_scenarios)
                if args.per_core_scenarios
                else ()
            )
            cores = args.cores if args.cores is not None else (
                max(len(mix) for mix in mixes) if mixes else 1
            )
            campaign = Campaign(
                configs,
                settings,
                name="cli",
                dtm_policies=policies,
                cores=cores,
                per_core_scenarios=mixes,
                contention=args.contention,
                solver_backend=args.solver_backend,
                replay_mode=args.replay_mode,
            )
            outcome = run_campaign(campaign, executor, cache)
            from repro.experiments.reporting import format_campaign_outcome

            print(format_campaign_outcome(outcome))
            _write_output(_outcome_payload(outcome), args.output)
            status = 0
    except KeyboardInterrupt:
        # In-flight worker tasks have already drained: ParallelExecutor's
        # pool context manager waits for them on the way out.
        print(
            f"repro-campaign: interrupted after {executor.cells_executed} "
            "simulated cell(s)"
            + ("; completed cells are in the cache" if cache is not None else ""),
            file=sys.stderr,
        )
        return 130
    if cache is not None:
        print(f"[cache] {cache!r}")
    return status


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the HTTP campaign service until interrupted."""
    from repro.service import (
        CampaignService,
        ShardedResultCache,
        WorkerPool,
        create_server,
    )

    cache = None
    if args.cache_dir:
        cache = ShardedResultCache(
            args.cache_dir,
            shards=args.cache_shards,
            max_bytes=args.cache_max_bytes,
        )
        if args.cache_max_bytes is not None:
            cache.start_janitor(args.janitor_interval)
    import os

    workers = args.workers if args.workers else (os.cpu_count() or 2)
    pool = WorkerPool(
        workers=workers,
        mode=args.worker_mode,
        task_timeout=args.task_timeout,
        retries=args.retries,
        keepalive=args.worker_keepalive,
    )
    service = CampaignService(
        pool=pool, cache=cache, max_concurrent_jobs=args.max_jobs
    )
    server = create_server(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    print(f"repro-campaign service listening on {server.address}")
    worker_kind = args.worker_mode
    if args.worker_mode == "process":
        worker_kind += (
            " (persistent, warm caches)" if pool.keepalive else " (fork-per-task)"
        )
    print(
        f"  {workers} {worker_kind} worker(s), "
        f"{args.max_jobs} concurrent job slot(s), "
        + (
            f"cache at {cache.directory}"
            if cache is not None  # an EMPTY cache is falsy (len == 0)
            else "no result cache"
        )
    )
    sys.stdout.flush()
    import signal

    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    # SIGTERM (plain `kill`, container stop) drains like Ctrl-C.  SIGINT
    # alone would not be enough: processes backgrounded by non-interactive
    # shells start with SIGINT ignored, and Python leaves it ignored.
    previous_sigterm = signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print(
            "repro-campaign: interrupt — draining in-flight jobs ...",
            file=sys.stderr,
        )
        # serve_forever already exited via the interrupt; just release the
        # socket (server.shutdown() would wait on the serve loop).
        server.server_close()
        service.shutdown(drain=True, timeout=args.drain_timeout)
        counts = service.store.counts()
        print(
            f"repro-campaign: drained {counts['total']} job(s): "
            f"{counts['done']} done, {counts['failed']} failed, "
            f"{counts['cancelled']} cancelled",
            file=sys.stderr,
        )
        return 130
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
    return 0  # pragma: no cover - serve_forever only exits via interrupt


def _cmd_submit(args: argparse.Namespace) -> int:
    """``submit``: send a campaign to a service, or run locally if down."""
    from repro.service.codec import campaign_from_payload, payload_from_options

    payload = payload_from_options(
        configs=args.configs.split(",") if args.configs else None,
        scale=args.scale,
        benchmarks=list(_benchmarks_from_arg(args.benchmarks))
        if args.benchmarks
        else None,
        uops=args.uops,
        seed=args.seed,
        dtm_policies=_policies_from_arg(args.dtm) if args.dtm else None,
        cores=args.cores,
        per_core_scenarios=_mixes_from_arg(args.per_core_scenarios)
        if args.per_core_scenarios
        else None,
        name=args.name,
    )
    # Validate locally before going near the network: unknown presets or
    # benchmarks fail fast with the domain error (exit 2), and a validated
    # payload is what the local fallback runs.
    campaign = campaign_from_payload(payload)
    if args.tenant != "default":
        payload["tenant"] = args.tenant
    client = ServiceClient(args.server)
    try:
        job = client.submit(payload)
    except (ServiceUnavailable, ServiceError) as error:
        if isinstance(error, ServiceError):
            # 4xx means the submission itself was rejected (bad spec,
            # shutting down with a reason the operator should read) —
            # surface it.  A 5xx is the server failing, not the campaign:
            # fall back like an unreachable server.
            if error.status < 500:
                raise
            reason = f"server error: HTTP {error.status}"
        else:
            reason = error.reason
        print(f"repro-campaign: warning: {error}", file=sys.stderr)
        print(
            f"repro-campaign: falling back to local execution ({reason})",
            file=sys.stderr,
        )
        outcome = run_campaign(campaign, make_executor(args.jobs))
        print(outcome.describe())
        _write_output(_outcome_payload(outcome), args.output)
        return 0
    print(
        f"job {job['id']} {job['state']} on {args.server} "
        f"({job['cells_total']} cells)"
    )
    if not (args.wait or args.output):
        return 0
    final = client.wait(job["id"], timeout=args.timeout)
    line = f"job {final['id']} {final['state']}"
    if final.get("description"):
        line += f": {final['description']}"
    print(line)
    if final.get("error"):
        print(f"repro-campaign: job error: {final['error']}", file=sys.stderr)
    _write_output(final, args.output)
    return 0 if final["state"] == "done" else 1


def _cmd_status(args: argparse.Namespace) -> int:
    """``status``: list a service's jobs, or show one job / the metrics."""
    client = ServiceClient(args.server)
    if args.metrics:
        print(json.dumps(client.metrics(), indent=2, sort_keys=True))
        return 0
    if args.job is None:
        jobs = client.jobs()
        if not jobs:
            print("no jobs submitted")
            return 0
        for job in jobs:
            line = (
                f"#{job['id']:<4} {job['state']:<10} "
                f"{job['campaign']:<16} "
                f"{job['cells_done']}/{job['cells_total']} cells"
            )
            if job.get("error"):
                line += f"  [{job['error']}]"
            print(line)
        return 0
    print(
        json.dumps(
            client.job(args.job, results=args.results), indent=2, sort_keys=True
        )
    )
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """``watch``: follow one job's NDJSON progress stream to stdout."""
    client = ServiceClient(args.server, timeout=args.timeout)
    state = None
    for event in client.events(args.job, since=args.since):
        if event.get("event") == "heartbeat":
            continue
        print(json.dumps(event, sort_keys=True))
        sys.stdout.flush()
        if event.get("event") == "state":
            state = event.get("state")
    return 0 if state in (None, "done") else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run experiment campaigns of the HPCA 2005 distributed-"
        "frontend reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-presets", help="list the named processor configurations")
    sub.add_parser("list-benchmarks", help="list the synthetic SPEC2000 workloads")
    sub.add_parser("list-scenarios", help="list the named workload scenarios")
    sub.add_parser("list-policies", help="list the DTM policies and their defaults")

    floorplan = sub.add_parser("floorplan", help="print the floorplan of a preset")
    floorplan.add_argument("preset", help="preset name, e.g. baseline")

    cache = sub.add_parser(
        "cache", help="inspect or prune an on-disk result/trace cache"
    )
    cache.add_argument(
        "action", choices=("stats", "prune"), help="what to do with the cache"
    )
    cache.add_argument(
        "--cache-dir", required=True, help="directory of the on-disk result cache"
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        help="prune: delete oldest entries until the cache fits this budget",
    )

    run = sub.add_parser("run", help="run a figure or an ad-hoc campaign")
    run.add_argument(
        "--figure",
        choices=("fig01", "fig12", "fig13", "fig14", "dtm", "multicore"),
        help="regenerate one paper figure (or the DTM policy x scenario "
        "comparison, or the multi-core scaling sweep) instead of an ad-hoc "
        "campaign",
    )
    run.add_argument(
        "--cores",
        type=int,
        help="compose each configuration into an N-core chip (repro.chip); "
        "defaults to the widest --per-core-scenarios mix, else 1.  With "
        "--figure multicore, sets the largest core count of the scaling "
        "sweep (1..N in powers of two)",
    )
    run.add_argument(
        "--per-core-scenarios",
        help="explicit per-core workload mixes for a chip campaign: '+' "
        "separates cores, ';' or ',' separates mixes "
        "(e.g. \"thermal_virus+idle_crawl;gzip+gzip\")",
    )
    run.add_argument(
        "--contention",
        default=None,
        help="shared-LLC contention model for chip campaigns: 'none' "
        "(default) or a repro.chip.make_contention spec such as "
        "'shared_llc' or 'shared_llc:service=64,max_extra=300'",
    )
    run.add_argument(
        "--solver-backend",
        choices=("auto", "dense", "sparse"),
        default="auto",
        help="thermal solver factorization: 'auto' (default) keeps small "
        "dies on the dense bit-identical path and flips to sparse SuperLU "
        "above the node threshold; 'dense'/'sparse' force a backend",
    )
    run.add_argument(
        "--configs",
        help="comma-separated preset names (default: baseline)",
    )
    run.add_argument(
        "--dtm",
        help="DTM policy axis: policy specs separated by ';' or ',' (a "
        "key=value token continues the previous policy's parameters, so "
        "\"none,dvfs:target=85\" and \"fetch_throttle:trigger=80,duty=0.25;none\" "
        "both work)",
    )
    run.add_argument(
        "--scale",
        choices=tuple(_SCALES),
        default=None,
        help="experiment scale (default: smoke; not applicable to --figure dtm)",
    )
    run.add_argument(
        "--benchmarks",
        help="comma-separated benchmark/scenario override "
        "('scenarios' expands to the whole scenario library)",
    )
    run.add_argument("--uops", type=int, help="micro-ops per benchmark override")
    run.add_argument("--seed", type=int, help="trace-generation seed override")
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial, 0 = all cores)",
    )
    run.add_argument("--cache-dir", help="directory of the on-disk result cache")
    run.add_argument("--output", help="write a JSON summary to this file")
    run.add_argument(
        "--timing-mode",
        choices=("auto", "fast", "reference"),
        default=None,
        help="engine timing path: 'auto' (default) takes the vectorized fast "
        "path whenever it is byte-identical to the per-uop reference, "
        "'reference' forces the golden per-uop loop, 'fast' demands the "
        "fast path and errors on configurations it cannot reproduce",
    )
    run.add_argument(
        "--replay-mode",
        choices=("exact", "batched", "auto"),
        default="exact",
        help="physics-sweep replay path: 'exact' (default) replays each "
        "cell alone, bit-identical to the coupled run; 'batched' advances "
        "whole thermally-identical sub-groups per interval in one "
        "multi-RHS solve (matches exact within rtol/atol 1e-8); 'auto' "
        "batches sub-groups of 2+ cells without per-cell DTM divergence",
    )

    serve = sub.add_parser(
        "serve", help="run the HTTP campaign service (repro.service)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8737, help="bind port (0 = pick a free one)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker pool size (0 = all cores)",
    )
    serve.add_argument(
        "--worker-mode",
        choices=("thread", "process"),
        default="process",
        help="run cells inline in worker threads, or in crash-contained "
        "subprocesses with timeout/retry (default: process)",
    )
    serve.add_argument(
        "--task-timeout",
        type=float,
        help="kill a cell that runs longer than this many seconds "
        "(process mode only)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries for tasks whose worker process died (default: 1)",
    )
    serve.add_argument(
        "--worker-keepalive",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="process mode: keep worker processes alive across tasks so "
        "warm solver/trace caches persist (default); "
        "--no-worker-keepalive forks a fresh child per task for maximal "
        "crash isolation",
    )
    serve.add_argument(
        "--max-jobs",
        type=int,
        default=4,
        help="jobs allowed to run concurrently; the rest queue as pending",
    )
    serve.add_argument(
        "--cache-dir", help="directory of the shared sharded result cache"
    )
    serve.add_argument(
        "--cache-shards",
        type=int,
        default=16,
        help="shard directories under --cache-dir (default: 16)",
    )
    serve.add_argument(
        "--cache-max-bytes",
        type=int,
        help="LRU byte budget enforced by the background janitor",
    )
    serve.add_argument(
        "--janitor-interval",
        type=float,
        default=30.0,
        help="seconds between janitor budget-enforcement passes",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        help="bound on waiting for in-flight jobs at shutdown",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log HTTP requests to stderr"
    )

    submit = sub.add_parser(
        "submit",
        help="submit an ad-hoc campaign to a running service "
        "(falls back to a local run if unreachable)",
    )
    submit.add_argument(
        "--server",
        default="http://127.0.0.1:8737",
        help="base URL of the campaign service",
    )
    submit.add_argument("--tenant", default="default", help="cache tenant name")
    submit.add_argument("--name", help="campaign name (default: service)")
    submit.add_argument(
        "--configs", help="comma-separated preset names (default: baseline)"
    )
    submit.add_argument(
        "--scale", choices=tuple(_SCALES), help="experiment scale"
    )
    submit.add_argument(
        "--benchmarks",
        help="comma-separated benchmark/scenario override "
        "('scenarios' expands to the whole scenario library)",
    )
    submit.add_argument("--uops", type=int, help="micro-ops per benchmark")
    submit.add_argument("--seed", type=int, help="trace-generation seed")
    submit.add_argument(
        "--dtm", help="DTM policy axis (same syntax as 'run --dtm')"
    )
    submit.add_argument(
        "--cores", type=int, help="compose an N-core chip campaign"
    )
    submit.add_argument(
        "--per-core-scenarios",
        help="explicit per-core workload mixes (same syntax as 'run')",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll the job to completion before exiting",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="--wait polling deadline in seconds",
    )
    submit.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="local-fallback worker processes (1 = serial, 0 = all cores)",
    )
    submit.add_argument(
        "--output",
        help="write the finished job's payload (implies --wait) or, on "
        "local fallback, the campaign summary, to this file",
    )

    status = sub.add_parser(
        "status", help="list a service's jobs, or show one job"
    )
    status.add_argument(
        "--server",
        default="http://127.0.0.1:8737",
        help="base URL of the campaign service",
    )
    status.add_argument("--job", type=int, help="show this job id only")
    status.add_argument(
        "--results",
        action="store_true",
        help="embed the full results payload (with --job)",
    )
    status.add_argument(
        "--metrics", action="store_true", help="print server metrics instead"
    )

    watch = sub.add_parser(
        "watch", help="follow one job's NDJSON progress event stream"
    )
    watch.add_argument(
        "--server",
        default="http://127.0.0.1:8737",
        help="base URL of the campaign service",
    )
    watch.add_argument("--job", type=int, required=True, help="job id to follow")
    watch.add_argument(
        "--since", type=int, default=0, help="replay events from this sequence"
    )
    watch.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="socket timeout for the event stream",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "list-presets": _cmd_list_presets,
        "list-benchmarks": _cmd_list_benchmarks,
        "list-scenarios": _cmd_list_scenarios,
        "list-policies": _cmd_list_policies,
        "floorplan": _cmd_floorplan,
        "cache": _cmd_cache,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "watch": _cmd_watch,
    }
    try:
        return commands[args.command](args)
    except (ValueError, KeyError) as error:
        # Unknown preset/benchmark names and invalid settings raise from the
        # domain layer with self-explanatory messages; present them as CLI
        # errors rather than tracebacks.
        message = error.args[0] if error.args else error
        print(f"repro-campaign: error: {message}", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(f"repro-campaign: service error: {error}", file=sys.stderr)
        return 1
    except ServiceUnavailable as error:
        # submit has its own local fallback; status/watch just report it.
        print(f"repro-campaign: error: {error}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        # run and serve drain and report on their own; this covers the
        # remaining verbs (watch, submit --wait, ...).
        print("repro-campaign: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())

"""``repro-campaign`` — command-line front door of the campaign API.

Subcommands:

* ``list-presets`` — the named frontend organizations of the paper;
* ``list-benchmarks`` — the synthetic SPEC2000-like workloads;
* ``run`` — run a paper figure (``--figure fig01|fig12|fig13|fig14``) or an
  ad-hoc campaign (``--configs``/``--benchmarks``), optionally in parallel
  (``--jobs N``) and with a result cache (``--cache-dir DIR``), printing the
  figure tables and/or writing a JSON summary (``--output FILE``);
* ``floorplan`` — print the floorplan of a named preset.

Examples::

    repro-campaign run --figure fig12 --scale smoke --jobs 4
    repro-campaign run --configs baseline,bank_hopping \\
        --benchmarks gzip,swim --uops 3000 --cache-dir /tmp/repro-cache \\
        --output summary.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.core import CampaignOutcome, run_campaign
from repro.campaign.executors import Executor, make_executor
from repro.campaign.spec import Campaign, ExperimentSettings, available_benchmarks
from repro.campaign.summary import ConfigurationSummary

#: Block groups included in JSON summaries (the groups the paper reports on).
SUMMARY_GROUPS = (
    "Processor",
    "Frontend",
    "Backend",
    "UL2",
    "ReorderBuffer",
    "RenameTable",
    "TraceCache",
)

_SCALES = {
    "smoke": ExperimentSettings.smoke,
    "quick": ExperimentSettings.quick,
    "full": ExperimentSettings.full,
}


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    settings = _SCALES[args.scale]()
    changes: Dict[str, object] = {}
    if args.benchmarks:
        changes["benchmarks"] = tuple(args.benchmarks.split(","))
    if args.uops is not None:
        changes["uops_per_benchmark"] = args.uops
    if args.seed is not None:
        changes["seed"] = args.seed
    if changes:
        from dataclasses import replace

        settings = replace(settings, **changes)
    return settings


def _summary_payload(summary: ConfigurationSummary) -> Dict[str, object]:
    return {
        "benchmarks": sorted(summary.results),
        "mean_ipc": summary.mean_ipc(),
        "mean_power_watts": summary.mean_power(),
        "mean_trace_cache_hit_rate": summary.mean_trace_cache_hit_rate(),
        "temperature_metrics": {
            group: summary.mean_metrics(group) for group in SUMMARY_GROUPS
        },
    }


def _outcome_payload(outcome: CampaignOutcome) -> Dict[str, object]:
    return {
        "campaign": outcome.campaign.name,
        "total_cells": outcome.total_cells,
        "cells_executed": outcome.cells_executed,
        "cache_hits": outcome.cache_hits,
        "executor": outcome.executor_description,
        "configurations": {
            name: _summary_payload(summary)
            for name, summary in outcome.summaries.items()
        },
    }


def _write_output(payload: Dict[str, object], output: Optional[str]) -> None:
    if output is None:
        return
    from pathlib import Path

    path = Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[summary written to {path}]")


def _cmd_list_presets(_args: argparse.Namespace) -> int:
    from repro.core.presets import FrontendOrganization, config_for

    for organization in FrontendOrganization:
        config = config_for(organization)
        tc = config.frontend.trace_cache
        traits = []
        if config.frontend.num_frontends > 1:
            traits.append(f"{config.frontend.num_frontends} frontends")
        if tc.bank_hopping:
            traits.append("bank hopping")
        if tc.thermal_aware_mapping:
            traits.append("biased mapping")
        if tc.blank_silicon:
            traits.append("blank silicon")
        detail = ", ".join(traits) if traits else "paper baseline (Table 1)"
        print(f"{organization.value:<22} {detail}")
    return 0


def _cmd_list_benchmarks(_args: argparse.Namespace) -> int:
    from repro.workloads.profiles import get_profile

    for name in available_benchmarks():
        profile = get_profile(name)
        print(f"{name:<10} {profile.suite}")
    return 0


def _cmd_floorplan(args: argparse.Namespace) -> int:
    from repro.experiments.floorplans import floorplan_report_for

    print(floorplan_report_for(args.preset).format_table())
    return 0


def _run_figure(
    figure: str,
    settings: ExperimentSettings,
    executor: Executor,
    cache: Optional[ResultCache],
    output: Optional[str],
) -> int:
    from repro.experiments import run_fig01, run_fig12, run_fig13, run_fig14

    drivers = {
        "fig01": run_fig01,
        "fig12": run_fig12,
        "fig13": run_fig13,
        "fig14": run_fig14,
    }
    result = drivers[figure](settings, executor=executor, cache=cache)
    print(result.format_table())
    # The figure results expose their ConfigurationSummary objects under
    # slightly different attributes; collect whichever are present.
    collected: Dict[str, ConfigurationSummary] = {}
    for attribute in ("baseline", "distributed", "summary"):
        summary = getattr(result, attribute, None)
        if summary is not None:
            collected[summary.config_name] = summary
    for summary in (getattr(result, "summaries", None) or {}).values():
        collected[summary.config_name] = summary
    payload: Dict[str, object] = {
        "figure": figure,
        "configurations": {
            name: _summary_payload(summary) for name, summary in collected.items()
        },
    }
    _write_output(payload, output)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    settings = _settings_from_args(args)
    executor = make_executor(args.jobs)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    if args.figure:
        status = _run_figure(args.figure, settings, executor, cache, args.output)
    else:
        from repro.core.presets import FrontendOrganization, config_for

        names = args.configs.split(",") if args.configs else ["baseline"]
        configs = [config_for(FrontendOrganization(name)) for name in names]
        campaign = Campaign(configs, settings, name="cli")
        outcome = run_campaign(campaign, executor, cache)
        from repro.experiments.reporting import format_campaign_outcome

        print(format_campaign_outcome(outcome))
        _write_output(_outcome_payload(outcome), args.output)
        status = 0
    if cache is not None:
        print(f"[cache] {cache!r}")
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run experiment campaigns of the HPCA 2005 distributed-"
        "frontend reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-presets", help="list the named processor configurations")
    sub.add_parser("list-benchmarks", help="list the synthetic SPEC2000 workloads")

    floorplan = sub.add_parser("floorplan", help="print the floorplan of a preset")
    floorplan.add_argument("preset", help="preset name, e.g. baseline")

    run = sub.add_parser("run", help="run a figure or an ad-hoc campaign")
    run.add_argument(
        "--figure",
        choices=("fig01", "fig12", "fig13", "fig14"),
        help="regenerate one paper figure instead of an ad-hoc campaign",
    )
    run.add_argument(
        "--configs",
        help="comma-separated preset names (default: baseline)",
    )
    run.add_argument(
        "--scale",
        choices=tuple(_SCALES),
        default="smoke",
        help="experiment scale (default: smoke)",
    )
    run.add_argument("--benchmarks", help="comma-separated benchmark override")
    run.add_argument("--uops", type=int, help="micro-ops per benchmark override")
    run.add_argument("--seed", type=int, help="trace-generation seed override")
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial, 0 = all cores)",
    )
    run.add_argument("--cache-dir", help="directory of the on-disk result cache")
    run.add_argument("--output", help="write a JSON summary to this file")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "list-presets": _cmd_list_presets,
        "list-benchmarks": _cmd_list_benchmarks,
        "floorplan": _cmd_floorplan,
        "run": _cmd_run,
    }
    try:
        return commands[args.command](args)
    except (ValueError, KeyError) as error:
        # Unknown preset/benchmark names and invalid settings raise from the
        # domain layer with self-explanatory messages; present them as CLI
        # errors rather than tracebacks.
        message = error.args[0] if error.args else error
        print(f"repro-campaign: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""``repro-campaign`` — command-line front door of the campaign API.

Subcommands:

* ``list-presets`` — the named frontend organizations of the paper;
* ``list-benchmarks`` — the synthetic SPEC2000-like workloads;
* ``list-scenarios`` — the named workload scenarios (:mod:`repro.scenarios`);
* ``list-policies`` — the dynamic-thermal-management policies (:mod:`repro.dtm`);
* ``run`` — run a paper figure (``--figure fig01|fig12|fig13|fig14``), the
  DTM policy x scenario comparison (``--figure dtm``), the multi-core
  scaling sweep (``--figure multicore``) or an ad-hoc campaign
  (``--configs``/``--benchmarks``/``--dtm``), optionally in parallel
  (``--jobs N``) and with a result cache (``--cache-dir DIR``), printing the
  figure tables and/or writing a JSON summary (``--output FILE``).
  ``--cores N`` composes every configuration into an N-core chip
  (:mod:`repro.chip`); ``--per-core-scenarios "virus+idle;gzip+gzip"``
  names explicit per-core workload mixes (``+`` separates cores, ``;`` or
  ``,`` separates mixes), and ``--dtm`` then sweeps *chip-level* policies
  (``none``, ``core_migration``, ``chip_dvfs``);
* ``cache`` — housekeeping for an on-disk result cache, which since the
  two-stage simulation core also holds activity-trace artifacts:
  ``cache stats --cache-dir DIR`` prints entry/byte counts by kind, and
  ``cache prune --cache-dir DIR --max-bytes N`` deletes the oldest entries
  until the directory fits the budget;
* ``floorplan`` — print the floorplan of a named preset.

Benchmark lists accept scenario names everywhere (``--benchmarks
thermal_virus,gzip`` is a valid mix), and ``--benchmarks scenarios`` expands
to the whole scenario library.  ``--dtm`` adds a DTM policy axis to an
ad-hoc campaign: policies are separated by ``;`` or ``,`` — a bare
``key=value`` token continues the previous policy's parameter list, so
``none,dvfs:target=85`` parses as two policies.

Examples::

    repro-campaign run --figure fig12 --scale smoke --jobs 4
    repro-campaign run --figure dtm --jobs 4 --output dtm.json
    repro-campaign run --configs baseline --benchmarks scenarios \\
        --dtm "none;dvfs;fetch_throttle:trigger=80,duty=0.25" --uops 6000
    repro-campaign run --configs baseline,bank_hopping \\
        --benchmarks gzip,swim --uops 3000 --cache-dir /tmp/repro-cache \\
        --output summary.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.core import CampaignOutcome, run_campaign
from repro.campaign.executors import Executor, make_executor
from repro.campaign.spec import Campaign, ExperimentSettings, available_benchmarks
from repro.campaign.summary import ConfigurationSummary

#: Block groups included in JSON summaries (the groups the paper reports on).
SUMMARY_GROUPS = (
    "Processor",
    "Frontend",
    "Backend",
    "UL2",
    "ReorderBuffer",
    "RenameTable",
    "TraceCache",
)

_SCALES = {
    "smoke": ExperimentSettings.smoke,
    "quick": ExperimentSettings.quick,
    "full": ExperimentSettings.full,
}


def _benchmarks_from_arg(text: str) -> tuple:
    """Expand a ``--benchmarks`` value; ``scenarios`` means the whole library."""
    names = []
    for name in text.split(","):
        name = name.strip()
        if name == "scenarios":
            from repro.scenarios import SCENARIO_NAMES

            names.extend(SCENARIO_NAMES)
        elif name:
            names.append(name)
    return tuple(names)


def _mixes_from_arg(text: str) -> tuple:
    """Split a ``--per-core-scenarios`` value into per-core workload mixes.

    ``;`` and ``,`` separate mixes; ``+`` separates the cores within one
    mix, so ``"thermal_virus+idle_crawl;gzip+gzip"`` is two 2-core mixes.
    """
    mixes = []
    for piece in text.replace(";", ",").split(","):
        piece = piece.strip()
        if not piece:
            continue
        mix = tuple(name.strip() for name in piece.split("+") if name.strip())
        if not mix:
            raise ValueError(f"empty per-core scenario mix in {text!r}")
        mixes.append(mix)
    if not mixes:
        raise ValueError(f"no per-core scenario mixes in {text!r}")
    return tuple(mixes)


def _policies_from_arg(text: str) -> tuple:
    """Split a ``--dtm`` value into policy specs.

    ``;`` always separates policies.  A comma separates them too, except
    that a ``key=value`` token (no ``:``) continues the previous policy's
    parameter list — so both ``none,dvfs:target=85`` and
    ``fetch_throttle:trigger=80,duty=0.25,none`` parse as intended.
    """
    policies = []
    for piece in text.split(";"):
        current = []
        for token in piece.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" in token and ":" not in token:
                # A bare key=value continues the previous spec's parameters
                # (":" opens the parameter list, "," extends it) — but only
                # within one ";"-delimited piece, since ";" always starts a
                # new policy.
                if not current:
                    raise ValueError(
                        f"misplaced DTM policy parameter {token!r} in "
                        f"{text!r}: a key=value token must follow the "
                        "policy it parameterizes"
                    )
                joiner = "," if ":" in current[-1] else ":"
                current[-1] = f"{current[-1]}{joiner}{token}"
            else:
                current.append(token)
        policies.extend(current)
    return tuple(policies)


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    settings = _SCALES[args.scale or "smoke"]()
    changes: Dict[str, object] = {}
    if args.benchmarks:
        changes["benchmarks"] = _benchmarks_from_arg(args.benchmarks)
        # Scenario sweeps run every workload at full length; the SPEC
        # relative-length table only applies to the paper's benchmarks.
        if all(b not in _spec_names() for b in changes["benchmarks"]):
            changes["honor_relative_length"] = False
    if args.uops is not None:
        changes["uops_per_benchmark"] = args.uops
    if args.seed is not None:
        changes["seed"] = args.seed
    if changes:
        from dataclasses import replace

        settings = replace(settings, **changes)
    return settings


def _spec_names() -> tuple:
    from repro.workloads.profiles import SPEC2000_PROFILES

    return tuple(SPEC2000_PROFILES)


def _summary_payload(summary: ConfigurationSummary) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "benchmarks": sorted(summary.results),
        "mean_ipc": summary.mean_ipc(),
        "mean_power_watts": summary.mean_power(),
        "mean_trace_cache_hit_rate": summary.mean_trace_cache_hit_rate(),
        "temperature_metrics": {
            group: summary.mean_metrics(group) for group in SUMMARY_GROUPS
        },
    }
    if any(r.dtm for r in summary.results.values()):
        payload["dtm"] = {
            "mean_throttle_ratio": summary.mean_dtm("throttle_ratio"),
            "mean_gated_intervals": summary.mean_dtm("gated_intervals"),
            "mean_freq_ratio": summary.mean_dtm("mean_freq_ratio", default=1.0),
        }
    return payload


def _outcome_payload(outcome: CampaignOutcome) -> Dict[str, object]:
    return {
        "campaign": outcome.campaign.name,
        "total_cells": outcome.total_cells,
        "cells_executed": outcome.cells_executed,
        "cache_hits": outcome.cache_hits,
        "executor": outcome.executor_description,
        "configurations": {
            name: _summary_payload(summary)
            for name, summary in outcome.summaries.items()
        },
    }


def _write_output(payload: Dict[str, object], output: Optional[str]) -> None:
    if output is None:
        return
    from pathlib import Path

    path = Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[summary written to {path}]")


def _cmd_list_presets(_args: argparse.Namespace) -> int:
    from repro.core.presets import FrontendOrganization, config_for

    for organization in FrontendOrganization:
        config = config_for(organization)
        tc = config.frontend.trace_cache
        traits = []
        if config.frontend.num_frontends > 1:
            traits.append(f"{config.frontend.num_frontends} frontends")
        if tc.bank_hopping:
            traits.append("bank hopping")
        if tc.thermal_aware_mapping:
            traits.append("biased mapping")
        if tc.blank_silicon:
            traits.append("blank silicon")
        detail = ", ".join(traits) if traits else "paper baseline (Table 1)"
        print(f"{organization.value:<22} {detail}")
    return 0


def _cmd_list_benchmarks(_args: argparse.Namespace) -> int:
    from repro.workloads.profiles import get_profile

    for name in available_benchmarks():
        profile = get_profile(name)
        print(f"{name:<10} {profile.suite}")
    return 0


def _cmd_list_scenarios(_args: argparse.Namespace) -> int:
    from repro.scenarios import SCENARIOS

    for scenario in SCENARIOS.values():
        print(f"{scenario.name:<22} {scenario.title}")
        print(f"{'':<22} stresses: {scenario.stresses}")
    return 0


def _cmd_list_policies(_args: argparse.Namespace) -> int:
    import inspect

    from repro.chip import CHIP_POLICIES
    from repro.dtm import POLICIES

    def show(registry) -> None:
        for name, factory in registry.items():
            defaults = ", ".join(
                f"{p.name}={p.default:g}"
                for p in inspect.signature(factory).parameters.values()
                if isinstance(p.default, (int, float)) and not isinstance(p.default, bool)
            )
            summary = ((inspect.getdoc(factory) or "").splitlines() or [""])[0]
            print(f"{name:<16} {summary}")
            if defaults:
                print(f"{'':<16} defaults: {defaults}")

    show(POLICIES)
    print()
    print("chip-level policies (--cores > 1):")
    show(CHIP_POLICIES)
    return 0


def _format_bytes(count: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return f"{count:.1f} {unit}" if unit != "B" else f"{count} B"
        count /= 1024
    return f"{count} B"  # pragma: no cover - unreachable


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache directory: {cache.directory}")
        print(
            f"  results: {stats['results']} entries, "
            f"{_format_bytes(stats['result_bytes'])}"
        )
        print(
            f"  traces : {stats['traces']} artifacts, "
            f"{_format_bytes(stats['trace_bytes'])}"
        )
        print(f"  total  : {_format_bytes(stats['total_bytes'])}")
        return 0
    # prune
    if args.max_bytes is None:
        raise ValueError("cache prune requires --max-bytes")
    report = cache.prune(args.max_bytes)
    print(
        f"pruned {report['removed']} entries "
        f"({_format_bytes(report['removed_bytes'])}); "
        f"{_format_bytes(report['remaining_bytes'])} remain"
    )
    return 0


def _cmd_floorplan(args: argparse.Namespace) -> int:
    from repro.experiments.floorplans import floorplan_report_for

    print(floorplan_report_for(args.preset).format_table())
    return 0


def _run_dtm_figure(
    args: argparse.Namespace,
    executor: Executor,
    cache: Optional[ResultCache],
) -> int:
    """``--figure dtm``: the policy x scenario comparison sweep."""
    from repro.experiments.fig_dtm_comparison import (
        DEFAULT_POLICIES,
        dtm_settings,
        run_dtm_comparison,
    )

    if args.scale is not None:
        raise ValueError(
            "--scale does not apply to --figure dtm (the sweep has its own "
            "scenario scale); use --benchmarks/--uops/--seed to adjust it"
        )
    config = None
    if args.configs:
        from repro.core.presets import FrontendOrganization, config_for

        names = args.configs.split(",")
        if len(names) != 1:
            raise ValueError(
                "--figure dtm compares policies on one configuration; give "
                f"a single --configs preset (got {names})"
            )
        config = config_for(FrontendOrganization(names[0]))
    settings = dtm_settings(
        scenarios=_benchmarks_from_arg(args.benchmarks) if args.benchmarks else None,
        uops_per_scenario=args.uops if args.uops is not None else 8_000,
        seed=args.seed if args.seed is not None else 7,
    )
    policies = _policies_from_arg(args.dtm) if args.dtm else DEFAULT_POLICIES
    result = run_dtm_comparison(
        settings, policies=policies, config=config, executor=executor, cache=cache
    )
    print(result.format_table())
    payload: Dict[str, object] = {
        "figure": "dtm",
        "config": result.config_name,
        "performance_loss_vs_peak_temp": result.performance_loss_vs_peak_temp(),
        "policies": {
            policy: _summary_payload(summary)
            for policy, summary in result.summaries.items()
        },
    }
    _write_output(payload, args.output)
    return 0


def _run_figure(
    figure: str,
    settings: ExperimentSettings,
    executor: Executor,
    cache: Optional[ResultCache],
    output: Optional[str],
) -> int:
    from repro.experiments import run_fig01, run_fig12, run_fig13, run_fig14

    drivers = {
        "fig01": run_fig01,
        "fig12": run_fig12,
        "fig13": run_fig13,
        "fig14": run_fig14,
    }
    result = drivers[figure](settings, executor=executor, cache=cache)
    print(result.format_table())
    # The figure results expose their ConfigurationSummary objects under
    # slightly different attributes; collect whichever are present.
    collected: Dict[str, ConfigurationSummary] = {}
    for attribute in ("baseline", "distributed", "summary"):
        summary = getattr(result, attribute, None)
        if summary is not None:
            collected[summary.config_name] = summary
    for summary in (getattr(result, "summaries", None) or {}).values():
        collected[summary.config_name] = summary
    payload: Dict[str, object] = {
        "figure": figure,
        "configurations": {
            name: _summary_payload(summary) for name, summary in collected.items()
        },
    }
    _write_output(payload, output)
    return 0


def _run_multicore_figure(
    args: argparse.Namespace,
    executor: Executor,
    cache: Optional[ResultCache],
) -> int:
    """``--figure multicore``: the core-count x mix scaling sweep."""
    from repro.experiments.fig_multicore_scaling import run_multicore_scaling

    config = None
    if args.configs:
        from repro.core.presets import FrontendOrganization, config_for

        names = args.configs.split(",")
        if len(names) != 1:
            raise ValueError(
                "--figure multicore scales one configuration across core "
                f"counts; give a single --configs preset (got {names})"
            )
        config = config_for(FrontendOrganization(names[0]))
    kwargs = {}
    if args.cores is not None:
        # Scale 1 -> N in powers of two (always anchored at the 1-core run,
        # which is bit-identical to the single-core engine).
        counts = [1]
        while counts[-1] * 2 <= args.cores:
            counts.append(counts[-1] * 2)
        if counts[-1] != args.cores:
            counts.append(args.cores)
        kwargs["core_counts"] = tuple(counts)
    result = run_multicore_scaling(
        config=config,
        uops_per_thread=args.uops if args.uops is not None else 2_500,
        seed=args.seed if args.seed is not None else 7,
        executor=executor,
        cache=cache,
        **kwargs,
    )
    print(result.format_table())
    payload: Dict[str, object] = {
        "figure": "multicore",
        "config": result.config_name,
        "rows": result.rows(),
    }
    _write_output(payload, args.output)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.figure and args.figure not in ("dtm",) and args.dtm:
        raise ValueError(
            f"--dtm does not apply to --figure {args.figure}; the paper "
            "figures simulate without DTM (use --figure dtm or an ad-hoc "
            "--configs campaign to sweep policies)"
        )
    if args.figure and args.per_core_scenarios:
        raise ValueError(
            f"--per-core-scenarios does not apply to --figure {args.figure}; "
            "use an ad-hoc --configs campaign for explicit workload mixes"
        )
    if args.figure and args.figure != "multicore" and args.cores is not None:
        raise ValueError(
            f"--cores does not apply to --figure {args.figure}; the paper "
            "figures are single-core (use --figure multicore or an ad-hoc "
            "--configs campaign for chip runs)"
        )
    if args.cores is not None and args.cores < 1:
        raise ValueError("--cores must be at least 1")
    executor = make_executor(args.jobs)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    if args.figure == "dtm":
        status = _run_dtm_figure(args, executor, cache)
    elif args.figure == "multicore":
        status = _run_multicore_figure(args, executor, cache)
    elif args.figure:
        settings = _settings_from_args(args)
        status = _run_figure(args.figure, settings, executor, cache, args.output)
    else:
        from repro.core.presets import FrontendOrganization, config_for

        settings = _settings_from_args(args)
        names = args.configs.split(",") if args.configs else ["baseline"]
        configs = [config_for(FrontendOrganization(name)) for name in names]
        policies = _policies_from_arg(args.dtm) if args.dtm else ()
        mixes = (
            _mixes_from_arg(args.per_core_scenarios)
            if args.per_core_scenarios
            else ()
        )
        cores = args.cores if args.cores is not None else (
            max(len(mix) for mix in mixes) if mixes else 1
        )
        campaign = Campaign(
            configs,
            settings,
            name="cli",
            dtm_policies=policies,
            cores=cores,
            per_core_scenarios=mixes,
        )
        outcome = run_campaign(campaign, executor, cache)
        from repro.experiments.reporting import format_campaign_outcome

        print(format_campaign_outcome(outcome))
        _write_output(_outcome_payload(outcome), args.output)
        status = 0
    if cache is not None:
        print(f"[cache] {cache!r}")
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run experiment campaigns of the HPCA 2005 distributed-"
        "frontend reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-presets", help="list the named processor configurations")
    sub.add_parser("list-benchmarks", help="list the synthetic SPEC2000 workloads")
    sub.add_parser("list-scenarios", help="list the named workload scenarios")
    sub.add_parser("list-policies", help="list the DTM policies and their defaults")

    floorplan = sub.add_parser("floorplan", help="print the floorplan of a preset")
    floorplan.add_argument("preset", help="preset name, e.g. baseline")

    cache = sub.add_parser(
        "cache", help="inspect or prune an on-disk result/trace cache"
    )
    cache.add_argument(
        "action", choices=("stats", "prune"), help="what to do with the cache"
    )
    cache.add_argument(
        "--cache-dir", required=True, help="directory of the on-disk result cache"
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        help="prune: delete oldest entries until the cache fits this budget",
    )

    run = sub.add_parser("run", help="run a figure or an ad-hoc campaign")
    run.add_argument(
        "--figure",
        choices=("fig01", "fig12", "fig13", "fig14", "dtm", "multicore"),
        help="regenerate one paper figure (or the DTM policy x scenario "
        "comparison, or the multi-core scaling sweep) instead of an ad-hoc "
        "campaign",
    )
    run.add_argument(
        "--cores",
        type=int,
        help="compose each configuration into an N-core chip (repro.chip); "
        "defaults to the widest --per-core-scenarios mix, else 1.  With "
        "--figure multicore, sets the largest core count of the scaling "
        "sweep (1..N in powers of two)",
    )
    run.add_argument(
        "--per-core-scenarios",
        help="explicit per-core workload mixes for a chip campaign: '+' "
        "separates cores, ';' or ',' separates mixes "
        "(e.g. \"thermal_virus+idle_crawl;gzip+gzip\")",
    )
    run.add_argument(
        "--configs",
        help="comma-separated preset names (default: baseline)",
    )
    run.add_argument(
        "--dtm",
        help="DTM policy axis: policy specs separated by ';' or ',' (a "
        "key=value token continues the previous policy's parameters, so "
        "\"none,dvfs:target=85\" and \"fetch_throttle:trigger=80,duty=0.25;none\" "
        "both work)",
    )
    run.add_argument(
        "--scale",
        choices=tuple(_SCALES),
        default=None,
        help="experiment scale (default: smoke; not applicable to --figure dtm)",
    )
    run.add_argument(
        "--benchmarks",
        help="comma-separated benchmark/scenario override "
        "('scenarios' expands to the whole scenario library)",
    )
    run.add_argument("--uops", type=int, help="micro-ops per benchmark override")
    run.add_argument("--seed", type=int, help="trace-generation seed override")
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial, 0 = all cores)",
    )
    run.add_argument("--cache-dir", help="directory of the on-disk result cache")
    run.add_argument("--output", help="write a JSON summary to this file")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "list-presets": _cmd_list_presets,
        "list-benchmarks": _cmd_list_benchmarks,
        "list-scenarios": _cmd_list_scenarios,
        "list-policies": _cmd_list_policies,
        "floorplan": _cmd_floorplan,
        "cache": _cmd_cache,
        "run": _cmd_run,
    }
    try:
        return commands[args.command](args)
    except (ValueError, KeyError) as error:
        # Unknown preset/benchmark names and invalid settings raise from the
        # domain layer with self-explanatory messages; present them as CLI
        # errors rather than tracebacks.
        message = error.args[0] if error.args else error
        print(f"repro-campaign: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Campaign orchestration: cache lookup, trace sharing, execution, aggregation.

:func:`run_campaign` is the single execution path of every experiment in the
reproduction.  It expands a declarative :class:`~repro.campaign.spec.Campaign`
into independent cells, satisfies as many as possible from the optional
:class:`~repro.campaign.cache.ResultCache`, and routes the remainder through
the two-stage simulation core:

1. cells whose timing depends on their physics (thermal-aware mapping,
   feedback-bearing DTM — see :meth:`RunSpec.replay_reason`) run the exact
   *coupled* path, as before;
2. replay-eligible cells are grouped by
   :meth:`~repro.campaign.spec.RunSpec.timing_key`; each group captures its
   per-uop timing simulation **once** (an
   :class:`~repro.sim.activity_trace.ActivityTrace`, stored as a
   content-keyed artifact in the cache) and every other cell of the group
   *replays* the physics stage over the shared trace — bit-identical to the
   coupled run, at array-pipeline speed.

Fresh results are stored back into the cache, and everything folds into
per-variant :class:`~repro.campaign.summary.ConfigurationSummary` objects —
keyed by configuration name, or by ``"<config>@<policy>"`` when the campaign
sweeps a DTM policy axis — the shape the figure drivers consume.

The single-configuration conveniences :func:`run_configuration`,
:func:`summarize` and :func:`summarize_many` live here too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.cache import ResultCache
from repro.campaign.executors import (
    Executor,
    SerialExecutor,
    execute_campaign_task,
    execute_chip_cell,
    execute_chip_replay_group,
    execute_replay_group,
)
from repro.campaign.spec import Campaign, ExperimentSettings, RunSpec
from repro.campaign.summary import ConfigurationSummary
from repro.sim.activity_trace import ActivityTrace
from repro.sim.config import ProcessorConfig
from repro.sim.results import SimulationResult


@dataclass
class CampaignOutcome:
    """Everything a finished campaign produced, plus execution provenance."""

    campaign: Campaign
    #: Per-variant aggregates in campaign order, keyed by configuration name
    #: — or, when the campaign has a DTM policy axis, by the
    #: ``"<config>@<policy>"`` variant name (see :attr:`RunSpec.variant`).
    summaries: Dict[str, ConfigurationSummary] = field(default_factory=dict)
    #: Number of cells that ran a coupled timing simulation (captures
    #: included) in the executor.
    cells_executed: int = 0
    #: Number of cells satisfied by replaying a shared activity trace.
    cells_replayed: int = 0
    #: Number of activity traces captured during this campaign.
    traces_captured: int = 0
    #: Number of cells satisfied from the result cache.
    cache_hits: int = 0
    #: Backend description (for reports / CLI output).
    executor_description: str = "SerialExecutor"
    #: Execution-runtime facts from the executor (mode, keepalive, warm
    #: solver/trace cache hit counters, worker respawns — whatever the
    #: backend can observe; see :meth:`Executor.runtime_info`).  Purely
    #: informational: never part of any cache key and never affects results.
    runtime: Dict[str, object] = field(default_factory=dict)

    @property
    def total_cells(self) -> int:
        return len(self.campaign)

    def summary_for(self, config_name: str) -> ConfigurationSummary:
        return self.summaries[config_name]

    def describe(self) -> str:
        policy_axis = (
            f"{len(self.campaign.dtm_policies)} DTM policies x "
            if self.campaign.dtm_policies
            else ""
        )
        if self.campaign.is_chip:
            workload_axis = (
                f"{len(self.campaign.mixes())} mixes on "
                f"{self.campaign.cores}-core chips"
            )
        else:
            workload_axis = f"{len(self.campaign.settings.benchmarks)} benchmarks"
        return (
            f"campaign '{self.campaign.name}': {self.total_cells} cells "
            f"({len(self.campaign.configs)} configs x {policy_axis}"
            f"{workload_axis}), "
            f"{self.cells_executed} simulated, {self.cells_replayed} replayed, "
            f"{self.cache_hits} from cache "
            f"[{self.executor_description}]"
        )


def _plan_two_stage(
    pending: Sequence[Tuple[int, RunSpec]],
    cache: Optional[ResultCache],
) -> Tuple[
    List[Tuple[str, RunSpec, int]],
    List[Tuple[int, RunSpec, Optional[str]]],
    Dict[str, ActivityTrace],
]:
    """Split pending cells into replay groups and coupled stragglers.

    Returns ``(replays, phase1, cached_traces)`` where ``phase1`` holds
    ``(slot, spec, capture_key)`` tasks (``capture_key`` is the timing key
    to record a trace for, or ``None`` for a plain coupled run) and
    ``replays`` holds ``(timing_key, spec, slot)`` cells whose trace comes
    either from ``cached_traces`` or from this campaign's capture cell.

    A replay-eligible singleton group only captures when a cache is
    attached (the trace then pays off across campaigns); without one, a
    trace nobody replays would be pure overhead.
    """
    replays: List[Tuple[str, RunSpec, int]] = []
    phase1: List[Tuple[int, RunSpec, Optional[str]]] = []
    cached_traces: Dict[str, ActivityTrace] = {}

    groups: Dict[str, List[Tuple[int, RunSpec]]] = {}
    for slot, spec in pending:
        if spec.replayable:
            groups.setdefault(spec.timing_key(), []).append((slot, spec))
        else:
            phase1.append((slot, spec, None))

    for key, members in groups.items():
        trace = cache.load_trace(key) if cache is not None else None
        if trace is not None:
            cached_traces[key] = trace
            replays.extend((key, spec, slot) for slot, spec in members)
            continue
        if len(members) == 1 and cache is None:
            slot, spec = members[0]
            phase1.append((slot, spec, None))
            continue
        (first_slot, first_spec), rest = members[0], members[1:]
        phase1.append((first_slot, first_spec, key))
        replays.extend((key, spec, slot) for slot, spec in rest)
    return replays, phase1, cached_traces


def run_campaign(
    campaign: Campaign,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    replay: bool = True,
) -> CampaignOutcome:
    """Execute a campaign and aggregate its results.

    ``executor`` defaults to a fresh :class:`SerialExecutor`; pass a
    :class:`~repro.campaign.executors.ParallelExecutor` to fan the cells out
    over worker processes.  With a ``cache``, cells whose content key is
    already present are loaded instead of simulated and fresh results are
    stored back, so a repeated campaign performs zero simulator invocations.

    ``replay`` enables the two-stage fast path (the default): cells sharing
    a :meth:`~repro.campaign.spec.RunSpec.timing_key` run the per-uop timing
    simulation once and replay the physics stage over the captured activity
    trace — bit-identical to the coupled path, which ``replay=False``
    forces for every cell (useful for benchmarking and equivalence tests).
    """
    if executor is None:
        executor = SerialExecutor()
    if campaign.is_chip:
        return _run_chip_campaign(campaign, executor, cache, replay)
    cells = campaign.cells()

    results: List[Optional[SimulationResult]] = [None] * len(cells)
    pending: List[Tuple[int, RunSpec]] = []
    cache_hits = 0
    for index, spec in enumerate(cells):
        cached = cache.load(spec) if cache is not None else None
        if cached is not None:
            results[index] = cached
            cache_hits += 1
        else:
            pending.append((index, spec))

    # A pre-two-stage Executor subclass may only implement run_cells; the
    # capture/replay phases need the generic run_tasks primitive, so such
    # executors transparently get the historical all-coupled behaviour.
    supports_tasks = type(executor).run_tasks is not Executor.run_tasks
    if replay and supports_tasks:
        replays, phase1, traces = _plan_two_stage(pending, cache)
    else:
        replays, phase1, traces = [], [(s, spec, None) for s, spec in pending], {}

    # Phase 1: coupled timing simulations (some of them capturing a trace).
    executed_before = executor.cells_executed
    if any(key is not None for _, _, key in phase1):
        tasks = [
            ("capture" if key is not None else "run", spec)
            for _, spec, key in phase1
        ]
        outputs = executor.run_tasks(execute_campaign_task, tasks)
        executor.cells_executed += len(tasks)
    else:
        specs = [spec for _, spec, _ in phase1]
        fresh = executor.run_cells(specs) if specs else []
        outputs = [(result, None) for result in fresh]
    if len(outputs) != len(phase1):
        raise RuntimeError(
            f"executor returned {len(outputs)} results for {len(phase1)} cells"
        )
    traces_captured = 0
    for (slot, spec, key), (result, trace) in zip(phase1, outputs):
        results[slot] = result
        if cache is not None:
            cache.store(spec, result)
        if key is not None:
            if trace is None:
                raise RuntimeError(
                    f"capture cell {spec.benchmark!r} returned no activity trace"
                )
            traces[key] = trace
            traces_captured += 1
            if cache is not None:
                cache.store_trace(key, trace)

    # Phase 2: physics-only replays, one task per timing-key group so each
    # shared trace crosses a process boundary once, not once per cell.
    group_members: Dict[str, List[Tuple[RunSpec, int]]] = {}
    for key, spec, slot in replays:
        group_members.setdefault(key, []).append((spec, slot))
    replay_tasks = [
        (traces[key], tuple(spec for spec, _ in members))
        for key, members in group_members.items()
    ]
    replayed_groups = (
        executor.run_tasks(execute_replay_group, replay_tasks) if replay_tasks else []
    )
    if len(replayed_groups) != len(replay_tasks):
        raise RuntimeError(
            f"executor returned {len(replayed_groups)} groups for "
            f"{len(replay_tasks)} replayed groups"
        )
    for members, group_results in zip(group_members.values(), replayed_groups):
        if len(group_results) != len(members):
            raise RuntimeError(
                f"replay group returned {len(group_results)} results for "
                f"{len(members)} cells"
            )
        for (spec, slot), result in zip(members, group_results):
            results[slot] = result
            if cache is not None:
                cache.store(spec, result)

    outcome = CampaignOutcome(
        campaign=campaign,
        cells_executed=executor.cells_executed - executed_before,
        cells_replayed=len(replays),
        traces_captured=traces_captured,
        cache_hits=cache_hits,
        executor_description=executor.describe(),
        runtime=executor.runtime_info(),
    )
    for variant in campaign.variant_names():
        outcome.summaries[variant] = ConfigurationSummary(config_name=variant)
    for spec, result in zip(cells, results):
        assert result is not None
        outcome.summaries[spec.variant].results[spec.benchmark] = result
    return outcome


def _run_chip_campaign(
    campaign: Campaign,
    executor: Executor,
    cache: Optional[ResultCache],
    replay: bool,
) -> CampaignOutcome:
    """Execute a chip campaign (the ``cores`` / ``per_core_scenarios`` axes).

    The chip analogue of the two-stage plan: every replay-eligible chip
    cell decomposes into per-thread *single-core* timing runs
    (:meth:`~repro.chip.ChipRunSpec.core_specs`), whose activity traces are
    looked up in the cache under the ordinary single-core timing keys.
    Missing traces are captured once each — a capture is a plain
    single-core cell, so its result seeds the cache for single-core
    campaigns too — and every chip cell then *replays* the composite-die
    physics over its threads' traces, bit-identical to the coupled chip
    run.  Cells whose chip policy migrates threads by temperature (or whose
    configuration couples temperature into timing) run the exact coupled
    path.
    """
    supports_tasks = type(executor).run_tasks is not Executor.run_tasks
    if not supports_tasks:
        raise ValueError(
            f"{executor.describe()} only implements run_cells; chip "
            "campaigns need an executor with the generic run_tasks primitive"
        )
    cells = campaign.cells()
    results: List[Optional[SimulationResult]] = [None] * len(cells)
    pending: List[Tuple[int, object]] = []
    cache_hits = 0
    for index, spec in enumerate(cells):
        cached = cache.load(spec) if cache is not None else None
        if cached is not None:
            results[index] = cached
            cache_hits += 1
        else:
            pending.append((index, spec))

    executed_before = executor.cells_executed
    replay_cells: List[Tuple[int, object]] = []
    coupled_cells: List[Tuple[int, object]] = []
    for slot, spec in pending:
        if replay and spec.replayable:
            replay_cells.append((slot, spec))
        else:
            coupled_cells.append((slot, spec))

    # Phase 1: resolve the per-thread single-core traces (cache or capture).
    needed: Dict[str, object] = {}
    for _, spec in replay_cells:
        for core_spec in spec.core_specs():
            needed.setdefault(core_spec.timing_key(), core_spec)
    traces: Dict[str, ActivityTrace] = {}
    missing: List[Tuple[str, object]] = []
    for key, core_spec in needed.items():
        trace = cache.load_trace(key) if cache is not None else None
        if trace is not None:
            traces[key] = trace
        else:
            missing.append((key, core_spec))
    traces_captured = 0
    if missing:
        tasks = [("capture", core_spec) for _, core_spec in missing]
        outputs = executor.run_tasks(execute_campaign_task, tasks)
        executor.cells_executed += len(tasks)
        if len(outputs) != len(missing):
            raise RuntimeError(
                f"executor returned {len(outputs)} results for "
                f"{len(missing)} captures"
            )
        for (key, core_spec), (result, trace) in zip(missing, outputs):
            if trace is None:
                raise RuntimeError(
                    f"capture cell {core_spec.benchmark!r} returned no "
                    "activity trace"
                )
            traces[key] = trace
            traces_captured += 1
            if cache is not None:
                cache.store_trace(key, trace)
                cache.store(core_spec, result)

    # Phase 2: replay every eligible chip cell over its threads' traces —
    # one task per trace-set group (a physics sweep over one mix shares its
    # per-core traces), so each trace crosses a process boundary once per
    # group rather than once per cell.
    groups: Dict[Tuple[str, ...], List[Tuple[int, object]]] = {}
    for slot, spec in replay_cells:
        keys = tuple(cs.timing_key() for cs in spec.core_specs())
        groups.setdefault(keys, []).append((slot, spec))
    replay_tasks = [
        (
            tuple(traces[key] for key in keys),
            tuple(spec for _, spec in members),
        )
        for keys, members in groups.items()
    ]
    replayed_groups = (
        executor.run_tasks(execute_chip_replay_group, replay_tasks)
        if replay_tasks
        else []
    )
    if len(replayed_groups) != len(replay_tasks):
        raise RuntimeError(
            f"executor returned {len(replayed_groups)} groups for "
            f"{len(replay_tasks)} replayed chip groups"
        )
    for members, group_results in zip(groups.values(), replayed_groups):
        if len(group_results) != len(members):
            raise RuntimeError(
                f"chip replay group returned {len(group_results)} results "
                f"for {len(members)} cells"
            )
        for (slot, spec), result in zip(members, group_results):
            results[slot] = result
            if cache is not None:
                cache.store(spec, result)

    # Phase 3: coupled chip cells (feedback-bearing chip policies).
    specs = [spec for _, spec in coupled_cells]
    fresh = executor.run_tasks(execute_chip_cell, specs) if specs else []
    executor.cells_executed += len(specs)
    if len(fresh) != len(coupled_cells):
        raise RuntimeError(
            f"executor returned {len(fresh)} results for "
            f"{len(coupled_cells)} coupled chip cells"
        )
    for (slot, spec), result in zip(coupled_cells, fresh):
        results[slot] = result
        if cache is not None:
            cache.store(spec, result)

    outcome = CampaignOutcome(
        campaign=campaign,
        cells_executed=executor.cells_executed - executed_before,
        cells_replayed=len(replay_cells),
        traces_captured=traces_captured,
        cache_hits=cache_hits,
        executor_description=executor.describe(),
        runtime=executor.runtime_info(),
    )
    for variant in campaign.variant_names():
        outcome.summaries[variant] = ConfigurationSummary(config_name=variant)
    for spec, result in zip(cells, results):
        assert result is not None
        outcome.summaries[spec.variant].results[spec.benchmark] = result
    return outcome


# ----------------------------------------------------------------------
# Single-configuration conveniences (the pre-campaign experiment API)
# ----------------------------------------------------------------------
def run_configuration(
    config: ProcessorConfig,
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, SimulationResult]:
    """Simulate ``config`` on every benchmark of ``settings``.

    Returns the per-benchmark results, keyed by benchmark name.
    """
    outcome = run_campaign(Campaign.single(config, settings), executor, cache)
    return outcome.summaries[config.name].results


def summarize(
    config: ProcessorConfig,
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> ConfigurationSummary:
    """Run a configuration over all benchmarks and wrap it in a summary."""
    outcome = run_campaign(Campaign.single(config, settings), executor, cache)
    return outcome.summaries[config.name]


def summarize_many(
    configs: Sequence[ProcessorConfig],
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, ConfigurationSummary]:
    """Summaries for several configurations, keyed by configuration name."""
    outcome = run_campaign(Campaign(configs, settings), executor, cache)
    return outcome.summaries

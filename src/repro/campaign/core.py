"""Campaign orchestration: cache lookup, execution, aggregation.

:func:`run_campaign` is the single execution path of every experiment in the
reproduction.  It expands a declarative :class:`~repro.campaign.spec.Campaign`
into independent cells, satisfies as many as possible from the optional
:class:`~repro.campaign.cache.ResultCache`, hands the remaining cells to the
chosen :class:`~repro.campaign.executors.Executor`, stores fresh results back
into the cache, and folds everything into per-variant
:class:`~repro.campaign.summary.ConfigurationSummary` objects — keyed by
configuration name, or by ``"<config>@<policy>"`` when the campaign sweeps a
DTM policy axis — the shape the figure drivers consume.

The single-configuration conveniences :func:`run_configuration`,
:func:`summarize` and :func:`summarize_many` live here too; they used to be
the experiment runner (``repro.experiments.runner``, now a deprecated shim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.executors import Executor, SerialExecutor
from repro.campaign.spec import Campaign, ExperimentSettings, RunSpec
from repro.campaign.summary import ConfigurationSummary
from repro.sim.config import ProcessorConfig
from repro.sim.results import SimulationResult


@dataclass
class CampaignOutcome:
    """Everything a finished campaign produced, plus execution provenance."""

    campaign: Campaign
    #: Per-variant aggregates in campaign order, keyed by configuration name
    #: — or, when the campaign has a DTM policy axis, by the
    #: ``"<config>@<policy>"`` variant name (see :attr:`RunSpec.variant`).
    summaries: Dict[str, ConfigurationSummary] = field(default_factory=dict)
    #: Number of cells actually simulated by the executor.
    cells_executed: int = 0
    #: Number of cells satisfied from the result cache.
    cache_hits: int = 0
    #: Backend description (for reports / CLI output).
    executor_description: str = "SerialExecutor"

    @property
    def total_cells(self) -> int:
        return len(self.campaign)

    def summary_for(self, config_name: str) -> ConfigurationSummary:
        return self.summaries[config_name]

    def describe(self) -> str:
        policy_axis = (
            f"{len(self.campaign.dtm_policies)} DTM policies x "
            if self.campaign.dtm_policies
            else ""
        )
        return (
            f"campaign '{self.campaign.name}': {self.total_cells} cells "
            f"({len(self.campaign.configs)} configs x {policy_axis}"
            f"{len(self.campaign.settings.benchmarks)} benchmarks), "
            f"{self.cells_executed} simulated, {self.cache_hits} from cache "
            f"[{self.executor_description}]"
        )


def run_campaign(
    campaign: Campaign,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> CampaignOutcome:
    """Execute a campaign and aggregate its results.

    ``executor`` defaults to a fresh :class:`SerialExecutor`; pass a
    :class:`~repro.campaign.executors.ParallelExecutor` to fan the cells out
    over worker processes.  With a ``cache``, cells whose content key is
    already present are loaded instead of simulated and fresh results are
    stored back, so a repeated campaign performs zero simulator invocations.
    """
    if executor is None:
        executor = SerialExecutor()
    cells = campaign.cells()

    results: List[Optional[SimulationResult]] = [None] * len(cells)
    pending: List[RunSpec] = []
    pending_slots: List[int] = []
    cache_hits = 0
    for index, spec in enumerate(cells):
        cached = cache.load(spec) if cache is not None else None
        if cached is not None:
            results[index] = cached
            cache_hits += 1
        else:
            pending.append(spec)
            pending_slots.append(index)

    executed_before = executor.cells_executed
    fresh = executor.run_cells(pending) if pending else []
    if len(fresh) != len(pending):
        raise RuntimeError(
            f"executor returned {len(fresh)} results for {len(pending)} cells"
        )
    for slot, spec, result in zip(pending_slots, pending, fresh):
        results[slot] = result
        if cache is not None:
            cache.store(spec, result)

    outcome = CampaignOutcome(
        campaign=campaign,
        cells_executed=executor.cells_executed - executed_before,
        cache_hits=cache_hits,
        executor_description=executor.describe(),
    )
    for variant in campaign.variant_names():
        outcome.summaries[variant] = ConfigurationSummary(config_name=variant)
    for spec, result in zip(cells, results):
        assert result is not None
        outcome.summaries[spec.variant].results[spec.benchmark] = result
    return outcome


# ----------------------------------------------------------------------
# Single-configuration conveniences (the pre-campaign experiment API)
# ----------------------------------------------------------------------
def run_configuration(
    config: ProcessorConfig,
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, SimulationResult]:
    """Simulate ``config`` on every benchmark of ``settings``.

    Returns the per-benchmark results, keyed by benchmark name.
    """
    outcome = run_campaign(Campaign.single(config, settings), executor, cache)
    return outcome.summaries[config.name].results


def summarize(
    config: ProcessorConfig,
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> ConfigurationSummary:
    """Run a configuration over all benchmarks and wrap it in a summary."""
    outcome = run_campaign(Campaign.single(config, settings), executor, cache)
    return outcome.summaries[config.name]


def summarize_many(
    configs: Sequence[ProcessorConfig],
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, ConfigurationSummary]:
    """Summaries for several configurations, keyed by configuration name."""
    outcome = run_campaign(Campaign(configs, settings), executor, cache)
    return outcome.summaries

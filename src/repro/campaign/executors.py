"""Pluggable execution backends for campaign cells.

An :class:`Executor` turns a sequence of :class:`~repro.campaign.spec.RunSpec`
cells into :class:`~repro.sim.results.SimulationResult` objects, in order.
Because every cell is self-contained (scaled config, trace length, interval
and seed all live in the spec), the backends are interchangeable:

* :class:`SerialExecutor` — the legacy in-process loop;
* :class:`ParallelExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out.  Seeding is deterministic per cell (the seed is part of the spec,
  not of execution order), so a parallel run is metric-identical to a serial
  one.

Since the two-stage simulation core landed, an executor actually runs three
kinds of work, all module-level functions so they pickle cleanly into worker
processes:

* :func:`execute_cell` — the classic coupled timing+physics simulation;
* :func:`execute_cell_capture` — a coupled run that also records the
  timing stage's :class:`~repro.sim.activity_trace.ActivityTrace`;
* :func:`execute_cell_replay` — a physics-only replay of a previously
  captured trace (orders of magnitude cheaper than a coupled run).

The campaign layer routes cells between them (see
:func:`repro.campaign.core.run_campaign`); the generic :meth:`Executor.run_tasks`
is the single fan-out primitive underneath.  ``cells_executed`` counts the
cells that ran a *timing* simulation (coupled or capture) — replays are
accounted separately by the campaign outcome — which the result cache's
hit/miss accounting and the tests rely on.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.campaign.spec import RunSpec
from repro.sim.activity_trace import ActivityTrace
from repro.sim.results import SimulationResult
from repro.sim.warmcache import resolve_trace, warm_snapshot
from repro.workloads.generator import TraceGenerator

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


#: Accepted values of the engine ``timing_mode`` selector.
TIMING_MODES = ("auto", "fast", "reference")


def resolved_timing_mode() -> str:
    """Engine timing mode for campaign cells (``REPRO_TIMING_MODE``).

    Campaign cells are identified by *content* (config, workload, seed), and
    the fast timing path is byte-identical to the per-uop reference, so the
    timing mode is deliberately **not** part of a cell's spec or cache key —
    it is an execution knob, carried in the environment so it survives the
    pickle boundary into pool workers (child processes inherit the
    environment under both fork and spawn).  Unset means ``auto``.
    """
    mode = os.environ.get("REPRO_TIMING_MODE", "auto").strip().lower() or "auto"
    if mode not in TIMING_MODES:
        raise ValueError(
            f"REPRO_TIMING_MODE must be one of {', '.join(TIMING_MODES)}, "
            f"not {mode!r}"
        )
    return mode


def resolved_replay_mode(spec_mode: str = "exact") -> str:
    """Replay mode for a replay group (``REPRO_REPLAY_MODE`` wins).

    The mode normally rides on the specs (stamped by
    :class:`~repro.campaign.spec.Campaign` from its ``replay_mode``
    parameter / the CLI's ``--replay-mode``); the environment variable is an
    override with the same role as ``REPRO_TIMING_MODE`` — an execution
    knob, never part of any cache key, inherited by pool workers.
    """
    from repro.sim.group_replay import validate_replay_mode

    mode = os.environ.get("REPRO_REPLAY_MODE", "").strip().lower()
    return validate_replay_mode(mode or spec_mode)


class ExecutorTaskError(RuntimeError):
    """A task could not be completed by its execution backend.

    Raised instead of backend-internal exceptions (most notably
    :class:`concurrent.futures.process.BrokenProcessPool` when a worker
    process dies mid-task) so callers get a typed error carrying the task
    that was being executed.  ``task`` is the first task whose result could
    not be retrieved — with a broken pool every in-flight task fails at
    once, so the attribution is the earliest casualty in submission order.
    """

    def __init__(self, message: str, task: object = None) -> None:
        super().__init__(message)
        self.task = task


def _build_engine(spec: RunSpec):
    """The shared front half of the coupled execution paths."""
    # Imported lazily: ``repro.core.presets`` imports this package to get the
    # ConfigBuilder, so pulling the engine (and through it the processor and
    # ``repro.core``) in at module-import time would be circular.
    from repro.sim.engine import SimulationEngine

    dtm_policy = None
    if spec.dtm_policy is not None:
        from repro.dtm import make_policy

        dtm_policy = make_policy(spec.dtm_policy)
    generator = TraceGenerator(spec.benchmark, seed=spec.seed)
    trace = generator.generate(spec.trace_uops)
    return SimulationEngine(
        spec.config,
        trace.uops,
        spec.benchmark,
        interval_cycles=spec.interval_cycles,
        dtm_policy=dtm_policy,
        timing_mode=resolved_timing_mode(),
    )


def execute_cell(spec: RunSpec) -> SimulationResult:
    """Simulate one campaign cell coupled (timing + physics, one interval loop).

    Module-level (rather than a method) so it pickles cleanly into worker
    processes regardless of the multiprocessing start method.  The cell's
    DTM policy (if any) is instantiated *here*, from its spec string, so
    policy controller state is always fresh per cell and never needs to
    cross a process boundary.
    """
    result = _build_engine(spec).run()
    result.provenance.update(spec.provenance())
    return result


def execute_cell_capture(spec: RunSpec) -> Tuple[SimulationResult, ActivityTrace]:
    """Simulate one cell coupled *and* capture its activity trace.

    The result is exactly what :func:`execute_cell` produces (recording only
    observes the timing stage); the trace can replay every other cell that
    shares this spec's :meth:`~repro.campaign.spec.RunSpec.timing_key`.
    """
    result, trace = _build_engine(spec).run_with_trace(
        trace_provenance={"seed": spec.seed, "trace_uops": spec.trace_uops}
    )
    result.provenance.update(spec.provenance())
    return result, trace


def execute_cell_replay(task: Tuple[RunSpec, ActivityTrace]) -> SimulationResult:
    """Replay one cell's physics over a shared activity trace.

    Takes a single ``(spec, trace)`` tuple so the function maps directly
    over a process pool.  No trace generation, no processor, no per-uop
    simulation — just the array-backed physics stage, bit-identical to the
    coupled run of the same spec.
    """
    spec, trace = task
    trace = resolve_trace(trace)
    from repro.sim.engine import PhysicsStage

    dtm_policy = None
    if spec.dtm_policy is not None:
        from repro.dtm import make_policy

        dtm_policy = make_policy(spec.dtm_policy)
    stage = PhysicsStage(spec.config, interval_cycles=spec.interval_cycles)
    result = stage.replay(trace, dtm_policy=dtm_policy)
    result.provenance.update(spec.provenance())
    result.provenance["replayed"] = True
    return result


def execute_replay_group(
    task: Tuple[ActivityTrace, Sequence[RunSpec]],
) -> List[SimulationResult]:
    """Replay every cell of one timing-key group over its shared trace.

    The campaign layer fans replays out one *group* per task rather than
    one cell per task, so the (potentially large) trace crosses the process
    boundary once per group instead of once per cell.

    How the group's physics is computed is the specs' ``replay_mode``
    (overridable via ``REPRO_REPLAY_MODE``): ``"exact"`` gives each cell its
    own fresh :class:`~repro.sim.engine.PhysicsStage` (bit-identical to the
    coupled run), ``"batched"``/``"auto"`` route the group through
    :func:`repro.sim.group_replay.replay_group`, which advances whole
    thermally-identical sub-groups per interval in one multi-RHS solve.  A
    single-cell group always short-circuits to the exact per-cell path —
    there is nothing to batch, so it must perform zero batch solves.
    """
    trace, specs = task
    # The trace may arrive as a zero-copy TraceRef (mmap'd cache artifact
    # or shared-memory segment) instead of a pickled payload; resolving it
    # consults the worker's warm registry first, so sibling groups over the
    # same trace decode it once per worker.
    trace = resolve_trace(trace)
    specs = list(specs)
    mode = resolved_replay_mode(specs[0].replay_mode if specs else "exact")
    if mode == "exact" or len(specs) <= 1:
        return [execute_cell_replay((spec, trace)) for spec in specs]

    from repro.sim.group_replay import replay_group

    results = replay_group(
        trace,
        [spec.config for spec in specs],
        interval_cycles=specs[0].interval_cycles,
        dtm_policies=[spec.dtm_policy for spec in specs],
        replay_mode=mode,
    )
    for spec, result in zip(specs, results):
        result.provenance.update(spec.provenance())
        result.provenance["replayed"] = True
    return results


def execute_chip_cell(spec) -> SimulationResult:
    """Simulate one chip cell coupled: N timing stages, one composite physics.

    ``spec`` is a :class:`~repro.chip.ChipRunSpec`; like every executor
    function, this builds everything (trace generators, engines, the chip
    policy) inside the executing process so tasks stay picklable.
    """
    from repro.chip import ChipEngine

    sources = [
        TraceGenerator(benchmark, seed=spec.seed).generate(uops).uops
        for benchmark, uops in zip(spec.benchmarks, spec.trace_uops)
    ]
    engine = ChipEngine(
        spec.config,
        sources,
        spec.benchmarks,
        cores=spec.cores,
        interval_cycles=spec.interval_cycles,
        chip_policy=spec.chip_policy,
        contention=spec.contention,
        solver_backend=spec.solver_backend,
        timing_mode=resolved_timing_mode(),
    )
    result = engine.run()
    result.provenance.update(spec.provenance())
    return result


def execute_chip_replay(task) -> SimulationResult:
    """Replay one chip cell's physics over its threads' single-core traces.

    Takes a ``(ChipRunSpec, (trace, ...))`` tuple — one
    :class:`~repro.sim.activity_trace.ActivityTrace` per thread, in core
    order.  The traces are ordinary single-core captures (shared with any
    single-core campaign of the same settings); the result is bit-identical
    to :func:`execute_chip_cell` for the same spec.
    """
    spec, traces = task
    traces = tuple(resolve_trace(trace) for trace in traces)
    from repro.chip import replay_chip

    result = replay_chip(
        spec.config,
        traces,
        cores=spec.cores,
        interval_cycles=spec.interval_cycles,
        chip_policy=spec.chip_policy,
        solver_backend=spec.solver_backend,
    )
    result.provenance.update(spec.provenance())
    result.provenance["replayed"] = True
    return result


def execute_chip_replay_group(task) -> List[SimulationResult]:
    """Replay every chip cell of one trace-set group over its shared traces.

    Mirrors :func:`execute_replay_group` one level up: chip cells whose
    threads resolve to the same per-core trace tuple (a physics sweep over
    one mix) are fanned out one *group* per task, so the traces are pickled
    into a worker once per group instead of once per cell.  (Within one
    task, pickle memoizes the shared trace objects, so a homogeneous mix's
    repeated trace also crosses the boundary once.)  Like
    :func:`execute_replay_group`, the specs' ``replay_mode`` (or the
    ``REPRO_REPLAY_MODE`` override) may route the group through the batched
    multi-RHS path (:func:`repro.chip.engine.replay_chip_group`); a
    single-cell group always takes the exact per-cell path.
    """
    traces, specs = task
    traces = tuple(resolve_trace(trace) for trace in traces)
    specs = list(specs)
    mode = resolved_replay_mode(
        getattr(specs[0], "replay_mode", "exact") if specs else "exact"
    )
    if mode == "exact" or len(specs) <= 1:
        return [execute_chip_replay((spec, traces)) for spec in specs]

    from repro.chip.engine import replay_chip_group

    results = replay_chip_group(traces, specs, replay_mode=mode)
    for spec, result in zip(specs, results):
        result.provenance.update(spec.provenance())
        result.provenance["replayed"] = True
    return results


def execute_campaign_task(
    task: Tuple[str, RunSpec],
) -> Tuple[SimulationResult, Optional[ActivityTrace]]:
    """Dispatch one phase-1 campaign task: ``("run" | "capture", spec)``.

    One uniform function lets a single executor pass mix plain coupled
    cells with trace-capturing ones.
    """
    mode, spec = task
    if mode == "capture":
        return execute_cell_capture(spec)
    return execute_cell(spec), None


def _describe_task(task: object) -> str:
    """A compact human-readable identity of a failed task.

    Tasks take several shapes — a bare :class:`RunSpec`, a ``(mode, spec)``
    phase-1 tuple, a ``(trace, specs)`` replay group — so this digs out the
    spec(s) rather than dumping a full configuration repr into the error.
    """

    def _spec_name(spec: object) -> str:
        config = getattr(spec, "config", None)
        name = getattr(config, "name", "?")
        benchmark = getattr(spec, "benchmark", "?")
        return f"{name}/{benchmark}"

    if isinstance(task, tuple) and len(task) == 2:
        first, second = task
        if isinstance(first, str):
            return f"{first} cell {_spec_name(second)}"
        if isinstance(second, (tuple, list)):
            names = ", ".join(_spec_name(spec) for spec in second)
            return f"replay group [{names}]"
        return _spec_name(first)
    return _spec_name(task)


class Executor:
    """Base class of campaign execution backends.

    :meth:`run_tasks` is the abstract fan-out primitive — subclasses
    implement it once and :meth:`run_cells` (and the campaign layer's
    capture/replay phases) ride on top.  A pre-two-stage subclass that only
    overrides :meth:`run_cells` still works: :func:`repro.campaign.core.
    run_campaign` detects the missing ``run_tasks`` override and routes
    every pending cell through the coupled :meth:`run_cells` path (no
    trace replay, exactly the historical behaviour).
    """

    def __init__(self) -> None:
        #: Total number of cells this executor has simulated *coupled*
        #: (including trace captures); physics-only replays do not count.
        self.cells_executed = 0

    def run_tasks(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Apply ``fn`` to every task, returning results in task order."""
        raise NotImplementedError

    def run_cells(self, cells: Sequence[RunSpec]) -> List[SimulationResult]:
        """Simulate every cell coupled, returning results in cell order."""
        results = self.run_tasks(execute_cell, cells)
        self.cells_executed += len(cells)
        return results

    def runtime_info(self) -> Dict[str, object]:
        """Execution-runtime facts recorded on ``CampaignOutcome.runtime``.

        Subclasses with an observable warm runtime (the serial in-process
        path, the service's persistent worker pool) report their mode and
        warm-cache counters here; backends whose workers die with the
        fan-out (:class:`ParallelExecutor`) report what they can.
        """
        return {}

    def describe(self) -> str:
        return type(self).__name__


class SerialExecutor(Executor):
    """Blocking in-process execution, one task at a time."""

    def run_tasks(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        return [fn(task) for task in tasks]

    def runtime_info(self) -> Dict[str, object]:
        # Serial cells run in this process, so the process-global warm
        # cache counters are exactly this executor's warm/cold history.
        return {"mode": "serial", "warm_cache": warm_snapshot()}


class ParallelExecutor(Executor):
    """Process-pool execution with ``jobs`` worker processes.

    Tasks are distributed one at a time (``chunksize=1``) because individual
    simulations are long relative to the dispatch overhead and their
    durations vary widely across benchmarks.
    """

    def __init__(self, jobs: int = 0) -> None:
        super().__init__()
        if jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs

    def describe(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"

    def runtime_info(self) -> Dict[str, object]:
        # Pool workers persist across the tasks of one fan-out (so the
        # worker-resident warm cache speeds them up), but they die with the
        # pool before their counters can be read back cheaply.
        return {"mode": "parallel", "jobs": self.jobs}

    def run_tasks(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        if not tasks:
            return []
        # A single worker (or a single task) gains nothing from a pool;
        # degrade gracefully to the serial path.
        if self.jobs == 1 or len(tasks) == 1:
            return [fn(task) for task in tasks]
        workers = min(self.jobs, len(tasks))
        # Tasks are submitted individually (the chunksize=1 distribution the
        # docstring describes) and collected in order, so a dead worker can
        # be attributed to the task it took down rather than surfacing as a
        # raw BrokenProcessPool from an anonymous map().
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, task) for task in tasks]
            results: List[_Result] = []
            for task, future in zip(tasks, futures):
                try:
                    results.append(future.result())
                except BrokenProcessPool as error:
                    raise ExecutorTaskError(
                        "a worker process died while executing "
                        f"{_describe_task(task)}",
                        task=task,
                    ) from error
            return results


def make_executor(jobs: int = 1) -> Executor:
    """Executor for a requested parallelism level (1 = serial)."""
    if jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)

"""Pluggable execution backends for campaign cells.

An :class:`Executor` turns a sequence of :class:`~repro.campaign.spec.RunSpec`
cells into :class:`~repro.sim.results.SimulationResult` objects, in order.
Because every cell is self-contained (scaled config, trace length, interval
and seed all live in the spec), the backends are interchangeable:

* :class:`SerialExecutor` — the legacy in-process loop;
* :class:`ParallelExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out.  Seeding is deterministic per cell (the seed is part of the spec,
  not of execution order), so a parallel run is metric-identical to a serial
  one.

Both count the cells they actually simulated in ``cells_executed``, which the
result cache's hit/miss accounting — and the tests — rely on.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Sequence

from repro.campaign.spec import RunSpec
from repro.sim.results import SimulationResult
from repro.workloads.generator import TraceGenerator


def execute_cell(spec: RunSpec) -> SimulationResult:
    """Simulate one campaign cell; the single entry point of every backend.

    Module-level (rather than a method) so it pickles cleanly into worker
    processes regardless of the multiprocessing start method.  The cell's
    DTM policy (if any) is instantiated *here*, from its spec string, so
    policy controller state is always fresh per cell and never needs to
    cross a process boundary.
    """
    # Imported lazily: ``repro.core.presets`` imports this package to get the
    # ConfigBuilder, so pulling the engine (and through it the processor and
    # ``repro.core``) in at module-import time would be circular.
    from repro.sim.engine import SimulationEngine

    dtm_policy = None
    if spec.dtm_policy is not None:
        from repro.dtm import make_policy

        dtm_policy = make_policy(spec.dtm_policy)
    generator = TraceGenerator(spec.benchmark, seed=spec.seed)
    trace = generator.generate(spec.trace_uops)
    engine = SimulationEngine(
        spec.config,
        trace.uops,
        spec.benchmark,
        interval_cycles=spec.interval_cycles,
        dtm_policy=dtm_policy,
    )
    result = engine.run()
    result.provenance.update(spec.provenance())
    return result


class Executor:
    """Base class of campaign execution backends."""

    def __init__(self) -> None:
        #: Total number of cells this executor has actually simulated.
        self.cells_executed = 0

    def run_cells(self, cells: Sequence[RunSpec]) -> List[SimulationResult]:
        """Simulate every cell, returning results in cell order."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class SerialExecutor(Executor):
    """Blocking in-process execution, one cell at a time."""

    def run_cells(self, cells: Sequence[RunSpec]) -> List[SimulationResult]:
        results = []
        for spec in cells:
            results.append(execute_cell(spec))
            self.cells_executed += 1
        return results


class ParallelExecutor(Executor):
    """Process-pool execution with ``jobs`` worker processes.

    Cells are distributed one at a time (``chunksize=1``) because individual
    simulations are long relative to the dispatch overhead and their
    durations vary widely across benchmarks.
    """

    def __init__(self, jobs: int = 0) -> None:
        super().__init__()
        if jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = jobs

    def describe(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"

    def run_cells(self, cells: Sequence[RunSpec]) -> List[SimulationResult]:
        if not cells:
            return []
        # A single worker (or a single cell) gains nothing from a pool;
        # degrade gracefully to the serial path.
        if self.jobs == 1 or len(cells) == 1:
            return SerialExecutor.run_cells(self, cells)
        workers = min(self.jobs, len(cells))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(execute_cell, cells, chunksize=1))
        self.cells_executed += len(cells)
        return results


def make_executor(jobs: int = 1) -> Executor:
    """Executor for a requested parallelism level (1 = serial)."""
    if jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)

"""Declarative experiment specifications.

The paper's evaluation is a grid: ~8 frontend configurations x 26 SPEC2000
workloads x ablation sweeps.  A :class:`Campaign` describes one such grid
declaratively — a set of configurations, a set of benchmarks and an
:class:`ExperimentSettings` scale — and expands it into independent
:class:`RunSpec` cells.  Each cell carries everything needed to simulate it
in isolation (configuration, benchmark, trace length, interval, seed), which
is what makes the pluggable executors in :mod:`repro.campaign.executors`
free to run cells serially, in a process pool, or — later — on remote
shards, while the content-derived :meth:`RunSpec.cache_key` lets the result
cache recognise already-simulated cells across runs.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Tuple

from repro.campaign.builder import scale_paper_intervals
from repro.sim.activity_trace import timing_feedback_reason
from repro.sim.config import ProcessorConfig
from repro.workloads.profiles import SPEC2000_PROFILES, get_profile

#: Sections of :meth:`ProcessorConfig.to_dict` that the timing stage never
#: reads.  Everything else — pipeline widths, steering, clustering, caches,
#: the trace-cache banking/hopping knobs — shapes the instruction stream and
#: therefore participates in :meth:`RunSpec.timing_key`.  The thermal
#: section's one timing-relevant value (``interval_cycles``) is keyed
#: explicitly through :attr:`RunSpec.interval_cycles`.
PHYSICS_CONFIG_SECTIONS = ("power", "thermal")

#: A representative subset used by the quick settings: mixes integer and FP,
#: small and large working sets, high and low branch predictability.
QUICK_BENCHMARKS: Tuple[str, ...] = ("gzip", "gcc", "mcf", "crafty", "swim", "equake", "mesa", "lucas")


def available_benchmarks() -> Tuple[str, ...]:
    """Names of every synthetic SPEC2000-like workload, in profile order."""
    return tuple(SPEC2000_PROFILES)


@dataclass(frozen=True)
class ExperimentSettings:
    """Controls the scale of an experiment run.

    The paper simulates 200 M-instruction slices and updates temperature
    every 10 M cycles; the reproduction scales both down together so each run
    still spans a comparable number of thermal intervals (each representing
    the same 1 ms of heating).
    """

    benchmarks: Tuple[str, ...] = tuple(SPEC2000_PROFILES)
    uops_per_benchmark: int = 8_000
    #: Thermal / hop / remap interval in cycles.  ``None`` derives it from the
    #: trace length so that every run spans roughly ``target_intervals``.
    interval_cycles: Optional[int] = None
    target_intervals: int = 25
    seed: int = 1
    honor_relative_length: bool = True

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("at least one benchmark is required")
        if self.uops_per_benchmark <= 0:
            raise ValueError("uops_per_benchmark must be positive")
        if self.target_intervals <= 0:
            raise ValueError("target_intervals must be positive")
        for name in self.benchmarks:
            get_profile(name)  # raises KeyError for unknown benchmarks

    @classmethod
    def full(cls) -> "ExperimentSettings":
        """All 26 SPEC2000 workloads at the default scaled-down length."""
        return cls()

    @classmethod
    def quick(cls, uops_per_benchmark: int = 6_000) -> "ExperimentSettings":
        """A representative 8-benchmark subset (used by the benchmark harness)."""
        return cls(benchmarks=QUICK_BENCHMARKS, uops_per_benchmark=uops_per_benchmark)

    @classmethod
    def smoke(cls) -> "ExperimentSettings":
        """Tiny two-benchmark run used by the integration tests."""
        return cls(benchmarks=("gzip", "swim"), uops_per_benchmark=3_000)

    def with_benchmarks(self, benchmarks: Iterable[str]) -> "ExperimentSettings":
        return replace(self, benchmarks=tuple(benchmarks))

    def resolved_interval_cycles(self) -> int:
        """Interval length in cycles, derived from the trace length if unset.

        The floor of 800 cycles keeps the bank-hop period large compared to
        the time the trace cache needs to refill a flushed bank; hopping at a
        much finer grain than the paper's 10 M cycles would otherwise turn
        every hop into a hit-rate cliff that the paper's configuration never
        experiences.
        """
        if self.interval_cycles is not None:
            return self.interval_cycles
        # Assume roughly one committed micro-op per cycle when sizing the
        # interval; the exact IPC does not matter, only that every run spans
        # a few tens of intervals.
        return max(800, self.uops_per_benchmark // self.target_intervals)

    def trace_length(self, benchmark: str) -> int:
        """Micro-ops generated for ``benchmark`` at this scale."""
        length = self.uops_per_benchmark
        if self.honor_relative_length:
            profile = get_profile(benchmark)
            length = max(500, int(round(length * profile.relative_length)))
        return length


def _jsonable(value):
    """Recursively convert a value into canonical JSON-serializable form."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def variant_name(config_name: str, dtm_policy: Optional[str]) -> str:
    """Canonical name of a (configuration, DTM policy) combination.

    The key of :attr:`CampaignOutcome.summaries`: the plain configuration
    name for cells without a policy (so pre-DTM campaigns key exactly as
    before), ``"<config>@<policy>"`` otherwise.  Defined once here —
    :attr:`RunSpec.variant`, :meth:`Campaign.variant_names` and the DTM
    comparison driver all go through it.
    """
    if dtm_policy is None:
        return config_name
    return f"{config_name}@{dtm_policy}"


@dataclass(frozen=True)
class RunSpec:
    """One independent cell of a campaign: a (config, benchmark) simulation.

    The configuration stored here is the *scaled* one (intervals already
    reduced to the experiment scale), so executing a cell needs no further
    context — any executor on any host produces the same result from the
    same spec, and the cell's identity can be hashed for the result cache.

    ``dtm_policy`` optionally names a dynamic-thermal-management policy
    (a :func:`repro.dtm.make_policy` spec string such as ``"dvfs"`` or
    ``"fetch_throttle:trigger=80"``) instantiated fresh inside the executing
    process; ``None`` (the default) simulates without DTM, exactly as before
    the policy axis existed.

    ``replay_mode`` is an *execution* knob, not an identity axis: it selects
    how a replay group's physics is computed (``"exact"`` per-cell,
    ``"batched"`` multi-RHS, ``"auto"``; see
    :mod:`repro.sim.group_replay`), never what the result *is* — batched
    results match exact ones within rtol/atol 1e-8.  Like the
    ``REPRO_TIMING_MODE`` env knob, it is deliberately excluded from
    :meth:`key_material` / :meth:`timing_key_material` / :meth:`provenance`,
    so cells keep one cache identity across modes.
    """

    config: ProcessorConfig
    benchmark: str
    trace_uops: int
    interval_cycles: int
    seed: int
    dtm_policy: Optional[str] = None
    replay_mode: str = "exact"

    def __post_init__(self) -> None:
        from repro.sim.group_replay import validate_replay_mode

        object.__setattr__(self, "replay_mode", validate_replay_mode(self.replay_mode))

    @property
    def variant(self) -> str:
        """Name of this cell's (configuration, DTM policy) combination.

        See :func:`variant_name` — the key of
        :attr:`CampaignOutcome.summaries`.
        """
        return variant_name(self.config.name, self.dtm_policy)

    def provenance(self) -> Dict[str, object]:
        """Settings provenance recorded into the produced result."""
        provenance: Dict[str, object] = {
            "benchmark": self.benchmark,
            "trace_uops": self.trace_uops,
            "interval_cycles": self.interval_cycles,
            "seed": self.seed,
        }
        if self.dtm_policy is not None:
            provenance["dtm_policy"] = self.dtm_policy
        return provenance

    def key_material(self) -> Dict[str, object]:
        """The canonical content this cell is identified by.

        The DTM policy only enters the material when set, so every cache key
        minted before the policy axis existed still matches its cell.
        """
        material: Dict[str, object] = {
            "config": _jsonable(self.config.to_dict()),
            "benchmark": self.benchmark,
            "trace_uops": self.trace_uops,
            "interval_cycles": self.interval_cycles,
            "seed": self.seed,
        }
        if self.dtm_policy is not None:
            material["dtm_policy"] = self.dtm_policy
        return material

    def cache_key(self) -> str:
        """Stable content hash identifying this cell across processes/runs."""
        payload = json.dumps(self.key_material(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Two-stage execution: the timing-relevant projection of a cell
    # ------------------------------------------------------------------
    def replay_reason(self) -> Optional[str]:
        """Why this cell must be simulated coupled (``None`` = replayable).

        Mirrors the engine's capture guard
        (:func:`repro.sim.activity_trace.timing_feedback_reason`):
        thermal-aware bank mapping and feedback-bearing DTM policies couple
        temperatures into timing, so their activity trace is a function of
        the physics parameters and cannot be shared across a sweep.
        """
        return timing_feedback_reason(self.config, self.dtm_policy)

    @property
    def replayable(self) -> bool:
        """Whether the cell's physics can be replayed over a shared trace."""
        return self.replay_reason() is None

    def timing_key_material(self) -> Dict[str, object]:
        """The timing-relevant subset of :meth:`key_material`.

        Two specs with equal material here produce *byte-identical*
        activity traces: the timing stage never reads the ``power`` /
        ``thermal`` config sections (nor the configuration's display name),
        and a non-feedback DTM policy never perturbs timing — so the DTM
        axis is deliberately absent (cells with ``dtm_policy=None`` and
        ``"none"`` share one trace; feedback-bearing policies never get
        here, they are excluded by :meth:`replay_reason`).
        """
        config = _jsonable(self.config.to_dict())
        timing_config = {
            key: value
            for key, value in config.items()
            if key not in PHYSICS_CONFIG_SECTIONS and key != "name"
        }
        return {
            "config": timing_config,
            "benchmark": self.benchmark,
            "trace_uops": self.trace_uops,
            "interval_cycles": self.interval_cycles,
            "seed": self.seed,
        }

    def timing_key(self) -> str:
        """Content hash of the timing-relevant projection of this cell.

        Cells sharing a timing key capture one
        :class:`~repro.sim.activity_trace.ActivityTrace` between them; the
        campaign cache stores the trace artifact under this key.
        """
        payload = json.dumps(
            self.timing_key_material(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Campaign:
    """A declarative experiment grid: configs x DTM policies x benchmarks.

    ``dtm_policies`` is the optional dynamic-thermal-management axis: a
    tuple of :func:`repro.dtm.make_policy` spec strings (``"none"``,
    ``"dvfs"``, ``"fetch_throttle:trigger=80"``, ...).  Left empty — the
    default — the campaign has no policy axis and expands exactly as it did
    before DTM existed; with N policies every (config, benchmark) cell is
    simulated once per policy, and summaries are keyed by the cell
    :attr:`~RunSpec.variant` (``"<config>@<policy>"``).

    ``cores`` and ``per_core_scenarios`` are the chip-multiprocessor axes
    (see :mod:`repro.chip`).  With ``cores > 1`` (or any explicit scenario
    mixes) the campaign runs *chip* cells: every configuration is composed
    into a ``cores``-core die and simulated once per workload *mix*.  A mix
    is a tuple of benchmark/scenario names, one per thread (``("virus",
    "gzip")``; strings like ``"virus+gzip"`` are accepted and split); mixes
    shorter than ``cores`` leave idle cores.  ``per_core_scenarios`` left
    empty derives homogeneous mixes from ``settings.benchmarks`` (every
    benchmark replicated onto all cores).  In chip mode ``dtm_policies``
    names *chip-level* policies (:func:`repro.chip.make_chip_policy` specs:
    ``"none"``, ``"core_migration"``, ``"chip_dvfs:target=85"``, ...), and
    summaries are keyed per mix (``"virus+gzip"``) instead of per benchmark.

    ``contention`` (chip mode only) names a shared-LLC contention model
    (a :func:`repro.chip.make_contention` spec such as ``"shared_llc"``);
    contended cells couple threads through memory latency and are simulated
    with the coupled engine instead of trace replay.  ``solver_backend``
    selects the thermal solver factorization for every cell
    (``"auto"``/``"dense"``/``"sparse"``, see :mod:`repro.thermal.solver`).
    """

    configs: Tuple[ProcessorConfig, ...]
    settings: ExperimentSettings
    name: str = "campaign"
    dtm_policies: Tuple[str, ...] = ()
    cores: int = 1
    per_core_scenarios: Tuple[Tuple[str, ...], ...] = ()
    contention: Optional[str] = None
    solver_backend: str = "auto"
    replay_mode: str = "exact"

    def __init__(
        self,
        configs: Iterable[ProcessorConfig],
        settings: ExperimentSettings,
        name: str = "campaign",
        dtm_policies: Iterable[str] = (),
        cores: int = 1,
        per_core_scenarios: Iterable = (),
        contention: Optional[str] = None,
        solver_backend: str = "auto",
        replay_mode: str = "exact",
    ) -> None:
        object.__setattr__(self, "configs", tuple(configs))
        object.__setattr__(self, "settings", settings)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "dtm_policies", tuple(dtm_policies))
        object.__setattr__(self, "cores", int(cores))
        object.__setattr__(self, "contention", contention)
        object.__setattr__(self, "solver_backend", solver_backend)
        from repro.sim.group_replay import validate_replay_mode

        object.__setattr__(self, "replay_mode", validate_replay_mode(replay_mode))
        mixes = tuple(
            tuple(mix.split("+")) if isinstance(mix, str) else tuple(mix)
            for mix in per_core_scenarios
        )
        object.__setattr__(self, "per_core_scenarios", mixes)
        if not self.configs:
            raise ValueError("a campaign needs at least one configuration")
        names = [config.name for config in self.configs]
        if len(set(names)) != len(names):
            raise ValueError(f"configuration names must be unique, got {names}")
        if len(set(self.dtm_policies)) != len(self.dtm_policies):
            raise ValueError(
                f"DTM policy specs must be unique, got {list(self.dtm_policies)}"
            )
        if self.cores < 1:
            raise ValueError("cores must be at least 1")
        if len(set(mixes)) != len(mixes):
            raise ValueError(
                f"per-core scenario mixes must be unique, got {list(mixes)}"
            )
        for mix in mixes:
            if not mix:
                raise ValueError("a per-core scenario mix needs at least one thread")
            if len(mix) > self.cores:
                raise ValueError(
                    f"mix {'+'.join(mix)!r} has {len(mix)} threads but the "
                    f"campaign runs {self.cores}-core chips"
                )
            for scenario in mix:
                get_profile(scenario)  # raises KeyError for unknown names
        from repro.thermal.solver import SOLVER_BACKENDS

        if self.solver_backend not in SOLVER_BACKENDS:
            raise ValueError(
                f"solver_backend must be one of {', '.join(SOLVER_BACKENDS)}, "
                f"not {self.solver_backend!r}"
            )
        if self.contention is not None:
            from repro.chip.contention import make_contention

            # Fail fast on malformed specs; normalize disabled spellings so
            # contention="none" campaigns mint the same cell keys as
            # contention-free ones.
            if make_contention(self.contention) is None:
                object.__setattr__(self, "contention", None)
            elif not self.is_chip:
                raise ValueError(
                    "contention couples the threads of a chip campaign; "
                    "single-core campaigns have no co-runners to contend with"
                )
        # Fail fast on unknown policies/parameters, before any simulation.
        # In chip mode the policy axis names chip-level policies.
        if self.is_chip:
            from repro.chip import make_chip_policy

            for policy in self.dtm_policies:
                make_chip_policy(policy)
        else:
            from repro.dtm import make_policy

            for policy in self.dtm_policies:
                make_policy(policy)

    @classmethod
    def single(
        cls,
        config: ProcessorConfig,
        settings: ExperimentSettings,
        name: Optional[str] = None,
    ) -> "Campaign":
        """A one-configuration campaign (the old ``summarize`` shape)."""
        return cls((config,), settings, name=name or config.name)

    @property
    def is_chip(self) -> bool:
        """Whether this campaign runs multi-core chip cells (see :mod:`repro.chip`)."""
        return self.cores > 1 or bool(self.per_core_scenarios)

    def mixes(self) -> Tuple[Tuple[str, ...], ...]:
        """The resolved workload mixes of a chip campaign.

        Explicit ``per_core_scenarios`` win; otherwise every benchmark of
        the settings is replicated onto all cores (homogeneous mixes — the
        ``cores`` axis alone).
        """
        if self.per_core_scenarios:
            return self.per_core_scenarios
        return tuple((b,) * self.cores for b in self.settings.benchmarks)

    def config_names(self) -> Tuple[str, ...]:
        return tuple(config.name for config in self.configs)

    def variant_names(self) -> Tuple[str, ...]:
        """Names of every (config, DTM policy) combination, in cell order.

        Without a policy axis these are exactly :meth:`config_names`.
        """
        if not self.dtm_policies:
            return self.config_names()
        return tuple(
            variant_name(config.name, policy)
            for config in self.configs
            for policy in self.dtm_policies
        )

    def cells(self) -> Tuple[RunSpec, ...]:
        """Expand the grid into independent, executor-ready cells.

        Cells are ordered configuration-major, then policy-major (all
        benchmarks of the first configuration's first policy first); with no
        policy axis the order matches the legacy serial loop.  A chip
        campaign expands into :class:`~repro.chip.ChipRunSpec` cells
        instead, one per (config, chip policy, workload mix).
        """
        interval = self.settings.resolved_interval_cycles()
        policies: Tuple[Optional[str], ...] = self.dtm_policies or (None,)
        specs = []
        if self.is_chip:
            from repro.chip import ChipRunSpec

            for config in self.configs:
                scaled = scale_paper_intervals(config, interval)
                for policy in policies:
                    for mix in self.mixes():
                        specs.append(
                            ChipRunSpec(
                                config=scaled,
                                cores=self.cores,
                                benchmarks=mix,
                                trace_uops=tuple(
                                    self.settings.trace_length(b) for b in mix
                                ),
                                interval_cycles=interval,
                                seed=self.settings.seed,
                                chip_policy=policy,
                                contention=self.contention,
                                solver_backend=self.solver_backend,
                                replay_mode=self.replay_mode,
                            )
                        )
            return tuple(specs)
        for config in self.configs:
            scaled = scale_paper_intervals(config, interval)
            for policy in policies:
                for benchmark in self.settings.benchmarks:
                    specs.append(
                        RunSpec(
                            config=scaled,
                            benchmark=benchmark,
                            trace_uops=self.settings.trace_length(benchmark),
                            interval_cycles=interval,
                            seed=self.settings.seed,
                            dtm_policy=policy,
                            replay_mode=self.replay_mode,
                        )
                    )
        return tuple(specs)

    def __len__(self) -> int:
        per_config = (
            len(self.mixes()) if self.is_chip else len(self.settings.benchmarks)
        )
        return len(self.configs) * max(1, len(self.dtm_policies)) * per_config

"""Declarative experiment specifications.

The paper's evaluation is a grid: ~8 frontend configurations x 26 SPEC2000
workloads x ablation sweeps.  A :class:`Campaign` describes one such grid
declaratively — a set of configurations, a set of benchmarks and an
:class:`ExperimentSettings` scale — and expands it into independent
:class:`RunSpec` cells.  Each cell carries everything needed to simulate it
in isolation (configuration, benchmark, trace length, interval, seed), which
is what makes the pluggable executors in :mod:`repro.campaign.executors`
free to run cells serially, in a process pool, or — later — on remote
shards, while the content-derived :meth:`RunSpec.cache_key` lets the result
cache recognise already-simulated cells across runs.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Tuple

from repro.campaign.builder import scale_paper_intervals
from repro.sim.config import ProcessorConfig
from repro.workloads.profiles import SPEC2000_PROFILES, get_profile

#: A representative subset used by the quick settings: mixes integer and FP,
#: small and large working sets, high and low branch predictability.
QUICK_BENCHMARKS: Tuple[str, ...] = ("gzip", "gcc", "mcf", "crafty", "swim", "equake", "mesa", "lucas")


def available_benchmarks() -> Tuple[str, ...]:
    """Names of every synthetic SPEC2000-like workload, in profile order."""
    return tuple(SPEC2000_PROFILES)


@dataclass(frozen=True)
class ExperimentSettings:
    """Controls the scale of an experiment run.

    The paper simulates 200 M-instruction slices and updates temperature
    every 10 M cycles; the reproduction scales both down together so each run
    still spans a comparable number of thermal intervals (each representing
    the same 1 ms of heating).
    """

    benchmarks: Tuple[str, ...] = tuple(SPEC2000_PROFILES)
    uops_per_benchmark: int = 8_000
    #: Thermal / hop / remap interval in cycles.  ``None`` derives it from the
    #: trace length so that every run spans roughly ``target_intervals``.
    interval_cycles: Optional[int] = None
    target_intervals: int = 25
    seed: int = 1
    honor_relative_length: bool = True

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("at least one benchmark is required")
        if self.uops_per_benchmark <= 0:
            raise ValueError("uops_per_benchmark must be positive")
        if self.target_intervals <= 0:
            raise ValueError("target_intervals must be positive")
        for name in self.benchmarks:
            get_profile(name)  # raises KeyError for unknown benchmarks

    @classmethod
    def full(cls) -> "ExperimentSettings":
        """All 26 SPEC2000 workloads at the default scaled-down length."""
        return cls()

    @classmethod
    def quick(cls, uops_per_benchmark: int = 6_000) -> "ExperimentSettings":
        """A representative 8-benchmark subset (used by the benchmark harness)."""
        return cls(benchmarks=QUICK_BENCHMARKS, uops_per_benchmark=uops_per_benchmark)

    @classmethod
    def smoke(cls) -> "ExperimentSettings":
        """Tiny two-benchmark run used by the integration tests."""
        return cls(benchmarks=("gzip", "swim"), uops_per_benchmark=3_000)

    def with_benchmarks(self, benchmarks: Iterable[str]) -> "ExperimentSettings":
        return replace(self, benchmarks=tuple(benchmarks))

    def resolved_interval_cycles(self) -> int:
        """Interval length in cycles, derived from the trace length if unset.

        The floor of 800 cycles keeps the bank-hop period large compared to
        the time the trace cache needs to refill a flushed bank; hopping at a
        much finer grain than the paper's 10 M cycles would otherwise turn
        every hop into a hit-rate cliff that the paper's configuration never
        experiences.
        """
        if self.interval_cycles is not None:
            return self.interval_cycles
        # Assume roughly one committed micro-op per cycle when sizing the
        # interval; the exact IPC does not matter, only that every run spans
        # a few tens of intervals.
        return max(800, self.uops_per_benchmark // self.target_intervals)

    def trace_length(self, benchmark: str) -> int:
        """Micro-ops generated for ``benchmark`` at this scale."""
        length = self.uops_per_benchmark
        if self.honor_relative_length:
            profile = get_profile(benchmark)
            length = max(500, int(round(length * profile.relative_length)))
        return length


def _jsonable(value):
    """Recursively convert a value into canonical JSON-serializable form."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


@dataclass(frozen=True)
class RunSpec:
    """One independent cell of a campaign: a (config, benchmark) simulation.

    The configuration stored here is the *scaled* one (intervals already
    reduced to the experiment scale), so executing a cell needs no further
    context — any executor on any host produces the same result from the
    same spec, and the cell's identity can be hashed for the result cache.
    """

    config: ProcessorConfig
    benchmark: str
    trace_uops: int
    interval_cycles: int
    seed: int

    def provenance(self) -> Dict[str, object]:
        """Settings provenance recorded into the produced result."""
        return {
            "benchmark": self.benchmark,
            "trace_uops": self.trace_uops,
            "interval_cycles": self.interval_cycles,
            "seed": self.seed,
        }

    def key_material(self) -> Dict[str, object]:
        """The canonical content this cell is identified by."""
        return {
            "config": _jsonable(self.config.to_dict()),
            "benchmark": self.benchmark,
            "trace_uops": self.trace_uops,
            "interval_cycles": self.interval_cycles,
            "seed": self.seed,
        }

    def cache_key(self) -> str:
        """Stable content hash identifying this cell across processes/runs."""
        payload = json.dumps(self.key_material(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Campaign:
    """A declarative experiment grid: configurations x benchmarks x scale."""

    configs: Tuple[ProcessorConfig, ...]
    settings: ExperimentSettings
    name: str = "campaign"

    def __init__(
        self,
        configs: Iterable[ProcessorConfig],
        settings: ExperimentSettings,
        name: str = "campaign",
    ) -> None:
        object.__setattr__(self, "configs", tuple(configs))
        object.__setattr__(self, "settings", settings)
        object.__setattr__(self, "name", name)
        if not self.configs:
            raise ValueError("a campaign needs at least one configuration")
        names = [config.name for config in self.configs]
        if len(set(names)) != len(names):
            raise ValueError(f"configuration names must be unique, got {names}")

    @classmethod
    def single(
        cls,
        config: ProcessorConfig,
        settings: ExperimentSettings,
        name: Optional[str] = None,
    ) -> "Campaign":
        """A one-configuration campaign (the old ``summarize`` shape)."""
        return cls((config,), settings, name=name or config.name)

    def config_names(self) -> Tuple[str, ...]:
        return tuple(config.name for config in self.configs)

    def cells(self) -> Tuple[RunSpec, ...]:
        """Expand the grid into independent, executor-ready cells.

        Cells are ordered configuration-major (all benchmarks of the first
        configuration first), matching the legacy serial loop.
        """
        interval = self.settings.resolved_interval_cycles()
        specs = []
        for config in self.configs:
            scaled = scale_paper_intervals(config, interval)
            for benchmark in self.settings.benchmarks:
                specs.append(
                    RunSpec(
                        config=scaled,
                        benchmark=benchmark,
                        trace_uops=self.settings.trace_length(benchmark),
                        interval_cycles=interval,
                        seed=self.settings.seed,
                    )
                )
        return tuple(specs)

    def __len__(self) -> int:
        return len(self.configs) * len(self.settings.benchmarks)

"""Per-configuration aggregation of simulated results.

:class:`ConfigurationSummary` wraps the per-benchmark
:class:`~repro.sim.results.SimulationResult` objects of one configuration
and aggregates them the way the paper's figures do: averages over the
workloads of the temperature metrics, reductions versus a baseline, and
slowdowns.  It is produced by :func:`repro.campaign.core.run_campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.results import METRIC_NAMES, SimulationResult


@dataclass
class ConfigurationSummary:
    """Per-configuration aggregates over all simulated benchmarks."""

    config_name: str
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    def mean_metric(self, group: str, metric: str) -> float:
        """Average of a temperature metric (increase over ambient) over benchmarks."""
        values = [r.temperature_metrics(group)[metric] for r in self.results.values()]
        return sum(values) / len(values)

    def mean_metrics(self, group: str) -> Dict[str, float]:
        return {metric: self.mean_metric(group, metric) for metric in METRIC_NAMES}

    def mean_reductions_vs(
        self, baseline: "ConfigurationSummary", group: str
    ) -> Dict[str, float]:
        """Average per-benchmark fractional reductions versus a baseline."""
        reductions = {metric: [] for metric in METRIC_NAMES}
        for benchmark, result in self.results.items():
            base = baseline.results[benchmark]
            per_bench = result.temperature_reduction_vs(base, group)
            for metric in METRIC_NAMES:
                reductions[metric].append(per_bench[metric])
        return {
            metric: sum(values) / len(values) for metric, values in reductions.items()
        }

    def mean_slowdown_vs(self, baseline: "ConfigurationSummary") -> float:
        """Average per-benchmark execution-time increase versus a baseline."""
        slowdowns = [
            result.slowdown_vs(baseline.results[benchmark])
            for benchmark, result in self.results.items()
        ]
        return sum(slowdowns) / len(slowdowns)

    def mean_time_slowdown_vs(self, baseline: "ConfigurationSummary") -> float:
        """Average per-benchmark wall-clock-time increase versus a baseline.

        The DTM performance-loss metric (dimensionless fraction): unlike
        :meth:`mean_slowdown_vs` it also charges whole clock-gated
        intervals, which add wall-clock seconds but no cycles.
        """
        slowdowns = [
            result.time_slowdown_vs(baseline.results[benchmark])
            for benchmark, result in self.results.items()
        ]
        return sum(slowdowns) / len(slowdowns)

    def mean_dtm(self, key: str, default: float = 0.0) -> float:
        """Average of a numeric DTM telemetry field over benchmarks.

        ``key`` names a scalar field of ``SimulationResult.dtm`` (e.g.
        ``"throttle_ratio"``, ``"mean_freq_ratio"``, ``"gated_intervals"``);
        results without DTM telemetry contribute ``default``.
        """
        values = [
            float(r.dtm.get(key, default)) for r in self.results.values()
        ]
        return sum(values) / len(values)

    def mean_power(self, group: Optional[str] = None) -> float:
        """Average total power (W), optionally restricted to a block group."""
        if group is None:
            values = [r.average_power() for r in self.results.values()]
        else:
            values = [r.average_group_power(group) for r in self.results.values()]
        return sum(values) / len(values)

    def mean_ipc(self) -> float:
        return sum(r.stats.ipc for r in self.results.values()) / len(self.results)

    def mean_trace_cache_hit_rate(self) -> float:
        return sum(
            r.stats.trace_cache_hit_rate for r in self.results.values()
        ) / len(self.results)

    def group_area_mm2(self, group: str) -> float:
        """Area of a block group (identical across benchmarks)."""
        first = next(iter(self.results.values()))
        return first.group_area_mm2(group)

"""Chip multiprocessor layer: multi-core dies over the two-stage core.

The paper's thermal-aware clustered microarchitecture was positioned as a
building block for multi-core dies, where the dominant thermal effects —
neighbour heating through the shared silicon and spreader, and activity
migration between replicated units — only appear once several cores share a
package.  This package composes the reproduction one level up:

* :func:`build_chip_physics` / :class:`ChipEngine` — N per-core timing
  stages over one composite-die physics stage (namespaced floorplan
  composition, concatenated activity vectors, a single thermal solve for
  the whole package);
* :func:`replay_chip` — the chip physics replayed from N per-core activity
  traces, bit-identical to the coupled run (and the traces are exactly the
  single-core captures, so a chip sweep reuses the single-core cache);
* :mod:`repro.chip.policies` — chip-level DTM: ``core_migration`` (the CMP
  analogue of the paper's bank hopping: move the hot thread, cool the die)
  and ``chip_dvfs`` (per-core voltage/frequency domains);
* :mod:`repro.chip.contention` — shared-LLC / memory-bandwidth contention:
  co-runner UL2 miss traffic lengthens each thread's effective memory
  latency through the configuration's shared memory buses;
* :class:`ChipRunSpec` — the campaign cell, wired into
  :class:`repro.campaign.Campaign` through its ``cores`` /
  ``per_core_scenarios`` axes.

See ``docs/multicore.md``.
"""

from repro.chip.contention import (
    CONTENTION_MODELS,
    ContentionConfig,
    SharedLLCContention,
    make_contention,
)
from repro.chip.engine import (
    ChipEngine,
    build_chip_physics,
    chip_block_groups,
    core_prefix,
    replay_chip,
)
from repro.chip.policies import (
    CHIP_POLICIES,
    ChipControls,
    ChipDTMPolicy,
    ChipObservation,
    available_chip_policies,
    make_chip_policy,
)
from repro.chip.spec import ChipRunSpec, mix_name

__all__ = [
    "ChipEngine",
    "ChipRunSpec",
    "CHIP_POLICIES",
    "CONTENTION_MODELS",
    "ChipControls",
    "ChipDTMPolicy",
    "ChipObservation",
    "ContentionConfig",
    "SharedLLCContention",
    "available_chip_policies",
    "build_chip_physics",
    "chip_block_groups",
    "core_prefix",
    "make_chip_policy",
    "make_contention",
    "mix_name",
    "replay_chip",
]

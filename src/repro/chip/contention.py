"""Shared-LLC / memory-bandwidth contention between chip threads.

Without this model, the threads of a chip run interact only *thermally*
(through the shared silicon, spreader and sink).  Real CMP threads also
contend for the memory system: every UL2 miss occupies a shared memory bus
for a line transfer, so a cache-thrashing neighbour lengthens everyone
else's effective memory latency.  This module couples the threads through
exactly that channel:

* Per thermal interval, the chip engine collects each thread's UL2 miss
  count (the misses of :class:`~repro.memory.ul2.UnifiedL2Cache`).
* :class:`SharedLLCContention` replays, for each thread, its *co-runners'*
  miss stream — spread uniformly over the interval — through a fresh
  :class:`~repro.memory.bus.BusPool` with the configuration's memory-bus
  parameters (``num_memory_buses`` channels, ``bus_latency`` scaled to a
  per-miss line-transfer occupancy).  The mean queueing delay of that
  replay is the extra latency a miss of *this* thread would have seen
  behind its neighbours' traffic.
* The engine adds that delay to the thread's UL2 miss latency for the
  *next* interval (``UnifiedL2Cache.extra_miss_latency``) — a one-interval
  feedback lag, exactly like the thermal sensors' interval granularity.

Everything is deterministic: the replay schedule is a pure function of the
per-interval miss counts, so a contended run is reproducible under a fixed
seed.  A single-threaded chip has no co-runners, so every extra latency is
zero and the run stays byte-identical to the uncoupled engine.

Because contention couples threads through *timing* (not just
temperature), a contended chip cell can neither be captured for replay nor
served from cached single-core traces — the chip engine's
``replay_safe_reason`` and the campaign's ``ChipRunSpec.replay_reason``
both report it, and the engine falls back to the per-uop reference timing
stage (the fast path's native core bakes memory latencies at marshal time
and cannot retarget them mid-run).

The model is campaign-addressable by spec string, like DTM policies:
``"shared_llc"`` with defaults, or
``"shared_llc:service=32,max_extra=300"`` to tune the per-miss bus
occupancy and the latency clamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.memory.bus import BusPool
from repro.sim.config import ProcessorConfig

#: The only contention model currently registered.
CONTENTION_MODELS = ("shared_llc",)

#: Replays longer than this are truncated (deterministically) — beyond it
#: the buses are saturated anyway and the clamp below governs.
_MAX_REPLAYED_MISSES = 20_000


@dataclass(frozen=True)
class ContentionConfig:
    """Parameters of the shared-LLC contention model.

    ``service_cycles`` is the bus occupancy of one UL2 miss (the line
    transfer; ``None`` derives ``4 x bus_latency`` from the processor's
    interconnect configuration — a 64-byte line in four bus beats).
    ``max_extra_latency`` clamps the per-miss penalty so a saturated
    neighbour degrades, never deadlocks, a thread.
    """

    service_cycles: Optional[int] = None
    max_extra_latency: int = 400

    def __post_init__(self) -> None:
        if self.service_cycles is not None and self.service_cycles <= 0:
            raise ValueError("service_cycles must be positive")
        if self.max_extra_latency < 0:
            raise ValueError("max_extra_latency must be non-negative")

    @property
    def spec(self) -> str:
        """The canonical spec string this configuration round-trips to."""
        parts = []
        if self.service_cycles is not None:
            parts.append(f"service={self.service_cycles}")
        if self.max_extra_latency != 400:
            parts.append(f"max_extra={self.max_extra_latency}")
        return "shared_llc" + (":" + ",".join(parts) if parts else "")


def make_contention(spec: Optional[str]) -> Optional[ContentionConfig]:
    """Parse a contention spec string (``None``/``"none"`` disable it).

    Mirrors :func:`repro.dtm.make_policy`'s spec grammar:
    ``"<model>"`` or ``"<model>:key=value,key=value"``.
    """
    if spec is None:
        return None
    spec = spec.strip()
    if not spec or spec == "none":
        return None
    name, _, params = spec.partition(":")
    if name != "shared_llc":
        raise ValueError(
            f"unknown contention model {name!r} "
            f"(available: {', '.join(CONTENTION_MODELS)}, none)"
        )
    kwargs: Dict[str, int] = {}
    if params:
        for item in params.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq:
                raise ValueError(f"malformed contention parameter {item!r}")
            try:
                number = int(value.strip())
            except ValueError as error:
                raise ValueError(
                    f"contention parameter {key!r} needs an integer, got {value!r}"
                ) from error
            if key == "service":
                kwargs["service_cycles"] = number
            elif key == "max_extra":
                kwargs["max_extra_latency"] = number
            else:
                raise ValueError(
                    f"unknown contention parameter {key!r} "
                    "(available: service, max_extra)"
                )
    return ContentionConfig(**kwargs)


class SharedLLCContention:
    """Deterministic per-interval memory-bandwidth contention model."""

    def __init__(self, config: ContentionConfig, processor: ProcessorConfig) -> None:
        self.config = config
        interconnect = processor.interconnect
        self.num_buses = interconnect.num_memory_buses
        self.arbitration_cycles = interconnect.bus_arbitration_latency
        self.service_cycles = (
            config.service_cycles
            if config.service_cycles is not None
            else 4 * interconnect.bus_latency
        )
        #: Telemetry: per-interval mean/max extra latency across threads.
        self.intervals = 0
        self.extra_sum = 0.0
        self.extra_max = 0
        self.total_misses = 0

    # ------------------------------------------------------------------
    def _queueing_delay(self, misses: int, interval_cycles: int) -> int:
        """Mean queueing delay of ``misses`` line transfers in one interval.

        The miss stream is spread uniformly over the interval and replayed
        through a fresh :class:`~repro.memory.bus.BusPool` with the
        configuration's memory-bus parameters; the result is the average
        wait beyond the unloaded arbitration + transfer time.  Pure
        function of ``(misses, interval_cycles)`` — no state survives
        between intervals, which is what keeps contended runs
        deterministic and order-independent across threads.
        """
        if misses <= 0 or interval_cycles <= 0:
            return 0
        replayed = min(misses, _MAX_REPLAYED_MISSES)
        pool = BusPool(
            "llc", self.num_buses, self.service_cycles, self.arbitration_cycles
        )
        unloaded = self.service_cycles + self.arbitration_cycles
        total_wait = 0
        for i in range(replayed):
            issue = i * interval_cycles // replayed
            total_wait += pool.request(issue) - issue - unloaded
        delay = round(total_wait / replayed)
        return min(self.config.max_extra_latency, int(delay))

    def extra_latencies(
        self, miss_counts: Sequence[int], interval_cycles: int
    ) -> List[int]:
        """Per-thread extra UL2 miss latency for the next interval.

        ``miss_counts[t]`` is thread ``t``'s UL2 miss count over the
        interval that just ran; the returned ``extra[t]`` is the mean
        queueing delay behind the *other* threads' aggregate traffic
        (leave-one-out), clamped to ``max_extra_latency``.  With one
        thread — or any interval in which no co-runner missed — every
        entry is zero.
        """
        total = sum(miss_counts)
        self.total_misses += total
        extras: List[int] = []
        for t in range(len(miss_counts)):
            corunner = total - miss_counts[t]
            extras.append(self._queueing_delay(corunner, interval_cycles))
        self.intervals += 1
        if extras:
            self.extra_sum += sum(extras) / len(extras)
            self.extra_max = max(self.extra_max, max(extras))
        return extras

    def telemetry(self) -> Dict[str, object]:
        """Summary folded into ``result.chip["contention"]``."""
        return {
            "model": "shared_llc",
            "spec": self.config.spec,
            "service_cycles": self.service_cycles,
            "memory_buses": self.num_buses,
            "max_extra_latency": self.config.max_extra_latency,
            "intervals": self.intervals,
            "total_ul2_misses": self.total_misses,
            "mean_extra_latency": (
                self.extra_sum / self.intervals if self.intervals else 0.0
            ),
            "peak_extra_latency": self.extra_max,
        }

"""The chip multiprocessor engine: N timing stages over one composite die.

A chip run composes the existing two-stage simulation core one level up:

* **N per-core** :class:`~repro.sim.engine.TimingStage`\\ s — one per
  *thread*, each with its own workload, seed and (optional) per-core DTM
  policy, each producing per-interval activity-count vectors over the
  single-core block order.  The timing stages are byte-for-byte the same
  machinery a :class:`~repro.sim.engine.SimulationEngine` drives, so a
  thread's captured :class:`~repro.sim.activity_trace.ActivityTrace` is
  *identical* to the trace a single-core run of the same (config, workload,
  seed) would capture — which is what lets a multi-core physics sweep replay
  N cached single-core traces instead of re-running timing.

* **one shared** :class:`~repro.sim.engine.PhysicsStage` over a *composite*
  die: per-core namespaced block parameters (``core0.ROB``, ``core1.ROB``,
  ...), a :func:`~repro.thermal.floorplan.compose_floorplans` core grid —
  abutting dies, so the RC network carries cross-core lateral coupling in
  addition to the shared spreader and sink — and chip-level block groups.
  Each interval, the per-core activity vectors concatenate into one
  chip-wide vector (a contiguous slice per core) and a *single* physics
  solve advances the whole package.

Time advances in lockstep thermal intervals.  Cores may run different cycle
counts within one interval (a thread's final interval is shorter; a finished
or empty core runs zero), so the power conversion divides each core's counts
by *its own* cycles (``PowerModel`` accepts a per-block cycles vector) while
the thermal network advances by the chip interval — the longest any core ran
(the chip clock).  A core with no running thread contributes zero accesses
but keeps dissipating idle (clock-distribution) and leakage power: idle
silicon is exactly what chip-level migration trades against.

With one core the composition degenerates to a pure rename of the
single-core die, and every interval reproduces the single-core engine's
arithmetic bit-for-bit (``tests/test_chip.py`` locks this against the same
runs the golden fixtures pin).

Chip-level DTM (:mod:`repro.chip.policies`) hooks in exactly like the
single-core DTM hook: before each interval the policy observes
sensor-quantized per-core peak temperatures and may migrate the hottest
busy core's thread to the coolest idle core (``core_migration``) or walk
per-core DVFS domains (``chip_dvfs``).  Per-core policies from
:mod:`repro.dtm` ride along unchanged, except that whole-interval clock
gating is denied — stop-go is a package-level decision a per-core policy
cannot take (use ``chip_dvfs`` or fetch throttling instead).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.chip.contention import ContentionConfig, SharedLLCContention, make_contention
from repro.chip.policies import ChipControls, ChipDTMPolicy, ChipObservation, make_chip_policy
from repro.dtm.controls import DTMControls, DTMTelemetry, FETCH_DUTY_PERIOD
from repro.dtm.policies import DTMObservation, DTMPolicy, make_policy
from repro.isa.microops import MicroOp
from repro.power.energy import build_block_parameters
from repro.sim import blocks
from repro.sim.activity_trace import ActivityTrace, TraceRecorder, timing_feedback_reason
from repro.sim.block_index import BlockIndex
from repro.sim.config import ProcessorConfig
from repro.sim.engine import PhysicsStage, TimingStage
from repro.sim.results import IntervalRecord, SimulationResult
from repro.sim.stats import SimulationStats
from repro.thermal.floorplan import compose_floorplans
from repro.thermal.sensors import SensorBank

#: Separator between the core namespace and the block name.
CORE_SEPARATOR = "."


def core_prefix(core: int) -> str:
    """Namespace prefix of core ``core`` (``"core0"``, ``"core1"``, ...)."""
    return f"core{core}"


def chip_block_groups(config: ProcessorConfig, cores: int) -> Dict[str, List[str]]:
    """Block groups of a composite die.

    Every single-core group (``Processor``, ``Frontend``, ``TraceCache``,
    ...) becomes the union over cores — so ``Processor`` still means "the
    whole die" and every existing metric query works on a chip result — and
    each core additionally gets its own group (``core0``, ``core1``, ...)
    for per-core temperature metrics.
    """
    single = blocks.block_groups(config)
    groups: Dict[str, List[str]] = {
        group: [
            f"{core_prefix(c)}{CORE_SEPARATOR}{name}"
            for c in range(cores)
            for name in names
        ]
        for group, names in single.items()
    }
    all_names = blocks.all_blocks(config)
    for c in range(cores):
        groups[core_prefix(c)] = [
            f"{core_prefix(c)}{CORE_SEPARATOR}{name}" for name in all_names
        ]
    return groups


def build_chip_physics(
    config: ProcessorConfig,
    cores: int,
    interval_cycles: Optional[int] = None,
    solver_backend: str = "auto",
    solver_ordering: str = "colamd",
) -> Tuple[PhysicsStage, BlockIndex, int]:
    """One :class:`PhysicsStage` over the composite ``cores``-core die.

    Returns ``(physics, core_index, blocks_per_core)``: ``core_index`` is
    the *single-core* block order (what each per-core timing stage emits),
    and core ``c`` occupies the contiguous chip-vector slice
    ``[c * blocks_per_core, (c + 1) * blocks_per_core)``.

    ``solver_backend`` selects the thermal solver's factorization (see
    :mod:`repro.thermal.solver`): ``"auto"`` keeps small dies on the dense
    (bit-identical) path and flips to sparse SuperLU at
    :data:`~repro.thermal.solver.SPARSE_NODE_THRESHOLD` nodes — in this
    composition, at 16 cores and above — where the composite Laplacian is
    ~99% zeros and sparse factorization is an order of magnitude faster.
    """
    if cores < 1:
        raise ValueError("a chip needs at least one core")
    core_parameters = build_block_parameters(config)
    core_areas = {name: p.area_mm2 for name, p in core_parameters.items()}
    core_index = BlockIndex(core_parameters.keys())
    # The chip block order is defined once, through the BlockIndex
    # composition API: per-core namespaces concatenated in core order.  The
    # parameter dict (whose key order seeds the PowerModel's index) and the
    # composed floorplan both follow it.
    chip_index = BlockIndex.concat(
        [
            core_index.namespaced(core_prefix(c), separator=CORE_SEPARATOR)
            for c in range(cores)
        ]
    )
    from repro.thermal.floorplan import build_floorplan

    core_plan = build_floorplan(config, core_areas)
    chip_plan = compose_floorplans(
        [core_plan] * cores,
        [core_prefix(c) for c in range(cores)],
        separator=CORE_SEPARATOR,
    )
    chip_parameters = {
        name: core_parameters[name.split(CORE_SEPARATOR, 1)[1]]
        for name in chip_index.names
    }
    physics = PhysicsStage(
        config,
        interval_cycles,
        block_parameters=chip_parameters,
        floorplan=chip_plan,
        block_groups=chip_block_groups(config, cores),
        solver_backend=solver_backend,
        solver_ordering=solver_ordering,
    )
    return physics, core_index, len(core_index)


def _aggregate_stats(
    per_thread: Sequence[SimulationStats], chip_cycles: int
) -> SimulationStats:
    """Chip-wide stats: per-thread counters summed, cycles = the chip clock.

    Lockstep intervals mean the chip's wall-cycle count is the per-interval
    maximum summed over intervals, not the per-thread sum — so ``ipc`` on
    the aggregate is genuine chip IPC (total committed micro-ops per chip
    cycle).  With one thread this reduces to that thread's own stats.
    """
    aggregate = SimulationStats()
    for stats in per_thread:
        for key, value in stats.to_payload().items():
            if key == "cycles":
                continue
            if isinstance(value, dict):
                merged = getattr(aggregate, key)
                for sub, count in value.items():
                    merged[sub] = merged.get(sub, 0) + count
            else:
                setattr(aggregate, key, getattr(aggregate, key) + value)
    aggregate.cycles = chip_cycles
    return aggregate


class _ChipAccounting:
    """Per-core temperature accounting shared by the coupled and replay paths.

    Accumulated from the same ``temperature_array`` both paths produce after
    each interval, with the same operations in the same order, so the
    resulting chip telemetry is bit-identical between them.
    """

    def __init__(self, cores: int, blocks_per_core: int) -> None:
        self.cores = cores
        self.blocks_per_core = blocks_per_core
        self.peak = np.full(cores, -np.inf)
        self.mean_sum = np.zeros(cores)
        self.intervals = 0

    def observe(self, temperature_array: np.ndarray) -> None:
        per_core = temperature_array.reshape(self.cores, self.blocks_per_core)
        self.peak = np.maximum(self.peak, per_core.max(axis=1))
        self.mean_sum += per_core.mean(axis=1)
        self.intervals += 1

    def per_core(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for c in range(self.cores):
            out[core_prefix(c)] = {
                "peak_celsius": float(self.peak[c]),
                "avg_celsius": float(self.mean_sum[c] / max(1, self.intervals)),
            }
        return out


def _thread_summary(benchmark: str, final_core: int, stats: SimulationStats) -> Dict:
    return {
        "benchmark": benchmark,
        "final_core": final_core,
        "cycles": stats.cycles,
        "committed_uops": stats.committed_uops,
        "ipc": stats.ipc,
        "trace_cache_hit_rate": stats.trace_cache_hit_rate,
    }


def _finish_chip_result(
    result: SimulationResult,
    *,
    cores: int,
    benchmarks: Sequence[str],
    per_thread_stats: Sequence[SimulationStats],
    final_cores: Sequence[int],
    accounting: _ChipAccounting,
    chip_cycles: int,
    policy_name: Optional[str],
    migration_log: Sequence[Dict],
    dvfs_residency: Optional[Dict[str, float]] = None,
    thread_dtm: Optional[Sequence[Optional[Dict]]] = None,
    contention: Optional[Dict[str, object]] = None,
) -> SimulationResult:
    """Fold the chip telemetry into a result (shared by coupled and replay).

    ``contention`` (the contention model's telemetry) is only present on
    contended runs: an uncontended result's payload is byte-identical to
    what it was before the contention model existed.
    """
    result.stats = _aggregate_stats(per_thread_stats, chip_cycles)
    result.provenance["cores"] = cores
    threads = []
    for t, (benchmark, stats) in enumerate(zip(benchmarks, per_thread_stats)):
        summary = _thread_summary(benchmark, int(final_cores[t]), stats)
        if thread_dtm is not None and thread_dtm[t] is not None:
            summary["dtm"] = thread_dtm[t]
        threads.append(summary)
    total_uops = sum(stats.committed_uops for stats in per_thread_stats)
    chip: Dict[str, object] = {
        "cores": cores,
        "benchmarks": list(benchmarks),
        "policy": policy_name,
        "migrations": len(migration_log),
        "migration_log": list(migration_log),
        "threads": threads,
        "per_core": accounting.per_core(),
        "aggregate": {
            "committed_uops": total_uops,
            "chip_ipc": total_uops / chip_cycles if chip_cycles else 0.0,
            "peak_celsius": float(accounting.peak.max()),
        },
    }
    if dvfs_residency is not None:
        chip["dvfs_residency"] = dvfs_residency
    if contention is not None:
        chip["contention"] = contention
    result.chip = chip
    return result


class ChipEngine:
    """Runs one multi-programmed workload mix on an N-core chip.

    ``uop_sources`` / ``benchmarks`` describe the *threads* (at most one per
    core; fewer threads leave idle cores for migration to use).  Thread
    ``t`` starts on core ``t``; only the ``core_migration`` chip policy ever
    moves it.

    ``chip_policy`` is a :class:`~repro.chip.policies.ChipDTMPolicy` (or a
    spec string for :func:`~repro.chip.policies.make_chip_policy`);
    ``core_policies`` optionally attaches a per-core
    :class:`~repro.dtm.policies.DTMPolicy` (or spec string) to each thread.
    Per-core whole-interval clock gating is denied (see the module
    docstring); everything else — fetch throttling, per-cluster DVFS —
    composes with the chip-level actuators, strictest request winning.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        uop_sources: Sequence[Iterable[MicroOp]],
        benchmarks: Sequence[str],
        cores: Optional[int] = None,
        interval_cycles: Optional[int] = None,
        prewarm_caches: bool = True,
        chip_policy: Optional[Union[ChipDTMPolicy, str]] = None,
        core_policies: Optional[Sequence[Optional[Union[DTMPolicy, str]]]] = None,
        timing_mode: str = "auto",
        solver_backend: str = "auto",
        contention: Optional[Union[ContentionConfig, str]] = None,
    ) -> None:
        if len(uop_sources) != len(benchmarks):
            raise ValueError(
                f"{len(uop_sources)} uop sources for {len(benchmarks)} benchmarks"
            )
        if not benchmarks:
            raise ValueError("a chip run needs at least one thread")
        self.cores = cores if cores is not None else len(benchmarks)
        if len(benchmarks) > self.cores:
            raise ValueError(
                f"{len(benchmarks)} threads do not fit on {self.cores} cores "
                "(at most one thread per core)"
            )
        self.config = config
        self.benchmarks = tuple(benchmarks)
        self.interval_cycles = interval_cycles or config.thermal.interval_cycles
        if self.interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")

        self.physics, self.core_index, self.blocks_per_core = build_chip_physics(
            config, self.cores, self.interval_cycles, solver_backend=solver_backend
        )
        self.block_index = self.physics.block_index
        self.solver_backend = self.physics.solver_backend

        # Shared-LLC / memory-bandwidth contention (repro.chip.contention).
        # Parsed before the timing-mode selection below: a contended run
        # couples threads through memory latency, so ``replay_safe_reason``
        # must already see it.
        if isinstance(contention, str) or contention is None:
            contention = make_contention(contention)
        self.contention: Optional[ContentionConfig] = contention
        self._contention_model: Optional[SharedLLCContention] = (
            SharedLLCContention(contention, config) if contention is not None else None
        )
        #: Per-thread extra UL2 miss latency applied to the next interval
        #: (always zero on the first interval — the feedback lags one
        #: interval, like the thermal sensors).
        self._contention_extra: List[int] = [0] * len(benchmarks)
        self._contention_prev_misses: List[int] = [0] * len(benchmarks)

        self.num_threads = len(benchmarks)
        #: Core currently executing each thread.
        self.thread_core: List[int] = list(range(self.num_threads))
        #: Thread on each core (-1 = idle).
        self.core_thread: List[int] = [
            t if t < self.num_threads else -1 for t in range(self.cores)
        ]
        self._finished = [False] * self.num_threads
        self.migration_log: List[Dict] = []

        # Chip-level DTM.
        if isinstance(chip_policy, str):
            chip_policy = make_chip_policy(chip_policy)
        self.chip_policy = chip_policy
        self.chip_controls: Optional[ChipControls] = None
        self.chip_sensors: Optional[SensorBank] = None
        self._dvfs_residency: Optional[np.ndarray] = None
        if chip_policy is not None:
            self.chip_controls = ChipControls(self.cores, table=chip_policy.table)
            self.chip_sensors = SensorBank(self.block_index.names)
            chip_policy.bind(self.cores, config, self.chip_controls)
            self._dvfs_residency = np.zeros(len(self.chip_controls.table))

        # Per-core (per-thread) DTM.
        self.core_policies: List[Optional[DTMPolicy]] = []
        self.core_controls: List[Optional[DTMControls]] = []
        self.core_telemetry: List[Optional[DTMTelemetry]] = []
        self.core_sensors: List[Optional[SensorBank]] = []
        core_policies = core_policies or [None] * self.num_threads
        if len(core_policies) != self.num_threads:
            raise ValueError(
                f"{len(core_policies)} per-core policies for "
                f"{self.num_threads} threads"
            )
        for policy in core_policies:
            if isinstance(policy, str):
                policy = make_policy(policy)
            self.core_policies.append(policy)
            if policy is None:
                self.core_controls.append(None)
                self.core_telemetry.append(None)
                self.core_sensors.append(None)
            else:
                controls = DTMControls(self.core_index, table=policy.table)
                policy.bind(self.core_index, config, controls)
                self.core_controls.append(controls)
                self.core_telemetry.append(DTMTelemetry(controls.table))
                self.core_sensors.append(SensorBank(self.core_index.names))

        # --------------------------------------------------------------
        # Timing-mode selection.  Same contract as the single-core engine:
        # the fast path only claims configurations it reproduces
        # byte-for-byte, so any physics-to-timing feedback (which on a chip
        # includes temperature-actuating chip or per-core policies — the
        # exact set ``replay_safe_reason`` already polices) falls back to
        # the per-uop golden reference, as does a workload that cannot be
        # batch-decoded.
        # --------------------------------------------------------------
        if timing_mode not in ("auto", "fast", "reference"):
            raise ValueError(
                "timing_mode must be 'auto', 'fast' or 'reference', "
                f"not {timing_mode!r}"
            )
        self.timing_mode = timing_mode
        fallback: Optional[str] = None
        if timing_mode == "reference":
            fallback = "timing_mode='reference' requested"
        else:
            fallback = self.replay_safe_reason
            if fallback is None and not all(
                isinstance(source, Sequence) for source in uop_sources
            ):
                fallback = "streaming uop source cannot be batch-decoded"
            if timing_mode == "fast" and fallback is not None:
                raise ValueError(
                    f"timing_mode='fast' is not applicable: {fallback}"
                )
        self.timing_fallback_reason = fallback
        self.resolved_timing_mode = "reference" if fallback is not None else "fast"
        if self.resolved_timing_mode == "fast":
            from repro.sim.fast_timing import FastTimingStage

            stage_cls = FastTimingStage
        else:
            stage_cls = TimingStage
        self.timings: List[TimingStage] = [
            stage_cls(
                config,
                source,
                self.interval_cycles,
                self.core_index,
                prewarm_caches=prewarm_caches,
            )
            for source in uop_sources
        ]

    # ------------------------------------------------------------------
    def _core_slice(self, core: int) -> slice:
        return slice(core * self.blocks_per_core, (core + 1) * self.blocks_per_core)

    @property
    def replay_safe_reason(self) -> Optional[str]:
        """Why this chip run cannot be captured for replay (``None`` = it can)."""
        reason = timing_feedback_reason(self.config)
        if reason is not None:
            return reason
        if self.contention is not None:
            return (
                "shared-LLC contention couples threads through memory latency"
            )
        if self.chip_policy is not None and self.chip_policy.feedback:
            return (
                f"chip DTM policy {self.chip_policy.name!r} actuates on "
                "temperatures"
            )
        for policy in self.core_policies:
            if policy is not None and policy.feedback:
                return f"per-core DTM policy {policy.name!r} actuates on temperatures"
        return None

    # ------------------------------------------------------------------
    # DTM hooks
    # ------------------------------------------------------------------
    def _apply_policies(self, interval_index: int) -> None:
        """Observe the die and actuate chip + per-core policies.

        ``interval_index == 0`` is the post-warm-up observation: its cycles
        have already run, so migration (and per-core interval gating, which
        is denied on chips outright) cannot apply; operating points still
        do, exactly like the single-core engine's interval-0 DTM hook.
        """
        temps = self.physics.temperature_array
        if self.chip_policy is not None:
            readings = self.chip_sensors.read_array(temps)
            per_core = readings.reshape(self.cores, self.blocks_per_core)
            busy = np.array(
                [self.core_thread[c] >= 0 for c in range(self.cores)], dtype=bool
            )
            self.chip_controls.begin_interval(migration_allowed=interval_index > 0)
            self.chip_policy.apply(
                ChipObservation(interval_index, per_core.max(axis=1), busy),
                self.chip_controls,
            )
            self._execute_migration(interval_index)
        for t, policy in enumerate(self.core_policies):
            if policy is None or self._finished[t]:
                continue
            controls = self.core_controls[t]
            # Whole-interval gating is a package-level decision; per-core
            # requests are always denied (the controller sees the denial).
            controls.begin_interval(gating_allowed=False)
            core = self.thread_core[t]
            readings = self.core_sensors[t].read_array(temps[self._core_slice(core)])
            policy.apply(
                DTMObservation(
                    interval_index=interval_index,
                    temperatures=readings,
                    index=self.core_index,
                ),
                controls,
            )
        self._apply_fetch_gates()

    def _execute_migration(self, interval_index: int) -> None:
        migration = self.chip_controls.migration
        if migration is None:
            return
        source, target = migration
        thread = self.core_thread[source]
        if thread < 0 or self._finished[thread] or self.core_thread[target] >= 0:
            return
        self.core_thread[source] = -1
        self.core_thread[target] = thread
        self.thread_core[thread] = target
        self.migration_log.append(
            {
                "interval": interval_index,
                "thread": thread,
                "from": source,
                "to": target,
            }
        )

    def _apply_fetch_gates(self) -> None:
        """Translate chip DVFS ratios and per-core duties into fetch gates.

        Each core is its own clock domain: a core's fetch duty is the
        stricter of its chip-level frequency ratio and whatever its per-core
        policy requested.
        """
        for t, timing in enumerate(self.timings):
            if self._finished[t]:
                continue
            on = FETCH_DUTY_PERIOD
            if self.chip_controls is not None:
                ratio = self.chip_controls.freq_ratio(self.thread_core[t])
                on = min(on, max(1, round(ratio * FETCH_DUTY_PERIOD)))
            controls = self.core_controls[t]
            if controls is not None:
                on = min(on, controls.effective_fetch_on_cycles)
            if on < FETCH_DUTY_PERIOD:
                timing.processor.set_fetch_gate(on, FETCH_DUTY_PERIOD)
            else:
                timing.processor.clear_fetch_gate()

    def _power_scales(self) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Chip-wide (dynamic, leakage) multiplier vectors, or ``(None, None)``.

        Chip-level DVFS scales whole cores; per-core policy scales apply to
        the thread's current core slice on top.  ``(None, None)`` while
        everything sits at nominal keeps the hot path bit-identical to the
        policy-free pipeline.
        """
        dynamic = leakage = None
        if self.chip_controls is not None and not self.chip_controls.at_nominal():
            dynamic = np.ones(len(self.block_index))
            leakage = np.ones(len(self.block_index))
            table = self.chip_controls.table
            for core in range(self.cores):
                step = self.chip_controls.core_step(core)
                if step:
                    point = table[step]
                    seg = self._core_slice(core)
                    dynamic[seg] = point.dynamic_scale
                    leakage[seg] = point.leakage_scale
        for t, controls in enumerate(self.core_controls):
            if controls is None or self._finished[t]:
                continue
            core_dynamic, core_leakage = controls.power_scales()
            if core_dynamic is None:
                continue
            if dynamic is None:
                dynamic = np.ones(len(self.block_index))
                leakage = np.ones(len(self.block_index))
            seg = self._core_slice(self.thread_core[t])
            dynamic[seg] *= core_dynamic
            leakage[seg] *= core_leakage
        return dynamic, leakage

    # ------------------------------------------------------------------
    def run(
        self,
        max_intervals: Optional[int] = None,
        warmup: bool = True,
        recorders: Optional[Sequence[TraceRecorder]] = None,
    ) -> SimulationResult:
        """Run every thread to completion and return the chip-wide result.

        With ``recorders`` (one per thread), each thread's timing output is
        also captured as a per-core activity trace — refused when any policy
        couples temperatures back into timing, exactly like the single-core
        capture guard.
        """
        if recorders is not None:
            reason = self.replay_safe_reason
            if reason is not None:
                raise ValueError(f"cannot capture activity traces: {reason}")
            if len(recorders) != self.num_threads:
                raise ValueError(
                    f"{len(recorders)} recorders for {self.num_threads} threads"
                )
        physics = self.physics
        result = physics.new_result("+".join(self.benchmarks))
        interval_seconds = self.config.thermal.interval_seconds
        total_blocks = len(self.block_index)
        accounting = _ChipAccounting(self.cores, self.blocks_per_core)
        any_policy = self.chip_policy is not None or any(
            policy is not None for policy in self.core_policies
        )
        interval_index = 0
        chip_cycle = 0

        while not all(self._finished):
            if max_intervals is not None and interval_index >= max_intervals:
                break
            if any_policy and interval_index > 0:
                self._apply_policies(interval_index)
            if self._contention_model is not None:
                # Actuate last interval's contention verdict: each thread's
                # UL2 misses pay the queueing delay its co-runners' traffic
                # imposed (zero on interval 0 and whenever no co-runner
                # missed).
                for t, timing in enumerate(self.timings):
                    if not self._finished[t]:
                        timing.processor.ul2.extra_miss_latency = (
                            self._contention_extra[t]
                        )

            counts = np.zeros(total_blocks)
            cycles = np.full(total_blocks, self.interval_cycles, dtype=np.int64)
            chip_cycles = 0
            masks: List[Tuple[int, np.ndarray]] = []
            ran = []
            for t, timing in enumerate(self.timings):
                if self._finished[t]:
                    continue
                thread_counts, thread_cycles = timing.run_interval(self.interval_cycles)
                if thread_counts is None:
                    self._finished[t] = True
                    self.core_thread[self.thread_core[t]] = -1
                    continue
                ran.append(t)
                seg = self._core_slice(self.thread_core[t])
                counts[seg] = thread_counts
                cycles[seg] = thread_cycles
                chip_cycles = max(chip_cycles, thread_cycles)
                _, mask = timing.gated_state()
                if mask is not None:
                    masks.append((self.thread_core[t], mask))
                if recorders is not None:
                    recorders[t].record(
                        thread_counts,
                        thread_cycles,
                        timing.processor.cycle,
                        mask,
                    )
            if not ran:
                break
            if self._contention_model is not None:
                deltas = []
                for t, timing in enumerate(self.timings):
                    misses = timing.processor.ul2.misses
                    deltas.append(misses - self._contention_prev_misses[t])
                    self._contention_prev_misses[t] = misses
                self._contention_extra = self._contention_model.extra_latencies(
                    deltas, chip_cycles if chip_cycles > 0 else self.interval_cycles
                )

            gated_mask = None
            if masks:
                gated_mask = np.zeros(total_blocks, dtype=bool)
                for core, mask in masks:
                    gated_mask[self._core_slice(core)] = mask

            if interval_index == 0 and warmup:
                physics.warmup(counts, cycles, gated_mask)
                if any_policy:
                    # Observe the warmed-up die before the first power step;
                    # interval 0's cycles already ran, so migration and
                    # fetch actuation take effect from interval 1.
                    self._apply_policies(0)

            dynamic_scale, leakage_scale = (
                self._power_scales() if any_policy else (None, None)
            )
            chip_cycle += chip_cycles
            result.intervals.append(
                physics.interval_pipeline(
                    counts,
                    cycles,
                    cycle=chip_cycle,
                    seconds=(interval_index + 1) * interval_seconds,
                    gated_mask=gated_mask,
                    dynamic_scale=dynamic_scale,
                    leakage_scale=leakage_scale,
                    dt_cycles=chip_cycles,
                )
            )
            accounting.observe(physics.temperature_array)
            if self._dvfs_residency is not None:
                steps = self.chip_controls.steps
                self._dvfs_residency += (
                    np.bincount(steps, minlength=len(self._dvfs_residency))
                    / self.cores
                )
            for t in ran:
                controls = self.core_controls[t]
                if controls is not None:
                    self.core_telemetry[t].record_interval(
                        controls, gated=False, fetch_actuated=interval_index > 0
                    )
                timing = self.timings[t]
                core = self.thread_core[t]
                timing.apply_bank_management(
                    interval_index,
                    physics.temperature_array[self._core_slice(core)],
                )
            interval_index += 1

        result.warmup_temperature = physics.warmup_temperatures
        per_thread_stats = []
        for timing in self.timings:
            stats = timing.processor.stats
            stats.trace_cache_hits = timing.processor.trace_cache.hits
            stats.trace_cache_misses = timing.processor.trace_cache.misses
            stats.trace_cache_hop_flushes = timing.processor.trace_cache.hop_flushes
            per_thread_stats.append(stats)
        dvfs_residency = None
        if self._dvfs_residency is not None and accounting.intervals:
            fractions = self._dvfs_residency / accounting.intervals
            table = self.chip_controls.table
            dvfs_residency = {}
            for s in range(len(table)):
                if fractions[s] > 0.0:
                    key = f"{table[s].freq_ratio:g}"
                    dvfs_residency[key] = dvfs_residency.get(key, 0.0) + float(
                        fractions[s]
                    )
        thread_dtm = [
            None if telemetry is None else telemetry.as_dict()
            for telemetry in self.core_telemetry
        ]
        return _finish_chip_result(
            result,
            cores=self.cores,
            benchmarks=self.benchmarks,
            per_thread_stats=per_thread_stats,
            final_cores=self.thread_core,
            accounting=accounting,
            chip_cycles=chip_cycle,
            policy_name=self.chip_policy.name if self.chip_policy else None,
            migration_log=self.migration_log,
            dvfs_residency=dvfs_residency,
            thread_dtm=thread_dtm,
            contention=(
                self._contention_model.telemetry()
                if self._contention_model is not None
                else None
            ),
        )

    def run_with_traces(
        self,
        max_intervals: Optional[int] = None,
        warmup: bool = True,
        trace_provenances: Optional[Sequence[Optional[Dict]]] = None,
    ) -> Tuple[SimulationResult, Tuple[ActivityTrace, ...]]:
        """Coupled chip run that also captures every thread's activity trace.

        Each returned trace is *identical* — byte-for-byte as a canonical
        JSON document — to the trace a single-core
        :meth:`~repro.sim.engine.SimulationEngine.run_with_trace` of the same
        (config, workload, seed, interval) would capture, which is what lets
        the campaign layer serve chip sweeps from cached single-core traces.
        """
        if trace_provenances is None:
            trace_provenances = [None] * self.num_threads
        recorders = [
            TraceRecorder(
                benchmark,
                self.core_index.names,
                self.interval_cycles,
                provenance=provenance,
            )
            for benchmark, provenance in zip(self.benchmarks, trace_provenances)
        ]
        result = self.run(max_intervals=max_intervals, warmup=warmup, recorders=recorders)
        traces = tuple(
            recorder.finish(stats)
            for recorder, stats in zip(
                recorders, (timing.processor.stats for timing in self.timings)
            )
        )
        return result, traces


def replay_chip(
    config: ProcessorConfig,
    traces: Sequence[ActivityTrace],
    cores: Optional[int] = None,
    interval_cycles: Optional[int] = None,
    warmup: bool = True,
    chip_policy: Optional[Union[ChipDTMPolicy, str]] = None,
    solver_backend: str = "auto",
) -> SimulationResult:
    """Replay N per-core activity traces through one composite-die physics.

    The chip analogue of :meth:`~repro.sim.engine.PhysicsStage.replay`: the
    per-core count matrices concatenate into one
    ``(intervals x total_blocks)`` activity matrix, the whole run's dynamic
    power is computed in a single vectorized
    :meth:`~repro.power.power_model.PowerModel.dynamic_power_matrix` pass
    (per-core cycle counts supplied as a matching cycles matrix), and the
    inherently sequential leakage/thermal chain walks the intervals over the
    shared RC network.  Bit-identical to the coupled
    :meth:`ChipEngine.run` of the same mix — threads that finish early idle
    at zero activity (idle and leakage power only), exactly as the coupled
    loop leaves them.

    ``chip_policy`` may only be a non-feedback policy (``"none"``); a
    feedback-bearing chip policy migrates threads by temperature, so its
    cells must be simulated coupled.
    """
    if not traces:
        raise ValueError("chip replay needs at least one per-core trace")
    cores = cores if cores is not None else len(traces)
    if len(traces) > cores:
        raise ValueError(f"{len(traces)} traces do not fit on {cores} cores")
    if isinstance(chip_policy, str):
        chip_policy = make_chip_policy(chip_policy)
    if chip_policy is not None and chip_policy.feedback:
        raise ValueError(
            f"chip DTM policy {chip_policy.name!r} actuates on temperatures; "
            "its cells must be simulated coupled, not replayed"
        )
    physics, core_index, blocks_per_core = build_chip_physics(
        config, cores, interval_cycles, solver_backend=solver_backend
    )
    for t, trace in enumerate(traces):
        if list(trace.block_names) != list(core_index.names):
            raise ValueError(
                f"trace {t} was captured over a different block set; "
                "it cannot be replayed on this configuration"
            )
        if trace.interval_cycles != physics.interval_cycles:
            raise ValueError(
                f"trace {t} was captured at interval_cycles="
                f"{trace.interval_cycles}, not {physics.interval_cycles}"
            )

    lengths = [len(trace) for trace in traces]
    intervals = max(lengths)
    total_blocks = len(physics.block_index)
    interval_cycles = physics.interval_cycles

    counts = np.zeros((intervals, total_blocks))
    cycles = np.full((intervals, total_blocks), interval_cycles, dtype=np.int64)
    any_gated = any(trace.gated_masks is not None for trace in traces)
    gated = np.zeros((intervals, total_blocks), dtype=bool) if any_gated else None
    thread_cycles = np.zeros((len(traces), intervals), dtype=np.int64)
    for t, trace in enumerate(traces):
        seg = slice(t * blocks_per_core, (t + 1) * blocks_per_core)
        n = lengths[t]
        counts[:n, seg] = trace.counts
        cycles[:n, seg] = trace.cycles[:, None]
        thread_cycles[t, :n] = trace.cycles
        if gated is not None and trace.gated_masks is not None:
            gated[:n, seg] = trace.gated_masks
    chip_cycles = thread_cycles.max(axis=0)

    result = physics.new_result("+".join(trace.benchmark for trace in traces))
    result.provenance["replayed"] = True
    power_model = physics.power_model
    leakage_model = power_model.leakage_model
    interval_seconds = config.thermal.interval_seconds
    accounting = _ChipAccounting(cores, blocks_per_core)

    # The whole run's dynamic power in one (intervals x total_blocks) pass:
    # dynamic power depends only on counts, per-core cycles and gating,
    # never on the temperatures the sequential loop below produces.
    dynamic_matrix = power_model.dynamic_power_matrix(counts, cycles, gated)
    chip_cycle = 0
    for i in range(intervals):
        gated_row = gated[i] if gated is not None else None
        if i == 0 and warmup:
            physics.warmup(counts[0], cycles[0], gated_row)
        dynamic = dynamic_matrix[i]
        leakage_model.observe_dynamic_power_array(dynamic)
        leakage = leakage_model.leakage_power_array(
            physics.temperature_array, gated_row
        )
        dt_cycles = int(chip_cycles[i])
        dt = interval_seconds * (dt_cycles / interval_cycles)
        chip_cycle += dt_cycles
        result.intervals.append(
            physics._advance_and_record(
                dynamic,
                leakage,
                dt,
                cycle=chip_cycle,
                seconds=(i + 1) * interval_seconds,
            )
        )
        accounting.observe(physics.temperature_array)
    result.warmup_temperature = physics.warmup_temperatures

    per_thread_stats = [trace.stats_copy() for trace in traces]
    # A non-feedback chip policy never leaves the nominal VF point, so its
    # residency is a pure function of the interval count — reconstruct it
    # exactly as the coupled loop records it.
    dvfs_residency = (
        {"1": 1.0} if chip_policy is not None and accounting.intervals else None
    )
    return _finish_chip_result(
        result,
        cores=cores,
        benchmarks=[trace.benchmark for trace in traces],
        per_thread_stats=per_thread_stats,
        final_cores=list(range(len(traces))),
        accounting=accounting,
        chip_cycles=chip_cycle,
        policy_name=chip_policy.name if chip_policy else None,
        migration_log=(),
        dvfs_residency=dvfs_residency,
        thread_dtm=[None] * len(traces),
    )


def _chip_replay_matrices(
    traces: Sequence[ActivityTrace], blocks_per_core: int, interval_cycles: int
):
    """The shared per-core -> chip matrix stacking of :func:`replay_chip`.

    Depends only on the traces and the die layout, never on the physics
    variant — one build serves every cell of a batched chip replay group.
    Returns ``(counts, cycles, gated, chip_cycles, intervals)``.
    """
    lengths = [len(trace) for trace in traces]
    intervals = max(lengths)
    total_blocks = blocks_per_core * len(traces)
    counts = np.zeros((intervals, total_blocks))
    cycles = np.full((intervals, total_blocks), interval_cycles, dtype=np.int64)
    any_gated = any(trace.gated_masks is not None for trace in traces)
    gated = np.zeros((intervals, total_blocks), dtype=bool) if any_gated else None
    thread_cycles = np.zeros((len(traces), intervals), dtype=np.int64)
    for t, trace in enumerate(traces):
        seg = slice(t * blocks_per_core, (t + 1) * blocks_per_core)
        n = lengths[t]
        counts[:n, seg] = trace.counts
        cycles[:n, seg] = trace.cycles[:, None]
        thread_cycles[t, :n] = trace.cycles
        if gated is not None and trace.gated_masks is not None:
            gated[:n, seg] = trace.gated_masks
    return counts, cycles, gated, thread_cycles.max(axis=0), intervals


def replay_chip_group(
    traces: Sequence[ActivityTrace],
    specs: Sequence[object],
    *,
    replay_mode: str = "auto",
    warmup: bool = True,
) -> List[SimulationResult]:
    """Replay one per-core trace tuple under many chip physics variants.

    The chip analogue of :func:`repro.sim.group_replay.replay_group`:
    ``specs`` are :class:`~repro.chip.spec.ChipRunSpec` cells of one
    trace-set replay group (same mix, same cores — only physics-side
    configuration varies).  ``"exact"`` routes every cell through
    :func:`replay_chip` (bit-identical to the coupled run); ``"batched"`` /
    ``"auto"`` sub-group the cells by thermal/floorplan key (plus core
    count and solver backend — both shape the composite die's network) and
    advance each sub-group's cells per interval in one multi-RHS solve,
    within the same rtol/atol 1e-8 contract as the single-core batched
    path.  Results come back in ``specs`` order.
    """
    from repro.sim.group_replay import thermal_group_key, validate_replay_mode

    mode = validate_replay_mode(replay_mode)
    specs = list(specs)

    def _exact(spec) -> SimulationResult:
        return replay_chip(
            spec.config,
            traces,
            cores=spec.cores,
            interval_cycles=spec.interval_cycles,
            warmup=warmup,
            chip_policy=spec.chip_policy,
            solver_backend=spec.solver_backend,
        )

    if mode == "exact" or len(specs) <= 1:
        return [_exact(spec) for spec in specs]

    # Sub-group by everything that shapes the composite die's RC network.
    subgroups: Dict[str, List[int]] = {}
    for position, spec in enumerate(specs):
        core_parameters = build_block_parameters(spec.config)
        core_areas = {name: p.area_mm2 for name, p in core_parameters.items()}
        key = (
            f"{thermal_group_key(spec.config, core_areas)}"
            f":{spec.cores}:{spec.solver_backend}"
        )
        subgroups.setdefault(key, []).append(position)

    results: List[Optional[SimulationResult]] = [None] * len(specs)
    for positions in subgroups.values():
        members = [specs[p] for p in positions]
        policy_names = {
            (p.name if isinstance(p, ChipDTMPolicy) else p)
            for p in (spec.chip_policy for spec in members)
        }
        if len(positions) < 2 or (mode == "auto" and len(policy_names) > 1):
            for position in positions:
                results[position] = _exact(specs[position])
            continue
        for position, result in zip(
            positions, _replay_chip_subgroup_batched(traces, members, warmup)
        ):
            results[position] = result
    return results  # type: ignore[return-value]


def _replay_chip_subgroup_batched(
    traces: Sequence[ActivityTrace],
    specs: Sequence[object],
    warmup: bool,
) -> List[SimulationResult]:
    """The tensor path over one thermally-identical chip sub-group."""
    from repro.sim.group_replay import (
        batched_interval_walk,
        exact_warmup_state,
        nominal_power_tensor,
    )
    from repro.power.power_model import PowerModel

    rep = specs[0]
    cores = rep.cores if rep.cores is not None else len(traces)
    if not traces:
        raise ValueError("chip replay needs at least one per-core trace")
    if len(traces) > cores:
        raise ValueError(f"{len(traces)} traces do not fit on {cores} cores")
    physics, core_index, blocks_per_core = build_chip_physics(
        rep.config, cores, rep.interval_cycles, solver_backend=rep.solver_backend
    )
    interval_cycles = physics.interval_cycles
    solver = physics.solver
    network = physics.network
    node_positions = physics._node_positions
    chip_index = physics.block_index
    interval_seconds = rep.config.thermal.interval_seconds

    cells = []
    for spec in specs:
        policy = spec.chip_policy
        if isinstance(policy, str):
            policy = make_chip_policy(policy)
        if policy is not None and policy.feedback:
            raise ValueError(
                f"chip DTM policy {policy.name!r} actuates on temperatures; "
                "its cells must be simulated coupled, not replayed"
            )
        core_parameters = build_block_parameters(spec.config)
        chip_parameters = {
            name: core_parameters[name.split(CORE_SEPARATOR, 1)[1]]
            for name in chip_index.names
        }
        cells.append(
            (spec, policy, chip_parameters, PowerModel(spec.config.power, chip_parameters))
        )
    for t, trace in enumerate(traces):
        if list(trace.block_names) != list(core_index.names):
            raise ValueError(
                f"trace {t} was captured over a different block set; "
                "it cannot be replayed on this configuration"
            )
        if trace.interval_cycles != interval_cycles:
            raise ValueError(
                f"trace {t} was captured at interval_cycles="
                f"{trace.interval_cycles}, not {interval_cycles}"
            )

    counts, cycles, gated, chip_cycles, intervals = _chip_replay_matrices(
        traces, blocks_per_core, interval_cycles
    )
    width = len(cells)

    states = np.empty((network.num_nodes, width))
    warmup_maps = []
    seeded = warmup and intervals > 0
    if seeded:
        gated0 = gated[0] if gated is not None else None
        for k, (spec, _, _, power_model) in enumerate(cells):
            state = exact_warmup_state(
                solver,
                power_model,
                spec.config,
                counts[0],
                cycles[0],
                gated0,
                node_positions,
            )
            states[:, k] = state
            warmup_maps.append(chip_index.mapping_from_array(state[node_positions]))
    else:
        ambient_state = network.uniform_state(rep.config.thermal.ambient_celsius)
        ambient_map = chip_index.mapping_from_array(ambient_state[node_positions])
        for k in range(width):
            states[:, k] = ambient_state
            warmup_maps.append(dict(ambient_map))

    dynamic_tensor = np.stack(
        [
            power_model.dynamic_power_matrix(counts, cycles, gated)
            for _, _, _, power_model in cells
        ]
    )
    nominal_tensor = nominal_power_tensor(dynamic_tensor, seeded)
    fraction_col = np.array(
        [spec.config.power.leakage_fraction_at_ambient for spec, _, _, _ in cells]
    )[:, None]
    coefficient_col = np.array(
        [spec.config.power.leakage_temperature_coefficient for spec, _, _, _ in cells]
    )[:, None]
    ambient_col = np.array(
        [spec.config.power.ambient_celsius for spec, _, _, _ in cells]
    )[:, None]
    dts = [
        interval_seconds * (int(chip_cycles[i]) / interval_cycles)
        for i in range(intervals)
    ]

    temps_traj, leak_traj = batched_interval_walk(
        solver,
        node_positions,
        states,
        dynamic_tensor,
        nominal_tensor,
        fraction_col,
        coefficient_col,
        ambient_col,
        gated,
        dts,
    )

    benchmarks = [trace.benchmark for trace in traces]
    end_cycles = np.cumsum(chip_cycles[:intervals])
    results = []
    for k, (spec, policy, chip_parameters, _) in enumerate(cells):
        result = SimulationResult(
            config_name=spec.config.name,
            benchmark="+".join(benchmarks),
            stats=None,
            block_names=list(chip_parameters.keys()),
            block_groups=chip_block_groups(spec.config, cores),
            block_areas_mm2={
                name: p.area_mm2 for name, p in chip_parameters.items()
            },
            ambient_celsius=spec.config.thermal.ambient_celsius,
            provenance={
                "interval_cycles": interval_cycles,
                "replayed": True,
                "replay_mode": "batched",
            },
        )
        accounting = _ChipAccounting(cores, blocks_per_core)
        for i in range(intervals):
            result.intervals.append(
                IntervalRecord.from_arrays(
                    cycle=int(end_cycles[i]),
                    seconds=(i + 1) * interval_seconds,
                    block_names=chip_index.names,
                    dynamic_power=dynamic_tensor[k, i],
                    leakage_power=leak_traj[k, i],
                    temperature=temps_traj[k, i],
                )
            )
            accounting.observe(temps_traj[k, i])
        result.warmup_temperature = warmup_maps[k]
        dvfs_residency = (
            {"1": 1.0} if policy is not None and accounting.intervals else None
        )
        results.append(
            _finish_chip_result(
                result,
                cores=cores,
                benchmarks=benchmarks,
                per_thread_stats=[trace.stats_copy() for trace in traces],
                final_cores=list(range(len(traces))),
                accounting=accounting,
                chip_cycles=int(end_cycles[-1]) if intervals else 0,
                policy_name=policy.name if policy else None,
                migration_log=(),
                dvfs_residency=dvfs_residency,
                thread_dtm=[None] * len(traces),
            )
        )
    return results

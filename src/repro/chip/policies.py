"""Chip-level dynamic thermal management: migration and per-core DVFS.

The single-core DTM policies of :mod:`repro.dtm` act *inside* one core —
fetch duty, whole-interval gating, per-cluster DVFS domains.  A chip adds a
coarser set of actuators that only exist when several cores share a package:

* :class:`CoreMigrationPolicy` (``core_migration``) — the CMP analogue of
  the paper's sub-core activity migration (bank hopping moves heat between
  replicated trace-cache banks; migration moves a whole *thread* between
  replicated cores).  When the hottest busy core exceeds its trigger and a
  sufficiently cooler idle core exists, the thread migrates there and the
  hot core cools as blank silicon.
* :class:`ChipDVFSPolicy` (``chip_dvfs``) — every core is its own
  voltage/frequency domain walking a :class:`~repro.dtm.controls.VFTable`.
  Unlike the single-core DVFS policy (whose one global clock forces the
  whole core to the slowest domain), each core of a chip genuinely runs at
  its own frequency: the engine rations each core's fetch duty to its own
  domain's ratio.
* :class:`ChipNoPolicy` (``none``) — the explicit no-op; a chip run with it
  is bit-identical to running without a chip policy, which makes it the
  baseline of every chip sweep (and the only chip policy whose cells may be
  *replayed* from cached per-core traces).

A policy sees a :class:`ChipObservation` — sensor-quantized per-core hottest
temperatures plus which cores currently run a thread — and mutates the
clamped :class:`ChipControls`.  Policies are registered in
:data:`CHIP_POLICIES` and built from compact spec strings
(``"core_migration:trigger=78,margin=1"``) by :func:`make_chip_policy`,
sharing the parser (and its one-line CLI-friendly errors) with
:func:`repro.dtm.make_policy`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.dtm.controls import DEFAULT_VF_TABLE, VFTable
from repro.dtm.policies import make_policy_from_registry
from repro.sim.config import ProcessorConfig


class ChipObservation:
    """What a chip policy sees at the start of one thermal interval.

    Attributes
    ----------
    interval_index:
        Zero-based index of the interval about to be simulated.
    core_max_temps:
        Hottest sensor reading per core (degrees Celsius, core order),
        quantized to the sensor resolution.
    busy:
        Boolean vector per core: ``True`` where a thread is currently
        assigned and still executing.
    """

    def __init__(
        self, interval_index: int, core_max_temps: np.ndarray, busy: np.ndarray
    ) -> None:
        self.interval_index = interval_index
        self.core_max_temps = core_max_temps
        self.busy = busy

    def hottest_busy_core(self) -> Optional[int]:
        """Index of the hottest core currently running a thread (or ``None``)."""
        if not self.busy.any():
            return None
        temps = np.where(self.busy, self.core_max_temps, -np.inf)
        return int(temps.argmax())

    def coolest_idle_core(self) -> Optional[int]:
        """Index of the coolest core with no thread (or ``None``)."""
        if self.busy.all():
            return None
        temps = np.where(self.busy, np.inf, self.core_max_temps)
        return int(temps.argmin())


class ChipControls:
    """Clamped chip-level actuators: per-core VF steps and one migration.

    The chip engine owns one instance per run; the active policy mutates it
    each interval.  Like :class:`~repro.dtm.controls.DTMControls`, every
    request is clamped in the actuator — a policy cannot leave the VF table,
    migrate from/to nonexistent cores, or migrate more than one thread per
    interval.
    """

    def __init__(self, num_cores: int, table: Optional[VFTable] = None) -> None:
        if num_cores < 1:
            raise ValueError("a chip needs at least one core")
        self.num_cores = num_cores
        self.table = table or DEFAULT_VF_TABLE
        #: Per-core VF-table step indices.
        self._steps = np.zeros(num_cores, dtype=np.intp)
        #: Granted migration for the interval about to run: (from_core,
        #: to_core), or ``None``.
        self.migration: Optional[Tuple[int, int]] = None
        self._migration_allowed = True

    def begin_interval(self, migration_allowed: bool = True) -> None:
        """Reset the one-shot actuators before the policy runs.

        Migration is one-shot per interval; VF steps are level-triggered and
        persist.  ``migration_allowed`` is ``False`` for the interval whose
        cycles have already run (the post-warm-up observation).
        """
        self.migration = None
        self._migration_allowed = migration_allowed

    def request_core_step(self, core: int, step: int) -> int:
        """Move one core's VF domain to ``step`` (clamped into the table).

        ``core`` must be a real core index: a policy addressing a
        nonexistent core is a controller bug, surfaced loudly rather than
        silently throttling some other core (negative indices would
        otherwise wrap).
        """
        if not 0 <= core < self.num_cores:
            raise ValueError(
                f"core {core} out of range for a {self.num_cores}-core chip"
            )
        step = self.table.clamp_step(step)
        self._steps[core] = step
        return step

    def request_migration(self, from_core: int, to_core: int) -> bool:
        """Request moving the thread on ``from_core`` onto ``to_core``.

        Returns whether the request was granted; at most one migration per
        interval, and none for the interval whose cycles already ran.
        """
        if not self._migration_allowed or self.migration is not None:
            return False
        if not (0 <= from_core < self.num_cores and 0 <= to_core < self.num_cores):
            return False
        if from_core == to_core:
            return False
        self.migration = (from_core, to_core)
        return True

    # ------------------------------------------------------------------
    @property
    def steps(self) -> np.ndarray:
        """Per-core VF-table step indices (read-only view)."""
        return self._steps

    def core_step(self, core: int) -> int:
        return int(self._steps[core])

    def freq_ratio(self, core: int) -> float:
        """The core's current frequency ratio (1.0 = nominal)."""
        return self.table[int(self._steps[core])].freq_ratio

    def at_nominal(self) -> bool:
        """Whether every core sits at the nominal VF point."""
        return not self._steps.any()


class ChipDTMPolicy:
    """Base class / protocol of chip-level thermal management policies.

    Mirrors :class:`repro.dtm.policies.DTMPolicy` one level up: ``bind`` is
    called once per run, ``apply`` once per interval with a fresh
    :class:`ChipObservation`.  ``feedback`` marks policies that actuate on
    sensor readings — their instruction streams (migration) or operating
    points depend on the physics being swept, so their cells are excluded
    from per-core-trace replay exactly like feedback-bearing core policies.
    """

    table: Optional[VFTable] = None
    feedback: bool = True

    def __init__(self, name: str) -> None:
        self.name = name

    def bind(
        self, num_cores: int, config: ProcessorConfig, controls: ChipControls
    ) -> None:
        """Prepare for one run; subclasses must reset controller state here."""
        self.num_cores = num_cores
        self.config = config

    def apply(self, observation: ChipObservation, controls: ChipControls) -> None:
        raise NotImplementedError


class ChipNoPolicy(ChipDTMPolicy):
    """The do-nothing chip policy: bit-identical to running without one."""

    feedback = False

    def __init__(self) -> None:
        super().__init__("none")

    def apply(self, observation: ChipObservation, controls: ChipControls) -> None:
        return None


class CoreMigrationPolicy(ChipDTMPolicy):
    """Thread migration between replicated cores (chip-level activity
    migration).

    When the hottest busy core reads at or above ``trigger`` (degrees
    Celsius), and the coolest idle core is at least ``margin`` degrees
    cooler, the hot core's thread migrates there.  ``cooldown`` intervals
    must pass between migrations — migration costs real machine state (the
    model charges the architectural move only; caches re-warm naturally as
    the thread misses on the new core), so a sane controller does not
    ping-pong every interval.
    """

    def __init__(
        self, trigger: float = 80.0, margin: float = 1.0, cooldown: float = 3
    ) -> None:
        super().__init__(f"core_migration:trigger={trigger:g},margin={margin:g}")
        if margin < 0:
            raise ValueError("margin must be non-negative")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.trigger_celsius = float(trigger)
        self.margin_celsius = float(margin)
        self.cooldown_intervals = int(cooldown)
        self._last_migration = -(10**9)

    def bind(
        self, num_cores: int, config: ProcessorConfig, controls: ChipControls
    ) -> None:
        super().bind(num_cores, config, controls)
        self._last_migration = -(10**9)

    def apply(self, observation: ChipObservation, controls: ChipControls) -> None:
        if (
            observation.interval_index - self._last_migration
            <= self.cooldown_intervals
        ):
            return
        hot = observation.hottest_busy_core()
        cool = observation.coolest_idle_core()
        if hot is None or cool is None:
            return
        hot_temp = float(observation.core_max_temps[hot])
        cool_temp = float(observation.core_max_temps[cool])
        if hot_temp < self.trigger_celsius:
            return
        if hot_temp - cool_temp < self.margin_celsius:
            return
        if controls.request_migration(hot, cool):
            self._last_migration = observation.interval_index


class ChipDVFSPolicy(ChipDTMPolicy):
    """Per-core DVFS: every core is one voltage/frequency domain.

    Each interval, a core whose hottest sensor reads at or above ``target``
    steps one entry down the :class:`~repro.dtm.controls.VFTable`; a core
    cooler than ``target - hysteresis`` steps back up.  Voltage scales the
    core's power (``(V/V0)^2`` dynamic, ``V/V0`` leakage) and the frequency
    ratio is realized as that core's fetch duty — cores are independent
    clock domains, so unlike the single-core DVFS policy, slowing one core
    does not slow its neighbours.
    """

    def __init__(
        self,
        target: float = 88.0,
        hysteresis: float = 2.0,
        table: Optional[VFTable] = None,
    ) -> None:
        super().__init__(f"chip_dvfs:target={target:g}")
        self.target_celsius = float(target)
        self.hysteresis_celsius = float(hysteresis)
        self.table = table or DEFAULT_VF_TABLE
        self._steps: List[int] = []

    def bind(
        self, num_cores: int, config: ProcessorConfig, controls: ChipControls
    ) -> None:
        super().bind(num_cores, config, controls)
        self._steps = [0] * num_cores

    def apply(self, observation: ChipObservation, controls: ChipControls) -> None:
        for core in range(self.num_cores):
            hottest = float(observation.core_max_temps[core])
            step = self._steps[core]
            if hottest >= self.target_celsius:
                step += 1
            elif hottest < self.target_celsius - self.hysteresis_celsius:
                step -= 1
            # Remember what was granted, not what was asked (no wind-up).
            self._steps[core] = controls.request_core_step(core, step)


#: Named chip-policy factories, the chip analogue of
#: :data:`repro.dtm.policies.POLICIES`.
CHIP_POLICIES: Dict[str, Callable[..., ChipDTMPolicy]] = {
    "none": ChipNoPolicy,
    "core_migration": CoreMigrationPolicy,
    "chip_dvfs": ChipDVFSPolicy,
}


def available_chip_policies() -> Tuple[str, ...]:
    """Names of every registered chip-level DTM policy, in registry order."""
    return tuple(CHIP_POLICIES)


def make_chip_policy(spec: str) -> ChipDTMPolicy:
    """Instantiate a chip policy from a compact spec string.

    Same grammar and error behaviour as :func:`repro.dtm.make_policy`::

        make_chip_policy("core_migration")
        make_chip_policy("chip_dvfs:target=85,hysteresis=1")
    """
    return make_policy_from_registry(spec, CHIP_POLICIES, "chip DTM policy")

"""Declarative chip cells: one multi-core simulation as a campaign unit.

A :class:`ChipRunSpec` is the chip analogue of a
:class:`~repro.campaign.spec.RunSpec`: everything needed to simulate one
(configuration, core count, workload mix, chip DTM policy) cell in
isolation, content-hashable for the result cache and picklable into worker
processes.

The crucial structural property: a chip cell's *timing* decomposes into its
threads' single-core timing runs.  :meth:`ChipRunSpec.core_specs` projects
the cell onto per-thread single-core :class:`RunSpec` objects whose
``timing_key()`` is exactly the key a single-core campaign cell of the same
(config, workload, seed, interval) would mint — so a multi-core physics
sweep replays N *cached single-core* activity traces (captured by this
campaign, a previous one, or a plain single-core sweep) instead of
re-running any per-uop timing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.campaign.spec import RunSpec, _jsonable, variant_name
from repro.sim.activity_trace import timing_feedback_reason
from repro.sim.config import ProcessorConfig


def mix_name(benchmarks: Tuple[str, ...]) -> str:
    """Canonical display name of a workload mix (``"gzip+swim"``)."""
    return "+".join(benchmarks)


@dataclass(frozen=True)
class ChipRunSpec:
    """One independent chip cell: N threads on one composite die.

    ``benchmarks`` lists the thread workloads in core order (thread ``t``
    starts on core ``t``); fewer threads than ``cores`` leave idle cores —
    the blank silicon chip-level migration trades against.  ``chip_policy``
    optionally names a chip-level DTM policy
    (a :func:`repro.chip.make_chip_policy` spec string such as
    ``"core_migration"`` or ``"chip_dvfs:target=85"``).

    ``contention`` optionally names a shared-LLC contention model
    (a :func:`repro.chip.make_contention` spec string such as
    ``"shared_llc"`` or ``"shared_llc:service=32"``); contended cells
    couple threads through memory latency and are therefore never
    replayable.  ``solver_backend`` selects the thermal solver's
    factorization (``"auto"``/``"dense"``/``"sparse"``, see
    :mod:`repro.thermal.solver`); it is part of the cache key only when it
    is not ``"auto"``, because sparse and dense results are equivalent but
    not bit-identical and must not collide in the result cache.

    ``replay_mode`` selects how a replay group computes its physics
    (``"exact"``/``"batched"``/``"auto"``, see
    :mod:`repro.sim.group_replay`).  It is an execution knob like the
    ``REPRO_TIMING_MODE`` env var — deliberately excluded from
    :meth:`key_material` and :meth:`provenance` so a cell keeps one cache
    identity across modes.
    """

    config: ProcessorConfig
    cores: int
    benchmarks: Tuple[str, ...]
    trace_uops: Tuple[int, ...]
    interval_cycles: int
    seed: int
    chip_policy: Optional[str] = None
    contention: Optional[str] = None
    solver_backend: str = "auto"
    replay_mode: str = "exact"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("a chip cell needs at least one core")
        if not self.benchmarks:
            raise ValueError("a chip cell needs at least one thread")
        if len(self.benchmarks) > self.cores:
            raise ValueError(
                f"{len(self.benchmarks)} threads do not fit on {self.cores} cores"
            )
        if len(self.trace_uops) != len(self.benchmarks):
            raise ValueError(
                f"{len(self.trace_uops)} trace lengths for "
                f"{len(self.benchmarks)} threads"
            )
        from repro.thermal.solver import SOLVER_BACKENDS

        if self.solver_backend not in SOLVER_BACKENDS:
            raise ValueError(
                f"solver_backend must be one of {', '.join(SOLVER_BACKENDS)}, "
                f"not {self.solver_backend!r}"
            )
        if self.contention is not None:
            from repro.chip.contention import make_contention

            # Fail fast on malformed specs, and normalize disabled spellings
            # ("none", "") to None so they cannot mint a cache key distinct
            # from the contention-free cell they are identical to.
            if make_contention(self.contention) is None:
                object.__setattr__(self, "contention", None)
        from repro.sim.group_replay import validate_replay_mode

        object.__setattr__(self, "replay_mode", validate_replay_mode(self.replay_mode))

    # ------------------------------------------------------------------
    @property
    def benchmark(self) -> str:
        """The mix's display name — the per-benchmark key of summaries."""
        return mix_name(self.benchmarks)

    @property
    def variant(self) -> str:
        """Name of this cell's (configuration, chip policy) combination."""
        return variant_name(self.config.name, self.chip_policy)

    def provenance(self) -> Dict[str, object]:
        """Settings provenance recorded into the produced result."""
        provenance: Dict[str, object] = {
            "cores": self.cores,
            "benchmarks": list(self.benchmarks),
            "trace_uops": list(self.trace_uops),
            "interval_cycles": self.interval_cycles,
            "seed": self.seed,
        }
        if self.chip_policy is not None:
            provenance["chip_policy"] = self.chip_policy
        if self.contention is not None:
            provenance["contention"] = self.contention
        if self.solver_backend != "auto":
            provenance["solver_backend"] = self.solver_backend
        return provenance

    def key_material(self) -> Dict[str, object]:
        """The canonical content this cell is identified by.

        Chip keys live in their own namespace (the ``"chip"`` marker): a
        1-core chip cell is *not* the single-core cell of the same workload
        — its result carries chip telemetry and chip block names — so the
        two must never collide in the result cache.
        """
        material: Dict[str, object] = {
            "chip": True,
            "cores": self.cores,
            "config": _jsonable(self.config.to_dict()),
            "benchmarks": list(self.benchmarks),
            "trace_uops": list(self.trace_uops),
            "interval_cycles": self.interval_cycles,
            "seed": self.seed,
        }
        if self.chip_policy is not None:
            material["chip_policy"] = self.chip_policy
        # Both knobs below enter the material only when set, so every cache
        # key minted before they existed still matches its cell.  The
        # solver backend is keyed when explicit because sparse and dense
        # results are tolerance-equivalent, not bit-identical — an explicit
        # "sparse" result must never be served for a "dense" request (or
        # vice versa); "auto" keys like the pre-sparse solver, whose
        # resolution is a pure function of the cell's own node count.
        if self.contention is not None:
            material["contention"] = self.contention
        if self.solver_backend != "auto":
            material["solver_backend"] = self.solver_backend
        return material

    def cache_key(self) -> str:
        """Stable content hash identifying this cell across processes/runs."""
        payload = json.dumps(self.key_material(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Two-stage execution: the per-thread single-core projection
    # ------------------------------------------------------------------
    def core_specs(self) -> Tuple[RunSpec, ...]:
        """Single-core cells whose timing this chip cell is composed of.

        Their :meth:`~repro.campaign.spec.RunSpec.timing_key` values are the
        trace-artifact keys the chip replay path loads (or captures) — the
        same keys a plain single-core campaign of the same settings uses.
        """
        return tuple(
            RunSpec(
                config=self.config,
                benchmark=benchmark,
                trace_uops=uops,
                interval_cycles=self.interval_cycles,
                seed=self.seed,
            )
            for benchmark, uops in zip(self.benchmarks, self.trace_uops)
        )

    def replay_reason(self) -> Optional[str]:
        """Why this cell must be simulated coupled (``None`` = replayable)."""
        reason = timing_feedback_reason(self.config)
        if reason is not None:
            return reason
        if self.contention is not None:
            return (
                "shared-LLC contention couples threads through memory latency"
            )
        if self.chip_policy is not None:
            from repro.chip.policies import make_chip_policy

            policy = make_chip_policy(self.chip_policy)
            if policy.feedback:
                return (
                    f"chip DTM policy {policy.name!r} actuates on temperatures"
                )
        return None

    @property
    def replayable(self) -> bool:
        """Whether this cell can be replayed from cached per-core traces."""
        return self.replay_reason() is None

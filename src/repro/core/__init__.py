"""The paper's contribution: the distributed, thermally-aware frontend.

Three orthogonal mechanisms are implemented (Section 3 of the paper):

* :mod:`repro.core.distributed_rename` — distributed register renaming with a
  centralized steering stage, per-backend freelists, an availability table
  and disjoint per-frontend rename tables (Section 3.1.1);
* :mod:`repro.core.distributed_commit` — distributed reorder buffers with the
  ``R``/``L`` commit-selection walk (Section 3.1.2);
* :mod:`repro.core.bank_hopping` and :mod:`repro.core.thermal_mapping` — the
  sub-banked trace cache with rotating Vdd-gating of one bank and the
  thermal-aware biased bank mapping function (Section 3.2).

:mod:`repro.core.presets` exposes ready-made processor configurations for the
baseline and every configuration evaluated in Figures 12-14.
"""

from repro.core.thermal_mapping import (
    BankMappingTable,
    BalancedMappingPolicy,
    ThermalAwareMappingPolicy,
    trace_address_hash,
)
from repro.core.bank_hopping import BankHoppingController
from repro.core.distributed_rename import AvailabilityTable, ClusterFreeLists, DistributedRenameUnit
from repro.core.distributed_commit import DistributedCommitUnit, PartialReorderBuffer
from repro.core.presets import (
    FrontendOrganization,
    baseline_config,
    distributed_rename_commit_config,
    address_biasing_config,
    blank_silicon_config,
    bank_hopping_config,
    bank_hopping_biasing_config,
    distributed_frontend_config,
    config_for,
    ALL_CONFIGURATIONS,
)

__all__ = [
    "BankMappingTable",
    "BalancedMappingPolicy",
    "ThermalAwareMappingPolicy",
    "trace_address_hash",
    "BankHoppingController",
    "AvailabilityTable",
    "ClusterFreeLists",
    "DistributedRenameUnit",
    "DistributedCommitUnit",
    "PartialReorderBuffer",
    "FrontendOrganization",
    "baseline_config",
    "distributed_rename_commit_config",
    "address_biasing_config",
    "blank_silicon_config",
    "bank_hopping_config",
    "bank_hopping_biasing_config",
    "distributed_frontend_config",
    "config_for",
    "ALL_CONFIGURATIONS",
]

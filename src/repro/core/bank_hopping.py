"""Trace-cache bank hopping (Section 3.2.1).

Bank hopping Vdd-gates one of the trace-cache banks during a given interval
of time, in a rotating manner, migrating activity to reduce average power
density over time.  The contents of a gated bank are lost, so when the gated
bank changes, the mapping function is rebuilt to steer accesses previously
mapped to the newly-gated bank to an enabled bank.

To avoid reducing the effective cache size, the configuration adds one extra
physical bank beyond the banks that hold content, so that one bank can always
be off without shrinking capacity (the total trace-cache *area* grows, the
*power* does not, because one bank is always gated).
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class BankHoppingController:
    """Decides which physical bank is Vdd-gated at any time.

    Parameters
    ----------
    physical_banks:
        Total number of physical banks on the floorplan.
    active_banks:
        Number of banks that hold content simultaneously.
    hop_interval_cycles:
        Number of cycles between hops; ignored when ``enabled`` is False.
    enabled:
        When False (baseline, or the "blank silicon" comparison), the gated
        set never rotates.
    static_gated_banks:
        Banks that are permanently gated (the blank-silicon configuration
        statically gates one of three banks).
    """

    def __init__(
        self,
        physical_banks: int,
        active_banks: int,
        hop_interval_cycles: int,
        enabled: bool = True,
        static_gated_banks: Optional[Sequence[int]] = None,
    ) -> None:
        if physical_banks <= 0 or active_banks <= 0:
            raise ValueError("bank counts must be positive")
        if active_banks > physical_banks:
            raise ValueError("cannot enable more banks than physically exist")
        if hop_interval_cycles <= 0:
            raise ValueError("hop interval must be positive")
        self.physical_banks = physical_banks
        self.active_banks = active_banks
        self.hop_interval_cycles = hop_interval_cycles
        self.enabled = enabled
        self.num_hops = 0
        if static_gated_banks is None:
            static_gated_banks = []
        for bank in static_gated_banks:
            if not 0 <= bank < physical_banks:
                raise ValueError(f"static gated bank {bank} out of range")
        self._static_gated = frozenset(static_gated_banks)
        spare = physical_banks - active_banks
        if len(self._static_gated) > spare:
            raise ValueError("cannot statically gate more banks than spare banks exist")
        # The rotating gated bank starts at the highest-numbered bank (the
        # "extra" bank added for hopping), so the initially enabled banks are
        # the same ones the baseline uses.
        self._rotating_gated: Optional[int] = None
        if enabled and spare > len(self._static_gated):
            candidates = [
                b for b in range(physical_banks - 1, -1, -1) if b not in self._static_gated
            ]
            self._rotating_gated = candidates[0]

    # ------------------------------------------------------------------
    @property
    def gated_banks(self) -> List[int]:
        """Banks currently Vdd-gated (no accesses, no leakage, contents lost)."""
        gated = set(self._static_gated)
        if self._rotating_gated is not None:
            gated.add(self._rotating_gated)
        return sorted(gated)

    @property
    def enabled_banks(self) -> List[int]:
        """Banks currently powered and holding content."""
        gated = set(self.gated_banks)
        return [b for b in range(self.physical_banks) if b not in gated]

    def is_gated(self, bank: int) -> bool:
        return bank in self.gated_banks

    # ------------------------------------------------------------------
    def should_hop(self, cycle: int) -> bool:
        """Whether a hop is due at ``cycle`` (interval boundary)."""
        if not self.enabled or self._rotating_gated is None:
            return False
        return cycle > 0 and cycle % self.hop_interval_cycles == 0

    def hop(self) -> int:
        """Rotate the gated bank; return the *newly gated* bank.

        The caller is responsible for flushing the newly gated bank's
        contents and rebuilding the mapping table over the new enabled set.
        """
        if not self.enabled or self._rotating_gated is None:
            raise RuntimeError("bank hopping is not enabled")
        current = self._rotating_gated
        next_bank = (current - 1) % self.physical_banks
        # Skip statically gated banks so the rotation only moves over banks
        # that actually toggle.
        while next_bank in self._static_gated:
            next_bank = (next_bank - 1) % self.physical_banks
        self._rotating_gated = next_bank
        self.num_hops += 1
        return next_bank

"""Distributed reorder buffer and commit (Section 3.1.2 of the paper).

Each frontend partition owns a *partial reorder buffer* holding only the
instructions that were steered to its backends.  Besides the conventional
ready bit ``R``, every entry carries an ``L`` field indicating which reorder
buffer holds the *next* instruction in program order, and a special register
points to the reorder buffer that holds the next instruction to be committed.

Commit selection walks the R/L pairs (Figure 8):

* if ``R = 0``, no more instructions are committed this cycle;
* if ``R = 1`` and ``L`` points to the current reorder buffer, the
  instruction is selected and the next entry of the same buffer is examined;
* if ``R = 1`` and ``L`` points to another reorder buffer, the instruction is
  selected and the walk continues in the buffer ``L`` points to;
* the walk stops after ``C`` (the commit bandwidth) instructions.

Because the commit logic is more complex than in the monolithic case, its
latency is increased by one cycle (modelled by requiring an instruction to
have completed one extra cycle before it becomes committable).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.frontend.commit import CommitUnit
from repro.sim.uop import DynamicUop, UopState


@dataclass
class _RobEntry:
    """One entry of a partial reorder buffer."""

    uop: DynamicUop
    #: Index of the reorder buffer holding the next instruction in program
    #: order (the paper's ``L`` field; ``None`` until the next instruction is
    #: allocated).
    next_frontend: Optional[int] = None

    @property
    def ready(self) -> bool:
        """The paper's ``R`` bit: the instruction has completed execution."""
        return self.uop.state is UopState.COMPLETED


class PartialReorderBuffer:
    """The portion of the reorder buffer owned by one frontend partition."""

    def __init__(self, frontend_id: int, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("partial reorder buffer capacity must be positive")
        self.frontend_id = frontend_id
        self.capacity = capacity
        self._entries: Deque[_RobEntry] = deque()
        self.allocated = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, uop: DynamicUop) -> _RobEntry:
        if self.is_full:
            raise RuntimeError(f"partial ROB {self.frontend_id} is full")
        entry = _RobEntry(uop=uop)
        self._entries.append(entry)
        self.allocated += 1
        return entry

    def head(self) -> Optional[_RobEntry]:
        return self._entries[0] if self._entries else None

    def pop_head(self) -> _RobEntry:
        return self._entries.popleft()

    def entries(self) -> List[_RobEntry]:
        """Snapshot of the entries (oldest first), for tests and debugging."""
        return list(self._entries)


class DistributedCommitUnit(CommitUnit):
    """Commit across partial reorder buffers using the R/L walk."""

    def __init__(
        self,
        num_frontends: int,
        rob_entries_per_frontend: int,
        commit_width: int,
        extra_commit_latency: int = 1,
    ) -> None:
        if num_frontends < 2:
            raise ValueError("distributed commit requires at least two partitions")
        if commit_width <= 0:
            raise ValueError("commit width must be positive")
        if extra_commit_latency < 0:
            raise ValueError("extra commit latency cannot be negative")
        self.num_frontends = num_frontends
        self.commit_width = commit_width
        self.extra_commit_latency = extra_commit_latency
        self.partitions = [
            PartialReorderBuffer(i, rob_entries_per_frontend) for i in range(num_frontends)
        ]
        #: The special register pointing to the reorder buffer that holds the
        #: next instruction to be committed.
        self._head_frontend: Optional[int] = None
        #: Last allocated entry, used to fill in its ``L`` field when the next
        #: instruction (possibly in another partition) is allocated.
        self._last_allocated: Optional[_RobEntry] = None
        self.allocated = 0
        self.committed = 0

    # ------------------------------------------------------------------
    # Allocation (called in program order by the rename stage)
    # ------------------------------------------------------------------
    def can_allocate(self, frontend_id: int) -> bool:
        return not self.partitions[frontend_id].is_full

    def allocate(self, uop: DynamicUop) -> None:
        partition = self.partitions[uop.frontend_id]
        entry = partition.allocate(uop)
        if self._last_allocated is not None:
            # The previous instruction in program order now knows where the
            # next one lives: this is the L field of the paper.
            self._last_allocated.next_frontend = uop.frontend_id
        if self._head_frontend is None:
            self._head_frontend = uop.frontend_id
        self._last_allocated = entry
        self.allocated += 1

    # ------------------------------------------------------------------
    # Commit selection (the R/L walk of Figure 8)
    # ------------------------------------------------------------------
    def commit(self, cycle: int) -> List[DynamicUop]:
        committed: List[DynamicUop] = []
        if self._head_frontend is None:
            return committed
        while len(committed) < self.commit_width:
            partition = self.partitions[self._head_frontend]
            entry = partition.head()
            if entry is None:
                break
            uop = entry.uop
            # R bit check, with the extra cycle of commit latency the paper
            # charges for the added selection complexity.
            if (
                uop.state is not UopState.COMPLETED
                or uop.complete_cycle + self.extra_commit_latency > cycle
            ):
                break
            partition.pop_head()
            uop.state = UopState.COMMITTED
            uop.commit_cycle = cycle
            committed.append(uop)
            self.committed += 1
            if entry.next_frontend is None:
                # No younger instruction has been allocated yet, so every
                # partial reorder buffer is now empty; the next allocation
                # re-establishes the head pointer.
                if entry is self._last_allocated:
                    self._last_allocated = None
                self._head_frontend = None
                break
            self._head_frontend = entry.next_frontend
        return committed

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        return sum(len(partition) for partition in self.partitions)

    def occupancy_per_partition(self) -> List[int]:
        return [len(partition) for partition in self.partitions]

    @property
    def head_frontend(self) -> Optional[int]:
        """Partition currently holding the oldest uncommitted instruction."""
        return self._head_frontend

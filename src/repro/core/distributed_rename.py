"""Distributed register renaming (Section 3.1.1 of the paper).

The monolithic rename table is split into one table per frontend partition;
each partition stores the mappings only for the backend clusters it feeds.
To keep renaming free of inter-partition communication:

* the renaming of the *destination* register happens at the (centralized)
  steering stage, using per-backend freelists that are kept centralized along
  with the steering logic (:class:`ClusterFreeLists`);
* an *availability table* — one entry per logical register, one bit per
  backend — lets the steering stage know which clusters hold a valid copy of
  each logical register (:class:`AvailabilityTable`);
* when a value must be brought from a cluster that belongs to another
  frontend partition, a *copy request* is generated at steering (step 1) and
  the owning frontend generates the actual copy micro-op (step 2).

:class:`DistributedRenameUnit` plugs these structures into the shared rename
machinery of :class:`repro.frontend.rename.CentralizedRenameUnit`: the
mapping discipline is identical (that is the point — distribution must not
change the semantics), but activity is charged to the per-partition ``RATn``
blocks and inter-frontend copy requests are tracked explicitly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.backend.cluster import Cluster
from repro.frontend.rename import CentralizedRenameUnit, RenameOutcome
from repro.isa.registers import RegisterSpace
from repro.sim.config import ProcessorConfig
from repro.sim.stats import ActivityCounters, SimulationStats
from repro.sim.uop import DynamicUop


class AvailabilityTable:
    """Which backend clusters hold a valid copy of each logical register.

    The paper sizes this table with as many entries as logical registers and
    as many bits per entry as backend clusters; it lives with the centralized
    steering logic and is *not* the rename table (it stores presence bits,
    not physical register numbers).
    """

    def __init__(self, register_space: RegisterSpace, num_clusters: int) -> None:
        self.register_space = register_space
        self.num_clusters = num_clusters
        self._bits: List[int] = [0] * register_space.total
        self.reads = 0
        self.writes = 0

    def has_copy(self, flat_index: int, cluster: int) -> bool:
        self.reads += 1
        return bool(self._bits[flat_index] & (1 << cluster))

    def clusters_with_copy(self, flat_index: int) -> List[int]:
        self.reads += 1
        bits = self._bits[flat_index]
        return [c for c in range(self.num_clusters) if bits & (1 << c)]

    def set_copy(self, flat_index: int, cluster: int) -> None:
        self.writes += 1
        self._bits[flat_index] |= 1 << cluster

    def clear_register(self, flat_index: int, cluster: int) -> None:
        """A new value was produced in ``cluster``: only that cluster holds it."""
        self.writes += 1
        self._bits[flat_index] = 1 << cluster

    def clear_all(self, flat_index: int) -> None:
        self.writes += 1
        self._bits[flat_index] = 0

    def entry_bits(self, flat_index: int) -> int:
        """Raw presence bitmap of one entry (for tests and debugging)."""
        return self._bits[flat_index]


class ClusterFreeLists:
    """Per-backend freelists kept centralized along with the steering logic.

    The freelists are thin views over the clusters' physical register files:
    the steering stage consults them to obtain a free destination register
    right after it selects the destination backend.
    """

    def __init__(self, clusters: Sequence[Cluster]) -> None:
        self._clusters = list(clusters)
        self.allocations = 0

    def free_registers(self, cluster: int, is_fp: bool) -> int:
        """Number of free physical registers of one class in one backend."""
        return self._clusters[cluster].register_file_for(is_fp).free_count

    def can_allocate(self, cluster: int, is_fp: bool, count: int = 1) -> bool:
        return self._clusters[cluster].register_file_for(is_fp).can_allocate(count)

    def allocate(self, cluster: int, is_fp: bool) -> int:
        """Obtain a free physical register of backend ``cluster``."""
        self.allocations += 1
        return self._clusters[cluster].register_file_for(is_fp).allocate()


class CopyRequest:
    """A request from one frontend partition to another to generate a copy.

    Step 1 of the copy-request mechanism (Section 3.1.1): the request carries
    the logical register to be copied, the destination physical register and
    the destination backend; the owning frontend then generates the copy
    micro-op (step 2).
    """

    __slots__ = ("logical_flat", "source_frontend", "dest_frontend", "dest_cluster", "dest_phys")

    def __init__(
        self,
        logical_flat: int,
        source_frontend: int,
        dest_frontend: int,
        dest_cluster: int,
        dest_phys: int,
    ) -> None:
        self.logical_flat = logical_flat
        self.source_frontend = source_frontend
        self.dest_frontend = dest_frontend
        self.dest_cluster = dest_cluster
        self.dest_phys = dest_phys


class DistributedRenameUnit(CentralizedRenameUnit):
    """Rename unit with per-frontend rename tables (the paper's proposal).

    The renaming discipline is inherited unchanged from the centralized unit
    — the paper's point is precisely that the distribution is transparent to
    the renaming semantics and adds no latency.  What changes:

    * rename-table activity is charged to the per-partition ``RAT0``/``RAT1``
      blocks (their smaller size also gives them a lower energy per access in
      the power model);
    * the availability table and the per-backend freelists are maintained as
      explicit structures of the steering stage;
    * copies whose source cluster belongs to another frontend partition are
      recorded as inter-frontend copy requests.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        clusters: Sequence[Cluster],
        register_space: RegisterSpace,
        activity: ActivityCounters,
        stats: SimulationStats,
    ) -> None:
        if config.frontend.num_frontends < 2:
            raise ValueError(
                "DistributedRenameUnit requires at least two frontend partitions"
            )
        super().__init__(config, clusters, register_space, activity, stats)
        self.availability = AvailabilityTable(register_space, len(clusters))
        self.freelists = ClusterFreeLists(clusters)
        self.copy_requests: List[CopyRequest] = []

    # ------------------------------------------------------------------
    # Hooks into the shared rename machinery
    # ------------------------------------------------------------------
    def _on_copy_between_frontends(self) -> None:
        """Record the copy-request signalling between frontend partitions."""
        # The actual request object is created in ``rename`` below, where the
        # registers involved are known; this hook only exists so the base
        # class can notify us at the exact point the copy crosses partitions.

    def rename(
        self,
        dynamic: DynamicUop,
        cluster: int,
        cycle: int,
        seq_alloc: Callable[[], int],
    ) -> RenameOutcome:
        outcome = super().rename(dynamic, cluster, cycle, seq_alloc)
        dest_frontend = self.config.frontend_of_cluster(cluster)
        # Maintain the availability table: copies add presence bits, a new
        # destination value resets its entry to the producing cluster only.
        for copy in outcome.copies:
            source_frontend = self.config.frontend_of_cluster(copy.cluster)
            # Presence bit of the copied register in the destination cluster.
            # (The logical register is recoverable from the copy's dest_ref
            # position in the rename tables; we record presence per cluster.)
            self.availability.set_copy(self._flat_of_copy(copy), copy.copy_dest_cluster)
            if source_frontend != dest_frontend:
                regfile, phys = copy.dest_ref
                self.copy_requests.append(
                    CopyRequest(
                        logical_flat=self._flat_of_copy(copy),
                        source_frontend=source_frontend,
                        dest_frontend=dest_frontend,
                        dest_cluster=copy.copy_dest_cluster,
                        dest_phys=phys,
                    )
                )
        if dynamic.static.dest is not None:
            flat = self.register_space.flat_index(dynamic.static.dest)
            self.availability.clear_register(flat, cluster)
        return outcome

    def _flat_of_copy(self, copy: DynamicUop) -> int:
        """Flat logical index a copy refers to (tracked via the rename tables)."""
        # The copy's destination mapping was installed by the base class; we
        # find which logical register now maps to that physical reference.
        for flat in range(self.register_space.total):
            if self.tables.mapping(flat, copy.copy_dest_cluster) == copy.dest_ref:
                return flat
        return -1

    # ------------------------------------------------------------------
    # Introspection used by tests and reports
    # ------------------------------------------------------------------
    def partition_of_cluster(self, cluster: int) -> int:
        return self.config.frontend_of_cluster(cluster)

    def copy_request_count(self) -> int:
        return len(self.copy_requests)

    def copy_requests_by_direction(self) -> Dict[tuple, int]:
        """Number of copy requests per (source frontend, destination frontend)."""
        counts: Dict[tuple, int] = {}
        for request in self.copy_requests:
            key = (request.source_frontend, request.dest_frontend)
            counts[key] = counts.get(key, 0) + 1
        return counts

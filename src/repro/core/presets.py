"""Configuration presets for every configuration evaluated in the paper.

The paper's figures compare the following configurations, all built on the
same quad-cluster backend:

========================  =====================================================
Name                      Description
========================  =====================================================
``baseline``              Unified rename/commit, 2-banked trace cache, balanced
                          mapping (the reference of every figure).
``distributed_rc``        Distributed rename and commit, 2 frontend partitions
                          (Figure 12).
``address_biasing``       Baseline + thermal-aware biased mapping on the
                          2-banked trace cache (Figure 13).
``blank_silicon``         3 trace-cache banks with one statically gated
                          (Figure 13's comparison point).
``bank_hopping``          3 trace-cache banks, one Vdd-gated in rotation
                          (Figure 13).
``hopping_biasing``       Bank hopping + thermal-aware mapping (Figure 13).
``distributed_frontend``  Distributed rename/commit + bank hopping + biasing
                          (Figure 14, the full proposal).
========================  =====================================================

Every preset is expressed through the fluent
:class:`~repro.campaign.builder.ConfigBuilder`, which is also how ad-hoc
variants (ablation sweeps, CLI campaigns) should be derived.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict

from repro.campaign.builder import ConfigBuilder
from repro.sim.config import ProcessorConfig


class FrontendOrganization(enum.Enum):
    """Symbolic names of the evaluated frontend configurations."""

    BASELINE = "baseline"
    DISTRIBUTED_RENAME_COMMIT = "distributed_rc"
    ADDRESS_BIASING = "address_biasing"
    BLANK_SILICON = "blank_silicon"
    BANK_HOPPING = "bank_hopping"
    BANK_HOPPING_BIASING = "hopping_biasing"
    DISTRIBUTED_FRONTEND = "distributed_frontend"


def baseline_config() -> ProcessorConfig:
    """The paper's baseline (Table 1): unified frontend, 2-bank trace cache."""
    return ConfigBuilder.baseline().build()


def distributed_rename_commit_config(num_frontends: int = 2) -> ProcessorConfig:
    """Distributed rename and commit (Section 3.1): N frontend partitions."""
    return (
        ConfigBuilder.baseline()
        .distributed(num_frontends)
        .named(FrontendOrganization.DISTRIBUTED_RENAME_COMMIT.value)
        .build()
    )


def address_biasing_config() -> ProcessorConfig:
    """Thermal-aware biased mapping on the baseline's two banks (Section 3.2.2)."""
    return (
        ConfigBuilder.baseline()
        .biased_mapping()
        .named(FrontendOrganization.ADDRESS_BIASING.value)
        .build()
    )


def blank_silicon_config() -> ProcessorConfig:
    """Three banks with one statically gated (the Figure 13 comparison)."""
    return (
        ConfigBuilder.baseline()
        .blank_silicon()
        .named(FrontendOrganization.BLANK_SILICON.value)
        .build()
    )


def bank_hopping_config() -> ProcessorConfig:
    """Bank hopping with one extra bank (Section 3.2.1)."""
    return (
        ConfigBuilder.baseline()
        .bank_hopping()
        .named(FrontendOrganization.BANK_HOPPING.value)
        .build()
    )


def bank_hopping_biasing_config() -> ProcessorConfig:
    """Bank hopping combined with the thermal-aware mapping function."""
    return (
        ConfigBuilder.baseline()
        .bank_hopping()
        .biased_mapping()
        .named(FrontendOrganization.BANK_HOPPING_BIASING.value)
        .build()
    )


def distributed_frontend_config(num_frontends: int = 2) -> ProcessorConfig:
    """The full distributed frontend: distributed rename/commit + hopping + biasing."""
    return (
        ConfigBuilder.baseline()
        .distributed(num_frontends)
        .bank_hopping()
        .biased_mapping()
        .named(FrontendOrganization.DISTRIBUTED_FRONTEND.value)
        .build()
    )


_BUILDERS: Dict[FrontendOrganization, Callable[[], ProcessorConfig]] = {
    FrontendOrganization.BASELINE: baseline_config,
    FrontendOrganization.DISTRIBUTED_RENAME_COMMIT: distributed_rename_commit_config,
    FrontendOrganization.ADDRESS_BIASING: address_biasing_config,
    FrontendOrganization.BLANK_SILICON: blank_silicon_config,
    FrontendOrganization.BANK_HOPPING: bank_hopping_config,
    FrontendOrganization.BANK_HOPPING_BIASING: bank_hopping_biasing_config,
    FrontendOrganization.DISTRIBUTED_FRONTEND: distributed_frontend_config,
}

#: All evaluated configurations, in the order the paper presents them.
ALL_CONFIGURATIONS = tuple(_BUILDERS)


def config_for(organization: FrontendOrganization) -> ProcessorConfig:
    """Build the :class:`ProcessorConfig` for a named frontend organization."""
    try:
        builder = _BUILDERS[organization]
    except KeyError:
        raise KeyError(f"unknown frontend organization {organization!r}") from None
    return builder()

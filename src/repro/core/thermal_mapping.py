"""Bank mapping functions for the sub-banked trace cache (Section 3.2.2).

Whenever the trace cache is accessed, a mapping function selects the bank
where the line lives.  The paper's selection policy performs a bitwise XOR of
two five-bit fields of the trace-cache address to obtain a five-bit number,
which indexes a 32-entry table holding the bank assigned to each combination.

Two policies populate that table:

* the **balanced** policy assigns ``1/N`` of the combinations to each of the
  ``N`` enabled banks (conventional banking);
* the **thermal-aware** policy biases the distribution towards colder banks:
  a bank's share of entries is halved for every
  ``bias_threshold_celsius`` (3 C in the paper) that its temperature exceeds
  the average temperature of all banks.  The table is recomputed at a fixed
  interval (10 M cycles in the paper) from the per-bank thermal sensors.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


def trace_address_hash(address: int, bits: int = 5) -> int:
    """Hash a trace-cache address into a ``bits``-bit combination index.

    The paper XORs two five-bit fields of the trace-cache address (branch
    bits plus the PC of the first instruction of the trace); the fields were
    picked to spread addresses uniformly over combinations.  We XOR two
    disjoint PC fields above the instruction-alignment bits.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    mask = (1 << bits) - 1
    low = (address >> 2) & mask
    high = (address >> (2 + bits)) & mask
    return (low ^ high) & mask


class BankMappingTable:
    """The combination-to-bank table indexed by the trace-address hash."""

    def __init__(self, num_entries: int, enabled_banks: Sequence[int]) -> None:
        if num_entries <= 0:
            raise ValueError("mapping table needs at least one entry")
        if not enabled_banks:
            raise ValueError("mapping table needs at least one enabled bank")
        self.num_entries = num_entries
        self._entries: List[int] = [enabled_banks[0]] * num_entries
        self.set_balanced(enabled_banks)

    @property
    def entries(self) -> List[int]:
        """A copy of the current entry-to-bank assignment."""
        return list(self._entries)

    def bank_for(self, address: int) -> int:
        """Bank that ``address`` maps to under the current table."""
        index = trace_address_hash(address) % self.num_entries
        return self._entries[index]

    def bank_for_combination(self, combination: int) -> int:
        """Bank assigned to a raw combination index."""
        return self._entries[combination % self.num_entries]

    def entries_per_bank(self) -> Dict[int, int]:
        """Number of table entries currently assigned to each bank."""
        counts: Dict[int, int] = {}
        for bank in self._entries:
            counts[bank] = counts.get(bank, 0) + 1
        return counts

    def set_assignment(self, shares: Dict[int, int]) -> None:
        """Assign ``shares[bank]`` consecutive entries to each bank.

        The shares must sum to the table size.  Consecutive assignment
        mirrors the paper's Figure 9 ("entries from 0 to 15 point to bank 0,
        entries from 16 to 31 point to bank 1").
        """
        total = sum(shares.values())
        if total != self.num_entries:
            raise ValueError(
                f"shares sum to {total}, expected {self.num_entries}"
            )
        if any(count < 0 for count in shares.values()):
            raise ValueError("shares must be non-negative")
        entries: List[int] = []
        for bank in sorted(shares):
            entries.extend([bank] * shares[bank])
        self._entries = entries

    def set_balanced(self, enabled_banks: Sequence[int]) -> None:
        """Distribute entries evenly over ``enabled_banks`` (balanced policy)."""
        banks = list(enabled_banks)
        base = self.num_entries // len(banks)
        remainder = self.num_entries - base * len(banks)
        shares = {}
        for i, bank in enumerate(sorted(banks)):
            shares[bank] = base + (1 if i < remainder else 0)
        self.set_assignment(shares)


class BalancedMappingPolicy:
    """Conventional banking: accesses spread evenly over the enabled banks."""

    def __init__(self, num_entries: int = 32) -> None:
        self.num_entries = num_entries

    def compute_shares(
        self, enabled_banks: Sequence[int], temperatures: Dict[int, float]
    ) -> Dict[int, int]:
        """Return the per-bank entry counts (temperature is ignored)."""
        banks = sorted(enabled_banks)
        base = self.num_entries // len(banks)
        remainder = self.num_entries - base * len(banks)
        return {
            bank: base + (1 if i < remainder else 0) for i, bank in enumerate(banks)
        }


class ThermalAwareMappingPolicy:
    """The paper's biased mapping function.

    A bank's share of mapping-table entries (hence of accesses) is divided by
    two for every ``bias_threshold_celsius`` of difference between the bank's
    temperature and the average temperature of all enabled banks
    (Section 3.2.2: "the activity of a bank should be divided by a factor of
    two, for each 3 C of difference").
    """

    def __init__(self, num_entries: int = 32, bias_threshold_celsius: float = 3.0) -> None:
        if bias_threshold_celsius <= 0:
            raise ValueError("bias threshold must be positive")
        self.num_entries = num_entries
        self.bias_threshold_celsius = bias_threshold_celsius

    def compute_shares(
        self, enabled_banks: Sequence[int], temperatures: Dict[int, float]
    ) -> Dict[int, int]:
        """Compute the per-bank entry counts from current bank temperatures."""
        banks = sorted(enabled_banks)
        if not banks:
            raise ValueError("at least one bank must be enabled")
        temps = [temperatures[b] for b in banks]
        mean_temp = sum(temps) / len(temps)
        # Weight halves for every `threshold` degrees above the mean (and
        # doubles for every `threshold` degrees below it).
        weights = {
            bank: 2.0 ** (-(temperatures[bank] - mean_temp) / self.bias_threshold_celsius)
            for bank in banks
        }
        total_weight = sum(weights.values())
        # Largest-remainder apportionment of the table entries, but always at
        # least one entry per enabled bank so no bank is starved entirely.
        raw = {
            bank: self.num_entries * weights[bank] / total_weight for bank in banks
        }
        shares = {bank: max(1, int(math.floor(raw[bank]))) for bank in banks}
        assigned = sum(shares.values())
        remainders = sorted(
            banks, key=lambda b: raw[b] - math.floor(raw[b]), reverse=True
        )
        index = 0
        while assigned < self.num_entries:
            shares[remainders[index % len(remainders)]] += 1
            assigned += 1
            index += 1
        while assigned > self.num_entries:
            # Remove entries from the hottest banks first, never below one.
            for bank in sorted(banks, key=lambda b: temperatures[b], reverse=True):
                if shares[bank] > 1:
                    shares[bank] -= 1
                    assigned -= 1
                    break
            else:  # pragma: no cover - cannot happen with num_entries >= banks
                break
        return shares

"""Dynamic thermal management (DTM): the control side of temperature.

The paper's techniques are *layout* responses to heat — they move work
around the die (distributed rename/commit, bank hopping, thermal-aware
mapping).  This package adds the *control* responses every real processor
layers on top: fetch throttling, global clock gating and per-cluster DVFS,
driven by on-die sensors once per thermal interval.

Structure:

* :mod:`repro.dtm.controls` — the clamped actuators
  (:class:`DTMControls`), the voltage/frequency table
  (:class:`VFTable`/:class:`VFPoint`) and per-run accounting
  (:class:`DTMTelemetry`);
* :mod:`repro.dtm.policies` — the :class:`DTMPolicy` protocol, the four
  concrete policies plus the no-op baseline, and the name registry used by
  campaigns and the CLI (:func:`make_policy`).

The engine hook lives in :class:`repro.sim.engine.SimulationEngine`
(``dtm_policy=`` argument); campaigns sweep policies with
``Campaign(..., dtm_policies=(...))``; the CLI exposes the same axis as
``repro-campaign run --dtm ...``.  See ``docs/dtm.md`` for the model and a
runnable tutorial.
"""

from repro.dtm.controls import (
    DEFAULT_VF_TABLE,
    DTMControls,
    DTMTelemetry,
    FETCH_DUTY_PERIOD,
    VFPoint,
    VFTable,
)
from repro.dtm.policies import (
    ClockGatePolicy,
    DTMObservation,
    DTMPolicy,
    DVFSPolicy,
    FetchThrottlePolicy,
    HybridPolicy,
    NoDTMPolicy,
    POLICIES,
    available_policies,
    make_policy,
)

__all__ = [
    "DEFAULT_VF_TABLE",
    "FETCH_DUTY_PERIOD",
    "DTMControls",
    "DTMTelemetry",
    "VFPoint",
    "VFTable",
    "DTMObservation",
    "DTMPolicy",
    "NoDTMPolicy",
    "FetchThrottlePolicy",
    "ClockGatePolicy",
    "DVFSPolicy",
    "HybridPolicy",
    "POLICIES",
    "available_policies",
    "make_policy",
]

"""Actuators of the dynamic-thermal-management subsystem.

A :class:`DTMControls` object is the single mutable interface between a
:class:`~repro.dtm.policies.DTMPolicy` and the simulation engine.  Once per
thermal interval the engine hands the controls to the active policy, which
may

* reduce the fetch duty cycle (*fetch throttling*): fetch is gated for a
  fraction of each interval's cycles, spread evenly over a fixed period;
* gate the whole next interval (*global clock gating*): the processor runs
  zero cycles, dissipates zero dynamic power (clock distribution included)
  and only leaks, while wall-clock time still advances by one interval;
* move per-cluster voltage/frequency domains along a :class:`VFTable`
  (*DVFS*): each block's dynamic power is scaled by ``(V/V0)^2`` and its
  leakage by ``V/V0``, while the frequency factor is realized through the
  core's fetch duty — the engine rations fetch to the slowest selected
  frequency ratio, so the activity counts themselves (and with them every
  block's dynamic power) drop by ``f/f0``.  See ``docs/dtm.md`` for why the
  simulator's single global clock makes this the honest mapping.

Every actuator is *clamped*: a policy physically cannot push a block outside
the voltage/frequency table, request a zero fetch duty (that is what interval
gating is for) or a duty above 1.  The clamping lives here, in the actuator,
rather than in the policies, so the invariant holds for any policy —
including buggy or adversarial ones (``tests/test_dtm.py`` locks this).

All control state is laid out over the engine's
:class:`~repro.sim.block_index.BlockIndex`, so applying it on the power fast
path is pure vector arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.sim.block_index import BlockIndex


@dataclass(frozen=True)
class VFPoint:
    """One operating point of a voltage/frequency table.

    ``freq_ratio`` and ``vdd_ratio`` are fractions of the nominal clock
    frequency (``PowerConfig.frequency_ghz``, GHz) and nominal supply
    voltage (``PowerConfig.vdd``, V).  Both must lie in (0, 1]: the table
    never overclocks or overvolts.
    """

    freq_ratio: float
    vdd_ratio: float

    def __post_init__(self) -> None:
        if not 0.0 < self.freq_ratio <= 1.0:
            raise ValueError(f"freq_ratio {self.freq_ratio} outside (0, 1]")
        if not 0.0 < self.vdd_ratio <= 1.0:
            raise ValueError(f"vdd_ratio {self.vdd_ratio} outside (0, 1]")

    @property
    def dynamic_scale(self) -> float:
        """Dynamic-power multiplier at this point: ``(V/V0)^2``.

        The ``f/f0`` factor of ``P = a C V^2 f`` is *not* here: the engine
        realizes reduced frequency as a fetch-duty reduction, so the
        activity counts — and with them the access-rate term of dynamic
        power — already fall by ``f/f0``.  (The always-on idle/clock term
        keeps its nominal frequency, a deliberately conservative
        simplification.)
        """
        return self.vdd_ratio * self.vdd_ratio

    @property
    def leakage_scale(self) -> float:
        """Leakage-power multiplier at this point (first order: ``V/V0``)."""
        return self.vdd_ratio


class VFTable:
    """An ordered voltage/frequency table, fastest (nominal) point first.

    Step 0 is always the nominal point ``(1.0, 1.0)``; higher step indices
    are progressively slower/lower-voltage points.  Policies address the
    table only by step index, and :meth:`clamp_step` pins any requested index
    into the table's range — a block can never leave the table.
    """

    def __init__(self, points: Iterable[Tuple[float, float]]) -> None:
        self.points: Tuple[VFPoint, ...] = tuple(
            p if isinstance(p, VFPoint) else VFPoint(*p) for p in points
        )
        if not self.points:
            raise ValueError("a VF table needs at least one operating point")
        if self.points[0].freq_ratio != 1.0 or self.points[0].vdd_ratio != 1.0:
            raise ValueError("table step 0 must be the nominal point (1.0, 1.0)")
        ratios = [p.freq_ratio for p in self.points]
        if ratios != sorted(ratios, reverse=True):
            raise ValueError("table frequency ratios must be non-increasing")

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, step: int) -> VFPoint:
        return self.points[step]

    def clamp_step(self, step: int) -> int:
        """Pin a requested step index into ``[0, len(table) - 1]``."""
        return max(0, min(int(step), len(self.points) - 1))

    @property
    def min_freq_ratio(self) -> float:
        return self.points[-1].freq_ratio


#: Default five-point table (frequency ratio, voltage ratio), modelled on the
#: published Pentium M / XScale style DVFS ladders: voltage tracks frequency
#: sub-linearly, so each step down saves roughly ``f * V^2`` in dynamic power.
DEFAULT_VF_TABLE = VFTable(
    ((1.0, 1.0), (0.9, 0.96), (0.8, 0.92), (0.7, 0.88), (0.6, 0.84))
)

#: Cycles over which a fractional fetch duty is realized: a duty of d gates
#: fetch on ``round((1-d) * 16)`` of every 16 cycles, spread at the end of
#: the period.  16 is small enough that throttling is fine-grained relative
#: to any interval length and large enough to express 1/16-step duties.
FETCH_DUTY_PERIOD = 16


class DTMControls:
    """Mutable per-interval DTM actuator state over a :class:`BlockIndex`.

    The engine owns one instance per run; the active policy mutates it each
    interval through the clamped request methods, and the engine translates
    it into fetch gating, power scale vectors, or a fully clock-gated
    interval.

    Bit-exactness guard: while every control sits at nominal,
    :meth:`power_scales` returns ``(None, None)`` and
    :attr:`effective_fetch_on_cycles` equals the full period, so the engine
    takes the exact historical arithmetic path — a no-op policy is
    bit-identical to running with no DTM at all.
    """

    def __init__(self, index: BlockIndex, table: Optional[VFTable] = None) -> None:
        self.index = index
        self.table = table or DEFAULT_VF_TABLE
        #: Per-block DVFS step indices into :attr:`table`.
        self._steps = np.zeros(len(index), dtype=np.intp)
        #: Per-block dynamic-power multipliers (dimensionless, in (0, 1]).
        self.dynamic_scale = np.ones(len(index))
        #: Per-block leakage-power multipliers (dimensionless, in (0, 1]).
        self.leakage_scale = np.ones(len(index))
        #: Fetch slots enabled per :data:`FETCH_DUTY_PERIOD` cycles.
        self.fetch_on_cycles = FETCH_DUTY_PERIOD
        #: Whether the next interval is fully clock-gated (stop-go DTM).
        self.gate_interval = False
        #: Whether interval gating can be granted this interval (the engine
        #: denies it for the one interval whose cycles have already run).
        self._gating_allowed = True

    # ------------------------------------------------------------------
    # Requests (all clamped)
    # ------------------------------------------------------------------
    def request_fetch_duty(self, duty: float) -> float:
        """Request a fetch duty cycle; returns the granted (clamped) duty.

        The duty is quantized to multiples of ``1/FETCH_DUTY_PERIOD`` and
        clamped into ``[1/FETCH_DUTY_PERIOD, 1.0]`` — fetch can be slowed
        sixteen-fold but never stopped outright (that is interval gating's
        job, and it keeps the pipeline free of throttling deadlocks).
        """
        on = round(float(duty) * FETCH_DUTY_PERIOD)
        on = max(1, min(FETCH_DUTY_PERIOD, on))
        self.fetch_on_cycles = on
        return on / FETCH_DUTY_PERIOD

    def request_interval_gate(self) -> bool:
        """Request a fully clock-gated interval (dynamic power drops to 0 W).

        Returns whether the gate was granted.  The engine denies gating for
        the one interval whose cycles have already executed (interval 0,
        observed only after warm-up); stop-go controllers should count a
        stop burst only when the request is granted.
        """
        if not self._gating_allowed:
            return False
        self.gate_interval = True
        return True

    def request_step(self, blocks: Sequence[str], step: int) -> int:
        """Move the named blocks to VF-table step ``step`` (clamped).

        Returns the granted step index.  Unknown block names are ignored so
        policies can address e.g. physical trace-cache banks a floorplan
        does not instantiate.
        """
        step = self.table.clamp_step(step)
        positions = [
            self.index.position(name) for name in blocks if name in self.index
        ]
        if positions:
            point = self.table[step]
            self._steps[positions] = step
            self.dynamic_scale[positions] = point.dynamic_scale
            self.leakage_scale[positions] = point.leakage_scale
        return step

    # ------------------------------------------------------------------
    # Views the engine consumes
    # ------------------------------------------------------------------
    @property
    def fetch_duty(self) -> float:
        """Granted fetch duty cycle, in ``[1/FETCH_DUTY_PERIOD, 1.0]``."""
        return self.fetch_on_cycles / FETCH_DUTY_PERIOD

    @property
    def steps(self) -> np.ndarray:
        """Per-block VF-table step indices (read-only view)."""
        return self._steps

    def step_of(self, block: str) -> int:
        """Current VF-table step of one block."""
        return int(self._steps[self.index.position(block)])

    @property
    def min_freq_ratio(self) -> float:
        """The slowest selected frequency ratio across all domains.

        The reproduction's core is synchronous (one global clock), so the
        engine throttles core throughput — via the fetch duty — to the
        slowest domain's frequency (a conservative model, see
        ``docs/dtm.md``).  1.0 means every domain is at nominal.
        """
        slowest = int(self._steps.max())
        return self.table[slowest].freq_ratio

    @property
    def effective_fetch_on_cycles(self) -> int:
        """Fetch slots per period after combining throttling and DVFS.

        The stricter of the policy-requested fetch duty and the slowest
        DVFS frequency ratio wins: a core whose slowest domain runs at 60%
        frequency cannot retire work faster than 60% of nominal.
        """
        freq_on = max(1, round(self.min_freq_ratio * FETCH_DUTY_PERIOD))
        return min(self.fetch_on_cycles, freq_on)

    def power_scales(self) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """The (dynamic, leakage) multiplier vectors, or ``(None, None)``.

        Returns ``None`` vectors while every block sits at the nominal step,
        so the engine's hot path can skip the multiplications entirely (and
        stay bit-identical to the pre-DTM pipeline).
        """
        if not self._steps.any():
            return None, None
        return self.dynamic_scale, self.leakage_scale

    def begin_interval(self, gating_allowed: bool = True) -> None:
        """Reset the *transient* actuators before the policy runs.

        Interval gating is a one-shot request; fetch duty and DVFS steps are
        level-triggered and persist until the policy changes them.
        ``gating_allowed`` is ``False`` when the interval's cycles have
        already run (the post-warm-up observation before interval 0), which
        makes :meth:`request_interval_gate` deny rather than silently drop.
        """
        self.gate_interval = False
        self._gating_allowed = gating_allowed

    def describe(self) -> Dict[str, object]:
        """JSON-able snapshot (used by telemetry and debugging)."""
        return {
            "fetch_duty": self.fetch_duty,
            "gate_interval": self.gate_interval,
            "max_step": int(self._steps.max()),
            "min_freq_ratio": self.min_freq_ratio,
        }


class DTMTelemetry:
    """Per-run accounting of what the DTM actuators actually did.

    Folded into :attr:`repro.sim.results.SimulationResult.dtm` at the end of
    a run and serialized with schema version 3.  All ratios are
    dimensionless fractions; times are seconds of simulated wall-clock.
    """

    def __init__(self, table: VFTable) -> None:
        self.table = table
        self.intervals = 0
        self.gated_intervals = 0
        self.throttled_intervals = 0
        self.duty_sum = 0.0
        #: Interval-weighted residency per VF step: ``residency[s]`` sums the
        #: fraction of blocks at step ``s`` over all intervals.
        self._step_residency = np.zeros(len(table))
        self._freq_ratio_sum = 0.0

    def record_interval(
        self, controls: DTMControls, gated: bool, fetch_actuated: bool = True
    ) -> None:
        """Account one interval's actuator state.

        ``fetch_actuated`` is ``False`` for the one interval whose cycles
        ran *before* the policy could gate fetch (interval 0, observed only
        after warm-up): its duty and frequency are charged at nominal so the
        telemetry reflects the timing that actually happened, while the VF
        residency still records the voltage scaling that did apply.
        """
        self.intervals += 1
        effective_duty = (
            controls.effective_fetch_on_cycles / FETCH_DUTY_PERIOD
            if fetch_actuated
            else 1.0
        )
        if gated:
            self.gated_intervals += 1
            self.duty_sum += 0.0
        else:
            self.duty_sum += effective_duty
            if effective_duty < 1.0:
                self.throttled_intervals += 1
        steps = controls.steps
        counts = np.bincount(steps, minlength=len(self.table))
        self._step_residency += counts / len(steps)
        if gated:
            # A clock-gated interval executes at zero effective frequency —
            # consistent with charging it zero fetch duty above.
            self._freq_ratio_sum += 0.0
        else:
            self._freq_ratio_sum += controls.min_freq_ratio if fetch_actuated else 1.0

    # ------------------------------------------------------------------
    @property
    def throttle_ratio(self) -> float:
        """Fraction of fetch capacity removed over the run (0 = none).

        Counts fully gated intervals as zero fetch duty, so a pure stop-go
        policy also reports a non-zero throttle ratio.
        """
        if self.intervals == 0:
            return 0.0
        return 1.0 - self.duty_sum / self.intervals

    @property
    def mean_freq_ratio(self) -> float:
        """Mean effective core frequency ratio over the run (1.0 = nominal).

        Fully clock-gated intervals count as zero frequency, so a pure
        stop-go run reports the fraction of nominal throughput it actually
        delivered, mirroring how :attr:`throttle_ratio` charges them.
        """
        if self.intervals == 0:
            return 1.0
        return self._freq_ratio_sum / self.intervals

    def dvfs_residency(self) -> Dict[str, float]:
        """Fraction of block-intervals spent at each VF step.

        Keyed by the step's frequency ratio rendered as a string (JSON
        mappings need string keys), e.g. ``{"1": 0.85, "0.8": 0.15}``.
        Steps that share a frequency ratio (a table may pair one frequency
        with several voltages) have their fractions summed under that key.
        """
        if self.intervals == 0:
            return {"1": 1.0}
        fractions = self._step_residency / self.intervals
        residency: Dict[str, float] = {}
        for s in range(len(self.table)):
            if fractions[s] > 0.0:
                key = f"{self.table[s].freq_ratio:g}"
                residency[key] = residency.get(key, 0.0) + float(fractions[s])
        return residency

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary stored into ``SimulationResult.dtm``."""
        return {
            "intervals": self.intervals,
            "gated_intervals": self.gated_intervals,
            "throttled_intervals": self.throttled_intervals,
            "throttle_ratio": self.throttle_ratio,
            "mean_freq_ratio": self.mean_freq_ratio,
            "dvfs_residency": self.dvfs_residency(),
        }

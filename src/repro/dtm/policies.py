"""Dynamic thermal management policies.

A :class:`DTMPolicy` is the *control* side of thermal management: where the
paper's techniques (distributed rename/commit, bank hopping, thermal-aware
mapping) reshape the heat's spatial layout, a DTM policy reacts to on-die
sensor readings every thermal interval by throttling fetch, gating the clock
or walking voltage/frequency domains down a :class:`~repro.dtm.controls.VFTable`.

The engine drives the protocol once per interval, *before* simulating it::

    policy.bind(block_index, config, controls)        # once per run
    policy.apply(observation, controls)               # once per interval

``observation.temperatures`` holds the previous interval's sensor-quantized
block temperatures (degrees Celsius, block-index order); ``controls`` is the
clamped actuator object — policies cannot push any block outside the VF
table or stop fetch outright, no matter what they request.

Concrete policies:

* :class:`NoDTMPolicy` — never touches the controls; bit-identical to
  running without DTM (locked by the golden-metric suite).
* :class:`FetchThrottlePolicy` — sensor-triggered fetch duty reduction with
  hysteresis (Brooks & Martonosi style toggling).
* :class:`ClockGatePolicy` — global stop-go: fully clock-gates intervals
  while any sensor reads at or above the trigger.
* :class:`DVFSPolicy` — per-cluster DVFS: each backend cluster is a
  voltage/frequency domain stepped down when its hottest sensor exceeds the
  target and back up when it cools.
* :class:`HybridPolicy` — per-cluster DVFS layered under an emergency fetch
  throttle, designed to ride on top of the paper's thermal-aware mapping and
  bank hopping (use it with e.g. the ``hopping_biasing`` preset).

Policies are registered by name in :data:`POLICIES` and instantiated from
compact spec strings (``"dvfs"``, ``"fetch_throttle:trigger=80,duty=0.5"``)
via :func:`make_policy`, which is what the campaign layer stores in a
:class:`~repro.campaign.spec.RunSpec` so cells stay picklable and
content-hashable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dtm.controls import DEFAULT_VF_TABLE, DTMControls, VFTable
from repro.sim import blocks
from repro.sim.block_index import BlockIndex
from repro.sim.config import ProcessorConfig


@dataclass
class DTMObservation:
    """What a policy sees at the start of one thermal interval.

    Attributes
    ----------
    interval_index:
        Zero-based index of the interval about to be simulated.
    temperatures:
        Sensor readings per block (degrees Celsius), in ``index`` order,
        taken at the end of the previous interval and quantized to the
        sensor resolution (0.5 C by default).
    index:
        The run's :class:`~repro.sim.block_index.BlockIndex`; position ``i``
        of ``temperatures`` is block ``index.names[i]``.
    """

    interval_index: int
    temperatures: np.ndarray
    index: BlockIndex

    def max_temperature(self) -> float:
        """Hottest sensor reading on the die (degrees Celsius)."""
        return float(self.temperatures.max())

    def max_over(self, positions: np.ndarray) -> float:
        """Hottest reading over a set of block positions (degrees Celsius)."""
        return float(self.temperatures[positions].max())


class DTMPolicy:
    """Base class / protocol of dynamic thermal management policies.

    Subclasses override :meth:`apply`; :meth:`bind` may be extended to
    precompute block positions (always call ``super().bind``).  ``name`` is
    the canonical spec string the policy was built from — it travels into
    :class:`~repro.campaign.spec.RunSpec` provenance and result files.

    ``table`` optionally declares the voltage/frequency table the policy
    wants to operate: the engine builds its
    :class:`~repro.dtm.controls.DTMControls` from it (DVFS and hybrid
    policies set it from their ``table=`` parameter), falling back to
    :data:`~repro.dtm.controls.DEFAULT_VF_TABLE` when ``None``.
    """

    #: VF table the engine should build the run's controls with, if any.
    table: Optional[VFTable] = None

    #: Whether the policy actuates on sensor readings, i.e. couples
    #: temperatures back into the *timing* of the run.  Feedback-bearing
    #: policies are excluded from the campaign layer's activity-trace replay
    #: (see :func:`repro.sim.activity_trace.timing_feedback_reason`): their
    #: instruction stream depends on the physics parameters being swept.
    #: Every real policy reacts to temperatures; only the explicit no-op
    #: overrides this to ``False``.
    feedback: bool = True

    def __init__(self, name: str) -> None:
        self.name = name

    def bind(
        self, index: BlockIndex, config: ProcessorConfig, controls: DTMControls
    ) -> None:
        """Prepare for one run: resolve block positions, reset controller state.

        Called once per run by the engine.  Subclasses with internal
        controller state (hysteresis latches, stop counters, step ladders)
        must reset it here so one policy object can be reused across runs.
        """
        self.index = index
        self.config = config

    def apply(self, observation: DTMObservation, controls: DTMControls) -> None:
        """Mutate ``controls`` for the interval about to be simulated."""
        raise NotImplementedError


class NoDTMPolicy(DTMPolicy):
    """The do-nothing policy: leaves every actuator at nominal.

    Running an engine with this policy attached is bit-identical to running
    with no policy at all (``tests/test_dtm.py`` compares both against the
    golden fixtures), which makes it the natural baseline of every
    policy x scenario sweep.
    """

    feedback = False

    def __init__(self) -> None:
        super().__init__("none")

    def apply(self, observation: DTMObservation, controls: DTMControls) -> None:
        return None


class FetchThrottlePolicy(DTMPolicy):
    """Sensor-triggered fetch throttling with hysteresis.

    When any sensor reads at or above ``trigger`` (degrees Celsius) the
    fetch duty cycle drops to ``duty``; it returns to 1.0 once the hottest
    sensor cools below ``trigger - hysteresis``.  Fewer fetched micro-ops
    mean fewer accesses everywhere downstream, so dynamic power falls
    chip-wide at the cost of IPC.
    """

    def __init__(
        self, trigger: float = 90.0, duty: float = 0.125, hysteresis: float = 2.0
    ) -> None:
        super().__init__(f"fetch_throttle:trigger={trigger:g},duty={duty:g}")
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        self.trigger_celsius = float(trigger)
        self.duty = float(duty)
        self.hysteresis_celsius = float(hysteresis)
        self._engaged = False

    def bind(
        self, index: BlockIndex, config: ProcessorConfig, controls: DTMControls
    ) -> None:
        super().bind(index, config, controls)
        self._engaged = False

    def apply(self, observation: DTMObservation, controls: DTMControls) -> None:
        hottest = observation.max_temperature()
        if hottest >= self.trigger_celsius:
            self._engaged = True
        elif hottest < self.trigger_celsius - self.hysteresis_celsius:
            self._engaged = False
        controls.request_fetch_duty(self.duty if self._engaged else 1.0)


class ClockGatePolicy(DTMPolicy):
    """Global stop-go clock gating with a bounded stop duration.

    While any sensor reads at or above ``trigger`` (degrees Celsius), whole
    thermal intervals are clock-gated: the processor executes nothing and
    dissipates only leakage, so the die cools at the fastest rate the
    package allows.  The crudest DTM mechanism — and the upper bound on both
    temperature reduction and performance loss per engaged interval.

    ``max_stop_intervals`` bounds each stop burst, as real stop-go
    controllers do: after that many consecutive gated intervals one interval
    always runs.  The bound matters beyond realism — clock gating cannot
    remove *leakage*, and on virus-class workloads the leakage-only
    equilibrium can sit above the trigger (leakage runaway), where an
    unbounded controller would stop forever without ever cooling below it.
    """

    def __init__(self, trigger: float = 95.0, max_stop_intervals: float = 8) -> None:
        super().__init__(f"clock_gate:trigger={trigger:g}")
        if max_stop_intervals < 1:
            raise ValueError("max_stop_intervals must be at least 1")
        self.trigger_celsius = float(trigger)
        self.max_stop_intervals = int(max_stop_intervals)
        self._stopped = 0

    def bind(
        self, index: BlockIndex, config: ProcessorConfig, controls: DTMControls
    ) -> None:
        super().bind(index, config, controls)
        self._stopped = 0

    def apply(self, observation: DTMObservation, controls: DTMControls) -> None:
        too_hot = observation.max_temperature() >= self.trigger_celsius
        if too_hot and self._stopped < self.max_stop_intervals:
            # Count the burst only when the gate is granted: the engine
            # denies it for the post-warm-up interval whose cycles already
            # ran, and that denial must not consume a stop slot.
            if controls.request_interval_gate():
                self._stopped += 1
        else:
            self._stopped = 0


class DVFSPolicy(DTMPolicy):
    """Per-cluster dynamic voltage/frequency scaling.

    Each backend cluster is one voltage/frequency domain; the frontend and
    the UL2 stay at nominal (per-cluster DVFS targets the paper's quad-
    cluster backend).  Every interval, a domain whose hottest sensor reads
    at or above ``target`` steps one entry down its
    :class:`~repro.dtm.controls.VFTable`; a domain cooler than
    ``target - hysteresis`` steps back up.  Voltage scaling multiplies the
    domain's power per the table (``(V/V0)^2`` dynamic, ``V/V0`` leakage);
    frequency scaling is realized as a core-wide fetch-duty reduction to the
    slowest selected ratio (the simulated core has one global clock), which
    lowers activity — and with it dynamic power — everywhere.
    """

    def __init__(
        self,
        target: float = 88.0,
        hysteresis: float = 2.0,
        table: Optional[VFTable] = None,
    ) -> None:
        super().__init__(f"dvfs:target={target:g}")
        self.target_celsius = float(target)
        self.hysteresis_celsius = float(hysteresis)
        self.table = table or DEFAULT_VF_TABLE
        self._domains: List[Tuple[Tuple[str, ...], np.ndarray]] = []
        self._steps: List[int] = []

    def bind(
        self, index: BlockIndex, config: ProcessorConfig, controls: DTMControls
    ) -> None:
        super().bind(index, config, controls)
        self._domains = []
        self._steps = []
        for cluster in range(config.backend.num_clusters):
            names = tuple(
                name
                for name in blocks.cluster_blocks(config, cluster)
                if name in index
            )
            if not names:
                continue
            self._domains.append((names, index.positions(names)))
            self._steps.append(0)

    def apply(self, observation: DTMObservation, controls: DTMControls) -> None:
        for d, (names, positions) in enumerate(self._domains):
            hottest = observation.max_over(positions)
            step = self._steps[d]
            if hottest >= self.target_celsius:
                step += 1
            elif hottest < self.target_celsius - self.hysteresis_celsius:
                step -= 1
            # The controls clamp into the table; remember what was granted,
            # not what was asked, so the controller cannot wind up.
            self._steps[d] = controls.request_step(names, step)


class HybridPolicy(DTMPolicy):
    """Per-cluster DVFS layered under an emergency fetch throttle.

    The layering mirrors how the paper's techniques compose: the *layout*
    mechanisms (thermal-aware mapping, bank hopping — enabled by the
    processor configuration, e.g. the ``hopping_biasing`` preset) spread
    heat continuously; this policy adds per-cluster DVFS around ``target``
    and, should the die still approach ``emergency`` (degrees Celsius), cuts
    the fetch duty as a backstop.  Sub-policies act on the same clamped
    controls, so the most restrictive request wins.
    """

    def __init__(
        self,
        target: float = 88.0,
        emergency: float = 95.0,
        duty: float = 0.125,
        table: Optional[VFTable] = None,
    ) -> None:
        super().__init__(f"hybrid:target={target:g},emergency={emergency:g}")
        self.dvfs = DVFSPolicy(target=target, table=table)
        self.table = self.dvfs.table
        self.throttle = FetchThrottlePolicy(trigger=emergency, duty=duty)

    def bind(
        self, index: BlockIndex, config: ProcessorConfig, controls: DTMControls
    ) -> None:
        super().bind(index, config, controls)
        self.dvfs.bind(index, config, controls)
        self.throttle.bind(index, config, controls)

    def apply(self, observation: DTMObservation, controls: DTMControls) -> None:
        self.dvfs.apply(observation, controls)
        self.throttle.apply(observation, controls)


# ----------------------------------------------------------------------
# Registry: names -> factories, and compact spec-string parsing
# ----------------------------------------------------------------------
#: Named policy factories.  Keys are the names accepted by
#: :func:`make_policy`, the campaign layer and the ``repro-campaign`` CLI.
POLICIES: Dict[str, Callable[..., DTMPolicy]] = {
    "none": NoDTMPolicy,
    "fetch_throttle": FetchThrottlePolicy,
    "clock_gate": ClockGatePolicy,
    "dvfs": DVFSPolicy,
    "hybrid": HybridPolicy,
}


def available_policies() -> Tuple[str, ...]:
    """Names of every registered DTM policy, in registry order."""
    return tuple(POLICIES)


def _parse_value(text: str, kind: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"{kind} parameter {text!r} is not a number") from None


def make_policy_from_registry(spec: str, registry: Mapping[str, Callable], kind: str):
    """Shared spec-string parser behind :func:`make_policy` (and the chip
    layer's ``make_chip_policy``): ``name[:key=value,...]`` against a named
    factory registry, with every failure reported as a one-line
    :class:`ValueError` the CLI can surface without a traceback.
    """
    name, _, params = spec.partition(":")
    name = name.strip()
    try:
        factory = registry[name]
    except KeyError:
        valid = ", ".join(registry)
        raise ValueError(f"unknown {kind} {name!r}; valid names: {valid}") from None
    kwargs: Dict[str, float] = {}
    if params:
        for item in params.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"malformed {kind} parameter {item!r} in {spec!r}")
            kwargs[key.strip()] = _parse_value(value.strip(), kind)
    try:
        return factory(**kwargs)
    except TypeError as error:
        raise ValueError(f"invalid parameters for {kind} {name!r}: {error}") from None


def make_policy(spec: str) -> DTMPolicy:
    """Instantiate a policy from a compact spec string.

    ``spec`` is a registered name, optionally followed by ``:`` and
    comma-separated ``key=value`` overrides for the factory's keyword
    arguments (values are parsed as numbers)::

        make_policy("dvfs")
        make_policy("fetch_throttle:trigger=80,duty=0.25")

    Raises :class:`ValueError` for unknown names or malformed parameters.
    The spec string is what campaign cells carry (it is hashable, picklable
    and cache-key friendly); the policy's ``name`` records the canonical
    form of its actual parameters.
    """
    return make_policy_from_registry(spec, POLICIES, "DTM policy")

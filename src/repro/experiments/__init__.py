"""Experiment drivers that regenerate every figure of the paper's evaluation.

Each ``figXX_*`` module exposes a ``run_*`` function that simulates the
required configurations over a set of SPEC2000-like workloads and returns a
structured result with a ``format_table()`` method printing the same rows the
paper's figure reports, next to the paper's reference values.

Every driver runs through the declarative :mod:`repro.campaign` layer: it
builds one :class:`~repro.campaign.Campaign` for all of its configurations
and accepts optional ``executor`` (serial or process-pool) and ``cache``
(content-keyed on-disk result cache) arguments, so figures can be
regenerated in parallel and re-runs skip simulation entirely.

The experiments are scaled down (shorter traces, proportionally shorter
thermal / hopping / remapping intervals) so they run in minutes of pure
Python; see DESIGN.md for the substitution rationale.
"""

from repro.campaign import (
    ConfigurationSummary,
    ExperimentSettings,
    run_configuration,
    summarize,
    summarize_many,
)
from repro.experiments.fig01_baseline_temperature import run_fig01, Figure1Result
from repro.experiments.fig12_distributed_rename_commit import run_fig12, Figure12Result
from repro.experiments.fig13_trace_cache import run_fig13, Figure13Result
from repro.experiments.fig14_combined import run_fig14, Figure14Result
from repro.experiments.fig_dtm_comparison import (
    DTMComparisonResult,
    dtm_settings,
    run_dtm_comparison,
)
from repro.experiments.fig_multicore_scaling import (
    MulticoreScalingResult,
    run_multicore_scaling,
)
from repro.experiments.floorplans import describe_floorplans, floorplan_report_for
from repro.experiments.ablations import (
    run_hop_interval_ablation,
    run_bias_threshold_ablation,
    run_partition_count_ablation,
    run_steering_policy_ablation,
)

__all__ = [
    "ExperimentSettings",
    "ConfigurationSummary",
    "run_configuration",
    "summarize",
    "summarize_many",
    "run_fig01",
    "Figure1Result",
    "run_fig12",
    "Figure12Result",
    "run_fig13",
    "Figure13Result",
    "run_fig14",
    "Figure14Result",
    "run_dtm_comparison",
    "DTMComparisonResult",
    "dtm_settings",
    "run_multicore_scaling",
    "MulticoreScalingResult",
    "describe_floorplans",
    "floorplan_report_for",
    "run_hop_interval_ablation",
    "run_bias_threshold_ablation",
    "run_partition_count_ablation",
    "run_steering_policy_ablation",
]

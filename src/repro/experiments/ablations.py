"""Ablations of the design choices called out in DESIGN.md.

These experiments go beyond the paper's figures and quantify the sensitivity
of the proposed techniques to their main knobs:

* the bank-hop interval (the paper uses 10 M cycles — one thermal interval);
* the biased-mapping halving threshold (the paper uses 3 C);
* the number of frontend partitions (the paper uses 2);
* the steering policy (the paper uses dependence-based steering).

Each sweep is expressed as one :class:`~repro.campaign.Campaign` (the swept
variants are derived with the fluent
:class:`~repro.campaign.ConfigBuilder`), so a parallel executor fans the
whole sweep out at once and a result cache makes re-runs free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign import (
    Campaign,
    ConfigBuilder,
    Executor,
    ResultCache,
    run_campaign,
)
from repro.core.presets import (
    bank_hopping_biasing_config,
    bank_hopping_config,
    baseline_config,
    distributed_rename_commit_config,
)
from repro.experiments.reporting import format_value_table
from repro.campaign import ExperimentSettings
from repro.sim.config import ProcessorConfig, SteeringPolicy


@dataclass
class AblationResult:
    """Sweep outcome: one row per swept value."""

    name: str
    #: rows[swept value] -> {"metric name": value}
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format_table(self) -> str:
        columns = []
        for row in self.rows.values():
            for column in row:
                if column not in columns:
                    columns.append(column)
        return format_value_table(f"Ablation: {self.name}", self.rows, columns, precision=3)


def _run_sweep(
    name: str,
    labelled_configs: Sequence[Tuple[str, ProcessorConfig]],
    settings: ExperimentSettings,
    executor: Optional[Executor],
    cache: Optional[ResultCache],
    include_baseline: bool = True,
):
    """Run baseline + swept variants as one campaign; returns the outcome."""
    configs: List[ProcessorConfig] = [baseline_config()] if include_baseline else []
    configs.extend(config for _, config in labelled_configs)
    campaign = Campaign(configs, settings, name=f"ablation-{name}")
    return run_campaign(campaign, executor, cache)


def run_hop_interval_ablation(
    settings: ExperimentSettings,
    multipliers: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> AblationResult:
    """Sweep the bank-hop interval relative to the thermal interval."""
    interval = settings.resolved_interval_cycles()
    labelled = [
        (
            f"{multiplier:g}x",
            ConfigBuilder.from_config(bank_hopping_config())
            .trace_cache(
                hop_interval_cycles=max(1, int(interval * multiplier)),
                remap_interval_cycles=interval,
            )
            .thermal(interval_cycles=interval)
            .named(f"hop_x{multiplier:g}")
            .build(),
        )
        for multiplier in multipliers
    ]
    outcome = _run_sweep("hop-interval", labelled, settings, executor, cache)
    baseline = outcome.summaries["baseline"]
    result = AblationResult(name="bank-hop interval (x thermal interval)")
    for label, config in labelled:
        summary = outcome.summaries[config.name]
        reductions = summary.mean_reductions_vs(baseline, "TraceCache")
        result.rows[label] = {
            "TC AbsMax reduction": reductions["AbsMax"],
            "TC Average reduction": reductions["Average"],
            "slowdown": summary.mean_slowdown_vs(baseline),
            "hit-rate loss": baseline.mean_trace_cache_hit_rate()
            - summary.mean_trace_cache_hit_rate(),
        }
    return result


def run_bias_threshold_ablation(
    settings: ExperimentSettings,
    thresholds_celsius: Sequence[float] = (1.5, 3.0, 6.0),
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> AblationResult:
    """Sweep the temperature difference that halves a bank's mapping share."""
    labelled = [
        (
            f"{threshold:g} C",
            ConfigBuilder.from_config(bank_hopping_biasing_config())
            .biased_mapping(threshold_celsius=threshold)
            .named(f"bias_{threshold:g}C")
            .build(),
        )
        for threshold in thresholds_celsius
    ]
    outcome = _run_sweep("bias-threshold", labelled, settings, executor, cache)
    baseline = outcome.summaries["baseline"]
    result = AblationResult(name="biased-mapping halving threshold (C)")
    for label, config in labelled:
        summary = outcome.summaries[config.name]
        reductions = summary.mean_reductions_vs(baseline, "TraceCache")
        result.rows[label] = {
            "TC AbsMax reduction": reductions["AbsMax"],
            "TC Average reduction": reductions["Average"],
            "slowdown": summary.mean_slowdown_vs(baseline),
        }
    return result


def run_partition_count_ablation(
    settings: ExperimentSettings,
    partition_counts: Sequence[int] = (2, 4),
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> AblationResult:
    """Sweep the number of frontend partitions of the distributed rename/commit."""
    labelled = [
        (
            str(count),
            ConfigBuilder.from_config(distributed_rename_commit_config(num_frontends=count))
            .named(f"distributed_rc_{count}")
            .build(),
        )
        for count in partition_counts
    ]
    outcome = _run_sweep("partition-count", labelled, settings, executor, cache)
    baseline = outcome.summaries["baseline"]
    result = AblationResult(name="frontend partitions")
    for label, config in labelled:
        summary = outcome.summaries[config.name]
        rob = summary.mean_reductions_vs(baseline, "ReorderBuffer")
        rat = summary.mean_reductions_vs(baseline, "RenameTable")
        result.rows[label] = {
            "ROB Average reduction": rob["Average"],
            "RAT Average reduction": rat["Average"],
            "slowdown": summary.mean_slowdown_vs(baseline),
            "inter-frontend copy requests": sum(
                r.stats.copy_requests_between_frontends for r in summary.results.values()
            )
            / len(summary.results),
        }
    return result


def run_steering_policy_ablation(
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> AblationResult:
    """Compare steering policies on the baseline (temperature and IPC)."""
    policies = (SteeringPolicy.DEPENDENCE, SteeringPolicy.LOAD_BALANCE, SteeringPolicy.ROUND_ROBIN)
    labelled = [
        (
            policy.value,
            ConfigBuilder.baseline()
            .steering(policy)
            .named(f"steer_{policy.value}")
            .build(),
        )
        for policy in policies
    ]
    outcome = _run_sweep(
        "steering-policy", labelled, settings, executor, cache, include_baseline=False
    )
    result = AblationResult(name="steering policy")
    # Slowdowns are reported against the paper's default policy (the first).
    reference = outcome.summaries[labelled[0][1].name]
    for label, config in labelled:
        summary = outcome.summaries[config.name]
        copies = sum(
            r.stats.copy_uops_generated for r in summary.results.values()
        ) / len(summary.results)
        result.rows[label] = {
            "IPC": summary.mean_ipc(),
            "Frontend Average (C)": summary.mean_metric("Frontend", "Average"),
            "Backend Average (C)": summary.mean_metric("Backend", "Average"),
            "copies per benchmark": copies,
            "slowdown vs dependence": summary.mean_slowdown_vs(reference),
        }
    return result

"""Ablations of the design choices called out in DESIGN.md.

These experiments go beyond the paper's figures and quantify the sensitivity
of the proposed techniques to their main knobs:

* the bank-hop interval (the paper uses 10 M cycles — one thermal interval);
* the biased-mapping halving threshold (the paper uses 3 C);
* the number of frontend partitions (the paper uses 2);
* the steering policy (the paper uses dependence-based steering).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Sequence

from repro.core.presets import (
    bank_hopping_biasing_config,
    bank_hopping_config,
    baseline_config,
    distributed_rename_commit_config,
)
from repro.experiments.reporting import format_value_table
from repro.experiments.runner import ExperimentSettings, summarize
from repro.sim.config import SteeringPolicy


@dataclass
class AblationResult:
    """Sweep outcome: one row per swept value."""

    name: str
    #: rows[swept value] -> {"metric name": value}
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format_table(self) -> str:
        columns = []
        for row in self.rows.values():
            for column in row:
                if column not in columns:
                    columns.append(column)
        return format_value_table(f"Ablation: {self.name}", self.rows, columns, precision=3)


def run_hop_interval_ablation(
    settings: ExperimentSettings,
    multipliers: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
) -> AblationResult:
    """Sweep the bank-hop interval relative to the thermal interval."""
    baseline = summarize(baseline_config(), settings)
    result = AblationResult(name="bank-hop interval (x thermal interval)")
    interval = settings.resolved_interval_cycles()
    for multiplier in multipliers:
        config = bank_hopping_config()
        tc = replace(
            config.frontend.trace_cache,
            hop_interval_cycles=max(1, int(interval * multiplier)),
            remap_interval_cycles=interval,
        )
        config = replace(
            config,
            frontend=replace(config.frontend, trace_cache=tc),
            thermal=replace(config.thermal, interval_cycles=interval),
            name=f"hop_x{multiplier:g}",
        )
        summary = summarize(config, settings)
        reductions = summary.mean_reductions_vs(baseline, "TraceCache")
        result.rows[f"{multiplier:g}x"] = {
            "TC AbsMax reduction": reductions["AbsMax"],
            "TC Average reduction": reductions["Average"],
            "slowdown": summary.mean_slowdown_vs(baseline),
            "hit-rate loss": baseline.mean_trace_cache_hit_rate()
            - summary.mean_trace_cache_hit_rate(),
        }
    return result


def run_bias_threshold_ablation(
    settings: ExperimentSettings,
    thresholds_celsius: Sequence[float] = (1.5, 3.0, 6.0),
) -> AblationResult:
    """Sweep the temperature difference that halves a bank's mapping share."""
    baseline = summarize(baseline_config(), settings)
    result = AblationResult(name="biased-mapping halving threshold (C)")
    for threshold in thresholds_celsius:
        config = bank_hopping_biasing_config()
        tc = replace(config.frontend.trace_cache, bias_threshold_celsius=threshold)
        config = replace(
            config,
            frontend=replace(config.frontend, trace_cache=tc),
            name=f"bias_{threshold:g}C",
        )
        summary = summarize(config, settings)
        reductions = summary.mean_reductions_vs(baseline, "TraceCache")
        result.rows[f"{threshold:g} C"] = {
            "TC AbsMax reduction": reductions["AbsMax"],
            "TC Average reduction": reductions["Average"],
            "slowdown": summary.mean_slowdown_vs(baseline),
        }
    return result


def run_partition_count_ablation(
    settings: ExperimentSettings,
    partition_counts: Sequence[int] = (2, 4),
) -> AblationResult:
    """Sweep the number of frontend partitions of the distributed rename/commit."""
    baseline = summarize(baseline_config(), settings)
    result = AblationResult(name="frontend partitions")
    for count in partition_counts:
        config = distributed_rename_commit_config(num_frontends=count)
        config = config.renamed(f"distributed_rc_{count}")
        summary = summarize(config, settings)
        rob = summary.mean_reductions_vs(baseline, "ReorderBuffer")
        rat = summary.mean_reductions_vs(baseline, "RenameTable")
        result.rows[str(count)] = {
            "ROB Average reduction": rob["Average"],
            "RAT Average reduction": rat["Average"],
            "slowdown": summary.mean_slowdown_vs(baseline),
            "inter-frontend copy requests": sum(
                r.stats.copy_requests_between_frontends for r in summary.results.values()
            )
            / len(summary.results),
        }
    return result


def run_steering_policy_ablation(settings: ExperimentSettings) -> AblationResult:
    """Compare steering policies on the baseline (temperature and IPC)."""
    result = AblationResult(name="steering policy")
    reference = None
    for policy in (SteeringPolicy.DEPENDENCE, SteeringPolicy.LOAD_BALANCE, SteeringPolicy.ROUND_ROBIN):
        config = replace(baseline_config(), steering_policy=policy, name=f"steer_{policy.value}")
        summary = summarize(config, settings)
        if reference is None:
            reference = summary
        copies = sum(
            r.stats.copy_uops_generated for r in summary.results.values()
        ) / len(summary.results)
        result.rows[policy.value] = {
            "IPC": summary.mean_ipc(),
            "Frontend Average (C)": summary.mean_metric("Frontend", "Average"),
            "Backend Average (C)": summary.mean_metric("Backend", "Average"),
            "copies per benchmark": copies,
            "slowdown vs dependence": summary.mean_slowdown_vs(reference),
        }
    return result

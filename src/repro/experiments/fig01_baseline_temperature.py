"""Figure 1: temperature of the different processor elements (baseline).

The paper's Figure 1 shows the peak and average temperature increase over
ambient of the whole processor, the frontend, the backend and the UL2, for
the baseline clustered architecture averaged over the 26 SPEC2000
applications.  The frontend exhibits some of the highest temperatures
(about 62 C over ambient at the peak, 25 C on average in the paper), which is
the motivation for distributing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.campaign import Campaign, Executor, ResultCache, run_campaign
from repro.core.presets import baseline_config
from repro.experiments.reporting import format_value_table
from repro.campaign import ConfigurationSummary, ExperimentSettings

#: Approximate values read off the paper's Figure 1 (increase over ambient, C).
PAPER_FIGURE1 = {
    "Processor": {"Peak": 62.0, "Average": 26.0},
    "Frontend": {"Peak": 62.0, "Average": 25.0},
    "Backend": {"Peak": 53.0, "Average": 24.0},
    "UL2": {"Peak": 23.0, "Average": 18.0},
}

#: The element groups of Figure 1, in the paper's order.
FIGURE1_GROUPS = ("Processor", "Frontend", "Backend", "UL2")


@dataclass
class Figure1Result:
    """Measured peak/average temperature increase over ambient per element."""

    summary: ConfigurationSummary
    values: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format_table(self) -> str:
        rows = {}
        for group in FIGURE1_GROUPS:
            rows[group] = {
                "Peak (C)": self.values[group]["Peak"],
                "paper Peak": PAPER_FIGURE1[group]["Peak"],
                "Average (C)": self.values[group]["Average"],
                "paper Avg": PAPER_FIGURE1[group]["Average"],
            }
        return format_value_table(
            "Figure 1: temperature increase over ambient (45 C), baseline",
            rows,
            columns=("Peak (C)", "paper Peak", "Average (C)", "paper Avg"),
        )

    def frontend_is_hottest_element(self) -> bool:
        """The paper's headline observation: the frontend runs hottest."""
        frontend = self.values["Frontend"]["Peak"]
        return frontend >= self.values["Backend"]["Peak"] and frontend >= self.values["UL2"]["Peak"]


def run_fig01(
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> Figure1Result:
    """Simulate the baseline and compute the Figure 1 groups."""
    campaign = Campaign.single(baseline_config(), settings, name="fig01")
    summary = run_campaign(campaign, executor, cache).summaries["baseline"]
    values: Dict[str, Dict[str, float]] = {}
    for group in FIGURE1_GROUPS:
        metrics = summary.mean_metrics(group)
        values[group] = {
            # Figure 1 reports the peak (AbsMax) and the time-and-space
            # average, both as increases over the 45 C ambient.
            "Peak": metrics["AbsMax"],
            "Average": metrics["Average"],
        }
    return Figure1Result(summary=summary, values=values)

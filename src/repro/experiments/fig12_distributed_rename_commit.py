"""Figure 12: temperature reduction of the distributed rename and commit.

The paper reports, averaged over the 26 SPEC2000 applications, the reduction
of the reorder buffer, rename table and trace cache temperatures (AbsMax,
Average and AvgMax, as reductions of the increase over ambient) obtained by
distributing the rename table and the reorder buffer over two frontend
partitions, together with the slowdown (2%), the processor-area overhead
(3%) and the reorder-buffer power reduction (11%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.campaign import Campaign, Executor, ResultCache, run_campaign
from repro.core.presets import baseline_config, distributed_rename_commit_config
from repro.experiments.reporting import format_key_values, format_percentage_table
from repro.campaign import ConfigurationSummary, ExperimentSettings
from repro.sim.results import METRIC_NAMES

#: Approximate values read off Figure 12 of the paper (fractional reductions).
PAPER_FIGURE12 = {
    "ReorderBuffer": {"AbsMax": 0.32, "Average": 0.33, "AvgMax": 0.33},
    "RenameTable": {"AbsMax": 0.34, "Average": 0.35, "AvgMax": 0.35},
    "TraceCache": {"AbsMax": 0.10, "Average": 0.11, "AvgMax": 0.11},
}
PAPER_SLOWDOWN = 0.02
PAPER_AREA_OVERHEAD = 0.03
PAPER_ROB_POWER_REDUCTION = 0.11

FIGURE12_GROUPS = ("ReorderBuffer", "RenameTable", "TraceCache")


@dataclass
class Figure12Result:
    """Measured reductions, slowdown, power and area effects."""

    baseline: ConfigurationSummary
    distributed: ConfigurationSummary
    reductions: Dict[str, Dict[str, float]] = field(default_factory=dict)
    slowdown: float = 0.0
    rob_power_reduction: float = 0.0
    rat_power_reduction: float = 0.0
    area_overhead: float = 0.0

    def format_table(self) -> str:
        table = format_percentage_table(
            "Figure 12: distributed rename and commit, reduction of the "
            "temperature increase over ambient",
            self.reductions,
            columns=METRIC_NAMES,
            paper_reference=PAPER_FIGURE12,
        )
        extras = format_key_values(
            "Derived quantities (Section 4.1)",
            {
                "slowdown (paper 2%)": f"{self.slowdown * 100:.1f}%",
                "ROB power reduction (paper 11%)": f"{self.rob_power_reduction * 100:.1f}%",
                "RAT power reduction": f"{self.rat_power_reduction * 100:.1f}%",
                "processor area overhead (paper 3%)": f"{self.area_overhead * 100:.1f}%",
            },
        )
        return table + "\n\n" + extras


def run_fig12(
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> Figure12Result:
    """Simulate the baseline and the distributed rename/commit configuration."""
    campaign = Campaign(
        [baseline_config(), distributed_rename_commit_config()], settings, name="fig12"
    )
    outcome = run_campaign(campaign, executor, cache)
    baseline = outcome.summaries["baseline"]
    distributed = outcome.summaries["distributed_rc"]

    reductions = {
        group: distributed.mean_reductions_vs(baseline, group)
        for group in FIGURE12_GROUPS
    }
    rob_power_reduction = 1.0 - (
        distributed.mean_power("ReorderBuffer") / baseline.mean_power("ReorderBuffer")
    )
    rat_power_reduction = 1.0 - (
        distributed.mean_power("RenameTable") / baseline.mean_power("RenameTable")
    )
    area_overhead = (
        distributed.group_area_mm2("Processor") - baseline.group_area_mm2("Processor")
    ) / baseline.group_area_mm2("Processor")
    return Figure12Result(
        baseline=baseline,
        distributed=distributed,
        reductions=reductions,
        slowdown=distributed.mean_slowdown_vs(baseline),
        rob_power_reduction=rob_power_reduction,
        rat_power_reduction=rat_power_reduction,
        area_overhead=area_overhead,
    )

"""Figure 13: sub-banked thermal-aware trace cache.

The paper compares four trace-cache organizations against the baseline
two-banked cache with a balanced mapping function:

* **Address Biasing** — the thermal-aware biased mapping function alone;
* **Blank silicon** — three banks with one statically gated;
* **Bank Hopping** — three banks, one Vdd-gated in rotation;
* **Bank Hopping + Address Biasing** — both mechanisms combined.

For each it reports the reduction of the reorder-buffer, rename-table and
trace-cache temperature increases over ambient (AbsMax / Average / AvgMax)
and the slowdown.  Section 4.2 also quotes a trace-cache hit-ratio loss below
1% from hopping and a 1.6% processor-area overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.campaign import Campaign, Executor, ResultCache, run_campaign
from repro.core.presets import (
    address_biasing_config,
    bank_hopping_biasing_config,
    bank_hopping_config,
    baseline_config,
    blank_silicon_config,
)
from repro.experiments.reporting import format_key_values, format_percentage_table
from repro.campaign import ConfigurationSummary, ExperimentSettings
from repro.sim.results import METRIC_NAMES

FIGURE13_GROUPS = ("ReorderBuffer", "RenameTable", "TraceCache")

#: Approximate values read off Figure 13 (fractional reductions) for the two
#: headline configurations, plus the numbers quoted in the text.
PAPER_FIGURE13 = {
    "Address Biasing": {
        "TraceCache": {"AbsMax": 0.04, "Average": 0.01, "AvgMax": 0.03},
    },
    "Bank Hopping": {
        "TraceCache": {"AbsMax": 0.12, "Average": 0.17, "AvgMax": 0.15},
        "RenameTable": {"AbsMax": 0.16, "Average": 0.15, "AvgMax": 0.15},
    },
    "Bank Hopping + Address Biasing": {
        "TraceCache": {"AbsMax": 0.14, "Average": 0.18, "AvgMax": 0.17},
    },
}
PAPER_SLOWDOWNS = {
    "Address Biasing": 0.02,
    "Blank silicon": 0.0,
    "Bank Hopping": 0.03,
    "Bank Hopping + Address Biasing": 0.04,
}
PAPER_HIT_RATIO_LOSS = 0.01
PAPER_AREA_OVERHEAD = 0.016

#: Display label of each evaluated configuration, keyed by preset name.
CONFIG_LABELS = {
    "address_biasing": "Address Biasing",
    "blank_silicon": "Blank silicon",
    "bank_hopping": "Bank Hopping",
    "hopping_biasing": "Bank Hopping + Address Biasing",
}


@dataclass
class Figure13Result:
    """Measured reductions and slowdowns of the four trace-cache techniques."""

    baseline: ConfigurationSummary
    summaries: Dict[str, ConfigurationSummary] = field(default_factory=dict)
    #: reductions[label][group][metric]
    reductions: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    slowdowns: Dict[str, float] = field(default_factory=dict)
    hit_ratio_loss: Dict[str, float] = field(default_factory=dict)
    area_overhead: Dict[str, float] = field(default_factory=dict)

    def format_table(self) -> str:
        sections = []
        for label, groups in self.reductions.items():
            sections.append(
                format_percentage_table(
                    f"Figure 13 [{label}]: reduction of the temperature increase "
                    "over ambient",
                    groups,
                    columns=METRIC_NAMES,
                    paper_reference=PAPER_FIGURE13.get(label, {}),
                )
            )
            sections.append(
                format_key_values(
                    f"{label}: derived quantities",
                    {
                        f"slowdown (paper {PAPER_SLOWDOWNS[label] * 100:.0f}%)":
                            f"{self.slowdowns[label] * 100:.1f}%",
                        "trace-cache hit-ratio loss (paper <1%)":
                            f"{self.hit_ratio_loss[label] * 100:.2f}%",
                        "processor area overhead (paper 1.6%)":
                            f"{self.area_overhead[label] * 100:.1f}%",
                    },
                )
            )
        return "\n\n".join(sections)

    def hopping_beats_blank_silicon(self) -> bool:
        """Paper claim: the proposed techniques outperform the blank-silicon option."""
        hopping = self.reductions["Bank Hopping"]["TraceCache"]
        blank = self.reductions["Blank silicon"]["TraceCache"]
        return hopping["AvgMax"] >= blank["AvgMax"]


def run_fig13(
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> Figure13Result:
    """Simulate the baseline and the four trace-cache configurations."""
    configs = [
        address_biasing_config(),
        blank_silicon_config(),
        bank_hopping_config(),
        bank_hopping_biasing_config(),
    ]
    campaign = Campaign([baseline_config()] + configs, settings, name="fig13")
    outcome = run_campaign(campaign, executor, cache)
    baseline = outcome.summaries["baseline"]
    result = Figure13Result(baseline=baseline)
    base_hit_rate = baseline.mean_trace_cache_hit_rate()
    base_area = baseline.group_area_mm2("Processor")
    for config in configs:
        label = CONFIG_LABELS[config.name]
        summary = outcome.summaries[config.name]
        result.summaries[label] = summary
        result.reductions[label] = {
            group: summary.mean_reductions_vs(baseline, group)
            for group in FIGURE13_GROUPS
        }
        result.slowdowns[label] = summary.mean_slowdown_vs(baseline)
        result.hit_ratio_loss[label] = base_hit_rate - summary.mean_trace_cache_hit_rate()
        result.area_overhead[label] = (
            summary.group_area_mm2("Processor") - base_area
        ) / base_area
    return result

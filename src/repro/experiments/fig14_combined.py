"""Figure 14: the complete distributed frontend.

The paper combines the distributed rename/commit mechanism with the
thermal-aware, bank-hopping trace cache and compares the combination against
each individual technique.  The combination reduces the reorder-buffer,
rename-table and trace-cache temperature increases over ambient by roughly
35%, 32% and 25% respectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.campaign import Campaign, Executor, ResultCache, run_campaign
from repro.core.presets import (
    bank_hopping_biasing_config,
    baseline_config,
    distributed_frontend_config,
    distributed_rename_commit_config,
)
from repro.experiments.reporting import format_key_values, format_percentage_table
from repro.campaign import ConfigurationSummary, ExperimentSettings
from repro.sim.results import METRIC_NAMES

FIGURE14_GROUPS = ("ReorderBuffer", "RenameTable", "TraceCache")

CONFIG_LABELS = {
    "hopping_biasing": "Bank Hopping + Address Biasing",
    "distributed_rc": "Distributed Rename and Commit",
    "distributed_frontend": "Distributed Rename and Commit + Bank Hopping + Address Biasing",
}

#: Paper values for the combined configuration (Section 4.3 / conclusions).
PAPER_COMBINED = {
    "ReorderBuffer": {"AbsMax": 0.35, "Average": 0.35, "AvgMax": 0.35},
    "RenameTable": {"AbsMax": 0.32, "Average": 0.32, "AvgMax": 0.32},
    "TraceCache": {"AbsMax": 0.25, "Average": 0.25, "AvgMax": 0.25},
}


@dataclass
class Figure14Result:
    """Measured reductions for the combined frontend and its components."""

    baseline: ConfigurationSummary
    summaries: Dict[str, ConfigurationSummary] = field(default_factory=dict)
    reductions: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    slowdowns: Dict[str, float] = field(default_factory=dict)

    def format_table(self) -> str:
        sections = []
        for label, groups in self.reductions.items():
            reference = PAPER_COMBINED if label == CONFIG_LABELS["distributed_frontend"] else {}
            sections.append(
                format_percentage_table(
                    f"Figure 14 [{label}]: reduction of the temperature increase "
                    "over ambient",
                    groups,
                    columns=METRIC_NAMES,
                    paper_reference=reference,
                )
            )
        sections.append(
            format_key_values(
                "Slowdowns",
                {label: f"{value * 100:.1f}%" for label, value in self.slowdowns.items()},
            )
        )
        return "\n\n".join(sections)

    def combination_is_synergistic(self) -> bool:
        """The combined frontend should beat each individual technique on its
        own target structure (ROB/RAT for distribution, TC for hopping)."""
        combined = self.reductions[CONFIG_LABELS["distributed_frontend"]]
        hopping = self.reductions[CONFIG_LABELS["hopping_biasing"]]
        distributed = self.reductions[CONFIG_LABELS["distributed_rc"]]
        return (
            combined["TraceCache"]["Average"] >= distributed["TraceCache"]["Average"]
            and combined["ReorderBuffer"]["Average"] >= hopping["ReorderBuffer"]["Average"]
        )


def run_fig14(
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> Figure14Result:
    """Simulate the combined distributed frontend and its two components."""
    configs = [
        bank_hopping_biasing_config(),
        distributed_rename_commit_config(),
        distributed_frontend_config(),
    ]
    campaign = Campaign([baseline_config()] + configs, settings, name="fig14")
    outcome = run_campaign(campaign, executor, cache)
    baseline = outcome.summaries["baseline"]
    result = Figure14Result(baseline=baseline)
    for config in configs:
        label = CONFIG_LABELS[config.name]
        summary = outcome.summaries[config.name]
        result.summaries[label] = summary
        result.reductions[label] = {
            group: summary.mean_reductions_vs(baseline, group)
            for group in FIGURE14_GROUPS
        }
        result.slowdowns[label] = summary.mean_slowdown_vs(baseline)
    return result

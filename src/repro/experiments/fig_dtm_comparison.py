"""DTM comparison: policy x scenario sweep of the thermal-management space.

The paper evaluates *layout* responses to heat; this driver evaluates the
*control* responses built in :mod:`repro.dtm` over the scenario library
(:mod:`repro.scenarios`), producing the classic DTM trade-off table: how
much peak temperature each policy buys, and how much performance it costs.

One declarative :class:`~repro.campaign.Campaign` with a DTM policy axis
covers the whole grid — by default 5 policies x 11 scenarios = 55 cells —
so the sweep parallelizes (``executor=``) and caches (``cache=``) like any
other campaign.  Exposed on the CLI as ``repro-campaign run --figure dtm``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.campaign import Campaign, Executor, ResultCache, run_campaign
from repro.campaign.spec import ExperimentSettings, variant_name
from repro.campaign.summary import ConfigurationSummary
from repro.core.presets import bank_hopping_biasing_config
from repro.experiments.reporting import format_value_table
from repro.scenarios import SCENARIO_NAMES
from repro.sim.config import ProcessorConfig

#: The default policy axis: the no-op baseline plus the four mechanisms.
DEFAULT_POLICIES: Tuple[str, ...] = (
    "none",
    "fetch_throttle",
    "clock_gate",
    "dvfs",
    "hybrid",
)


def dtm_settings(
    scenarios: Optional[Sequence[str]] = None,
    uops_per_scenario: int = 8_000,
    seed: int = 7,
) -> ExperimentSettings:
    """Experiment settings for a DTM sweep over the scenario library.

    Scenario traces ignore the SPEC relative-length table (every scenario
    runs its full ``uops_per_scenario`` micro-ops), and the scale defaults
    to 8 000 micro-ops so each run spans enough thermal intervals for a
    reactive policy's trigger/hysteresis loop to matter.
    """
    return ExperimentSettings(
        benchmarks=tuple(scenarios if scenarios is not None else SCENARIO_NAMES),
        uops_per_benchmark=uops_per_scenario,
        seed=seed,
        honor_relative_length=False,
    )


@dataclass
class DTMComparisonResult:
    """Per-policy aggregates of one policy x scenario sweep.

    ``summaries`` is keyed by policy spec string (the campaign variant name
    minus the shared configuration prefix); ``baseline_policy`` names the
    summary the trade-off columns compare against (normally ``"none"``).
    """

    config_name: str
    baseline_policy: str
    summaries: Dict[str, ConfigurationSummary] = field(default_factory=dict)

    def policy_names(self) -> Tuple[str, ...]:
        return tuple(self.summaries)

    @property
    def baseline(self) -> ConfigurationSummary:
        return self.summaries[self.baseline_policy]

    # ------------------------------------------------------------------
    def peak_reduction(self, policy: str) -> float:
        """Mean reduction of the Processor AbsMax increase over ambient.

        Fractional, the paper's reporting style: 0.06 means the peak
        temperature increase over the 45 C ambient is 6% lower than under
        ``baseline_policy``.
        """
        ours = self.summaries[policy].mean_metric("Processor", "AbsMax")
        base = self.baseline.mean_metric("Processor", "AbsMax")
        return (base - ours) / base if base > 0 else 0.0

    def performance_loss(self, policy: str) -> float:
        """Mean wall-clock-time increase versus ``baseline_policy`` (fraction)."""
        return self.summaries[policy].mean_time_slowdown_vs(self.baseline)

    def performance_loss_vs_peak_temp(self) -> Dict[str, Dict[str, float]]:
        """The DTM trade-off: per policy, what peak reduction costs in time.

        Returns ``{policy: {"peak_reduction": ..., "performance_loss": ...,
        "peak_celsius_over_ambient": ...}}`` — the (x, y) pairs of the
        classic DTM Pareto plot, plus the absolute peak for reference.
        """
        return {
            policy: {
                "peak_reduction": self.peak_reduction(policy),
                "performance_loss": self.performance_loss(policy),
                "peak_celsius_over_ambient": summary.mean_metric(
                    "Processor", "AbsMax"
                ),
            }
            for policy, summary in self.summaries.items()
        }

    # ------------------------------------------------------------------
    def format_table(self) -> str:
        rows: Dict[str, Dict[str, float]] = {}
        for policy, summary in self.summaries.items():
            rows[policy] = {
                "Peak dT (C)": summary.mean_metric("Processor", "AbsMax"),
                "AvgMax dT (C)": summary.mean_metric("Processor", "AvgMax"),
                "peak red. %": self.peak_reduction(policy) * 100.0,
                "perf loss %": self.performance_loss(policy) * 100.0,
                "throttle %": summary.mean_dtm("throttle_ratio") * 100.0,
                "gated/run": summary.mean_dtm("gated_intervals"),
                "mean f/f0": summary.mean_dtm("mean_freq_ratio", default=1.0),
            }
        return format_value_table(
            f"DTM policy comparison on '{self.config_name}' "
            f"(means over {len(self.baseline.results)} scenarios; "
            "temperature increases over 45 C ambient)",
            rows,
            columns=(
                "Peak dT (C)",
                "AvgMax dT (C)",
                "peak red. %",
                "perf loss %",
                "throttle %",
                "gated/run",
                "mean f/f0",
            ),
            precision=2,
        )


def run_dtm_comparison(
    settings: Optional[ExperimentSettings] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    config: Optional[ProcessorConfig] = None,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> DTMComparisonResult:
    """Run the policy x scenario grid and aggregate per policy.

    ``settings`` defaults to :func:`dtm_settings` (all scenarios); pass one
    with SPEC benchmark names to sweep policies over the paper's workloads
    instead.  ``config`` defaults to the ``hopping_biasing`` preset so the
    hybrid policy actually layers on the paper's thermal-aware mapping and
    bank hopping.  The first policy is the comparison baseline; include
    ``"none"`` first (the default) for the conventional no-DTM reference.
    """
    if settings is None:
        settings = dtm_settings()
    if config is None:
        config = bank_hopping_biasing_config()
    policies = tuple(policies)
    if not policies:
        raise ValueError("at least one DTM policy is required")
    campaign = Campaign(
        (config,),
        settings,
        name="dtm_comparison",
        dtm_policies=policies,
    )
    outcome = run_campaign(campaign, executor, cache)
    result = DTMComparisonResult(
        config_name=config.name, baseline_policy=policies[0]
    )
    for policy in policies:
        result.summaries[policy] = outcome.summaries[variant_name(config.name, policy)]
    return result

"""Multi-core scaling: core count x workload-mix sweep over the chip layer.

The paper's single-core techniques reshape heat *within* one core; the chip
layer (:mod:`repro.chip`) composes cores into one package, where two new
effects dominate: neighbour heating through the shared silicon/spreader,
and the idle headroom that chip-level migration exploits.  This driver
quantifies both by scaling the same configuration across 1/2/4/16-core dies
under two mix shapes:

* **homogeneous** — the thermal virus on every core: the chip's worst case,
  every core heating its neighbours;
* **heterogeneous** — a mixed-intensity bag (hot loop, virus, memory-bound,
  idle): hot cores next to cool ones, the shape migration and per-core DVFS
  are designed for.

Each core count is one chip :class:`~repro.campaign.Campaign` (so the sweep
parallelizes and caches like everything else), and because chip cells replay
cached *single-core* traces, the whole figure re-runs per-uop timing only
once per distinct scenario.  Exposed on the CLI as
``repro-campaign run --figure multicore``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.campaign import Campaign, Executor, ResultCache, run_campaign
from repro.campaign.spec import ExperimentSettings
from repro.core.presets import baseline_config
from repro.experiments.reporting import format_value_table
from repro.sim.config import ProcessorConfig

#: Core counts swept by default (the grid degenerates gracefully: 1 core is
#: exactly the single-core engine, which anchors the scaling curves).  The
#: 16-core die crosses the thermal solver's sparse threshold, so the default
#: sweep exercises both factorization backends.
DEFAULT_CORE_COUNTS: Tuple[int, ...] = (1, 2, 4, 16)

#: The homogeneous mix replicates the maximum-power scenario on every core.
HOMOGENEOUS_SCENARIO = "thermal_virus"

#: The heterogeneous bag, hottest-next-to-coolest by design; a ``cores``-core
#: mix takes the first ``cores`` entries, and wider dies tile the bag (so a
#: 16-core mix is four hot/virus/memory/idle quadrants — hot cores always
#: adjacent to cool ones).
HETEROGENEOUS_MIX: Tuple[str, ...] = (
    "hot_loop",
    "thermal_virus",
    "memory_bound",
    "idle_crawl",
)


def _mixes_for(cores: int) -> Tuple[Tuple[str, ...], ...]:
    heterogeneous = tuple(
        HETEROGENEOUS_MIX[c % len(HETEROGENEOUS_MIX)] for c in range(cores)
    )
    return (
        (HOMOGENEOUS_SCENARIO,) * cores,
        heterogeneous,
    )


@dataclass
class MulticoreScalingResult:
    """Per-(core count, mix shape) aggregates of the scaling sweep."""

    config_name: str
    #: Row label ("2 cores homogeneous") -> metrics.
    data: Dict[str, Dict[str, float]] = field(default_factory=dict)
    cells_replayed: int = 0
    traces_captured: int = 0

    def rows(self) -> Dict[str, Dict[str, float]]:
        """JSON-able copy of the per-row metrics."""
        return {label: dict(metrics) for label, metrics in self.data.items()}

    def format_table(self) -> str:
        return format_value_table(
            f"Multi-core scaling on '{self.config_name}' "
            f"(temperature increases over 45 C ambient; "
            f"{self.cells_replayed} of the chip cells replayed cached "
            "single-core traces)",
            self.data,
            columns=(
                "Peak dT (C)",
                "AvgMax dT (C)",
                "chip IPC",
                "spread (C)",
            ),
            precision=2,
        )


def run_multicore_scaling(
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
    config: Optional[ProcessorConfig] = None,
    uops_per_thread: int = 2_500,
    seed: int = 7,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    solver_backend: str = "auto",
) -> MulticoreScalingResult:
    """Run the core-count x mix grid and aggregate per (count, shape).

    ``core spread`` is the difference between the hottest and coolest
    core's peak temperature — zero for a perfectly homogeneous die, large
    when hot cores sit next to idle silicon (the headroom chip-level DTM
    trades against).  ``solver_backend`` selects the thermal factorization
    for every campaign (``"auto"`` flips the 16-core dies to sparse SuperLU
    and keeps the small anchors on the dense bit-identical path).
    """
    if config is None:
        config = baseline_config()
    if cache is None:
        # The core counts run as separate campaigns, and per-thread traces
        # only cross campaigns through a cache — without one, every count
        # would re-capture the same scenarios' timing.  A throwaway cache
        # keeps the "one timing run per distinct scenario" promise.
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-multicore-") as tmp:
            return run_multicore_scaling(
                core_counts=core_counts,
                config=config,
                uops_per_thread=uops_per_thread,
                seed=seed,
                executor=executor,
                cache=ResultCache(tmp),
                solver_backend=solver_backend,
            )
    scenarios = tuple(
        dict.fromkeys((HOMOGENEOUS_SCENARIO,) + HETEROGENEOUS_MIX)
    )
    settings = ExperimentSettings(
        benchmarks=scenarios,
        uops_per_benchmark=uops_per_thread,
        seed=seed,
        honor_relative_length=False,
    )
    result = MulticoreScalingResult(config_name=config.name)
    for cores in core_counts:
        campaign = Campaign(
            (config,),
            settings,
            name=f"multicore_{cores}",
            cores=cores,
            per_core_scenarios=_mixes_for(cores),
            solver_backend=solver_backend,
        )
        outcome = run_campaign(campaign, executor=executor, cache=cache)
        result.cells_replayed += outcome.cells_replayed
        result.traces_captured += outcome.traces_captured
        summary = outcome.summaries[config.name]
        for shape, mix in zip(("homogeneous", "heterogeneous"), _mixes_for(cores)):
            cell = summary.results["+".join(mix)]
            metrics = cell.temperature_metrics("Processor")
            per_core = cell.chip["per_core"]
            peaks = [entry["peak_celsius"] for entry in per_core.values()]
            result.data[f"{cores} cores {shape}"] = {
                "Peak dT (C)": metrics["AbsMax"],
                "AvgMax dT (C)": metrics["AvgMax"],
                "chip IPC": cell.chip["aggregate"]["chip_ipc"],
                "spread (C)": max(peaks) - min(peaks),
            }
    return result

"""Figures 10 and 11: floorplans of the evaluated processors.

The paper shows the floorplan of the two-banked baseline (Figure 10: ROB /
RAT-ITLB-TC0 / DECO-BP-TC1 rows in the frontend, four clusters, UL2) and the
three-banked floorplan used for bank hopping (Figure 11: ROB / DECO-TC0-ITLB
/ RAT-TC1-BP-TC2).  This module regenerates both from the area model and
reports block placements and areas, which the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.presets import (
    FrontendOrganization,
    bank_hopping_config,
    baseline_config,
    config_for,
    distributed_rename_commit_config,
)
from repro.power.energy import area_by_group, build_block_parameters
from repro.sim.config import ProcessorConfig
from repro.thermal.floorplan import Floorplan, build_floorplan


@dataclass
class FloorplanReport:
    """A floorplan plus its per-group area breakdown."""

    config: ProcessorConfig
    floorplan: Floorplan
    group_areas_mm2: Dict[str, float]

    def frontend_area_fraction(self) -> float:
        return self.group_areas_mm2["Frontend"] / self.group_areas_mm2["Processor"]

    def format_table(self) -> str:
        lines = [
            f"Floorplan for configuration '{self.config.name}' "
            f"(frontend {self.frontend_area_fraction() * 100:.1f}% of processor area; "
            "paper: about 20%)",
            self.floorplan.describe(),
        ]
        return "\n".join(lines)


def build_report(config: ProcessorConfig) -> FloorplanReport:
    """Build the floorplan report for one configuration."""
    parameters = build_block_parameters(config)
    areas = {name: p.area_mm2 for name, p in parameters.items()}
    floorplan = build_floorplan(config, areas)
    return FloorplanReport(
        config=config,
        floorplan=floorplan,
        group_areas_mm2=area_by_group(config, parameters),
    )


def describe_floorplans() -> Dict[str, FloorplanReport]:
    """Floorplans of the baseline (Figure 10), the bank-hopping frontend
    (Figure 11) and the distributed rename/commit organization."""
    return {
        "baseline (Figure 10)": build_report(baseline_config()),
        "bank hopping (Figure 11)": build_report(bank_hopping_config()),
        "distributed rename/commit": build_report(distributed_rename_commit_config()),
    }


def floorplan_report_for(preset_name: str) -> FloorplanReport:
    """Floorplan report of a named preset (used by the ``repro-campaign`` CLI)."""
    return build_report(config_for(FrontendOrganization(preset_name)))

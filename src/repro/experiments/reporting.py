"""Plain-text tables for the experiment drivers, CLI and benchmark harness."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def format_percentage_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    paper_reference: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> str:
    """Format a table of fractional values as percentages.

    ``rows`` maps a row label (e.g. ``"ReorderBuffer"``) to a mapping of
    column name to fraction (0.32 renders as ``32.0%``).  When a
    ``paper_reference`` is given, the paper's value is printed next to the
    measured one so the reproduction gap is visible at a glance.
    """
    header = f"{'':<28}" + "".join(f"{column:>18}" for column in columns)
    lines = [title, header, "-" * len(header)]
    for row_label, row in rows.items():
        cells = []
        for column in columns:
            measured = row.get(column)
            cell = "-" if measured is None else f"{measured * 100:.1f}%"
            if paper_reference and column in paper_reference.get(row_label, {}):
                cell += f" (paper {paper_reference[row_label][column] * 100:.0f}%)"
            cells.append(f"{cell:>18}")
        lines.append(f"{row_label:<28}" + "".join(cells))
    return "\n".join(lines)


def format_value_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    unit: str = "",
    precision: int = 1,
) -> str:
    """Format a table of raw values (temperatures, watts, ...)."""
    header = f"{'':<28}" + "".join(f"{column:>14}" for column in columns)
    lines = [title, header, "-" * len(header)]
    for row_label, row in rows.items():
        cells = []
        for column in columns:
            value = row.get(column)
            cell = "-" if value is None else f"{value:.{precision}f}{unit}"
            cells.append(f"{cell:>14}")
        lines.append(f"{row_label:<28}" + "".join(cells))
    return "\n".join(lines)


def format_key_values(title: str, values: Mapping[str, object]) -> str:
    """Format a simple two-column key/value listing."""
    width = max(len(str(key)) for key in values) if values else 0
    lines = [title]
    for key, value in values.items():
        if isinstance(value, float):
            rendered = f"{value:.3f}"
        else:
            rendered = str(value)
        lines.append(f"  {str(key):<{width}}  {rendered}")
    return "\n".join(lines)


def format_campaign_outcome(outcome) -> str:
    """Per-configuration overview table of a finished campaign.

    Takes a :class:`repro.campaign.CampaignOutcome`; used by the
    ``repro-campaign`` CLI for ad-hoc (non-figure) campaigns.
    """
    rows = {
        name: {
            "IPC": summary.mean_ipc(),
            "power (W)": summary.mean_power(),
            "TC hit rate": summary.mean_trace_cache_hit_rate(),
            "FE peak (C)": summary.mean_metric("Frontend", "AbsMax"),
            "FE avg (C)": summary.mean_metric("Frontend", "Average"),
        }
        for name, summary in outcome.summaries.items()
    }
    return format_value_table(
        outcome.describe(),
        rows,
        columns=("IPC", "power (W)", "TC hit rate", "FE peak (C)", "FE avg (C)"),
        precision=2,
    )

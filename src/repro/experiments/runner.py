"""Legacy experiment-runner facade over :mod:`repro.campaign`.

Historically this module owned the serial experiment loop; the machinery now
lives in the declarative campaign layer (:class:`repro.campaign.Campaign`
expanded into cells, pluggable executors, an optional result cache).  The
names below are kept as thin shims so existing imports — tests, examples,
figure drivers, the benchmark harness — keep working:

* :class:`ExperimentSettings` / :data:`QUICK_BENCHMARKS` — re-exported from
  :mod:`repro.campaign.spec`;
* :class:`ConfigurationSummary` — re-exported from
  :mod:`repro.campaign.summary`;
* :func:`run_configuration`, :func:`summarize`, :func:`summarize_many` —
  one-campaign wrappers around :func:`repro.campaign.run_campaign`, now
  accepting optional ``executor`` and ``cache`` arguments.

New code should use :mod:`repro.campaign` directly.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.core import run_campaign
from repro.campaign.executors import Executor
from repro.campaign.spec import QUICK_BENCHMARKS, Campaign, ExperimentSettings
from repro.campaign.summary import ConfigurationSummary
from repro.sim.config import ProcessorConfig
from repro.sim.results import SimulationResult

__all__ = [
    "QUICK_BENCHMARKS",
    "ExperimentSettings",
    "ConfigurationSummary",
    "run_configuration",
    "summarize",
    "summarize_many",
]


def run_configuration(
    config: ProcessorConfig,
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, SimulationResult]:
    """Simulate ``config`` on every benchmark of ``settings``."""
    outcome = run_campaign(Campaign.single(config, settings), executor, cache)
    return outcome.summaries[config.name].results


def summarize(
    config: ProcessorConfig,
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> ConfigurationSummary:
    """Run a configuration over all benchmarks and wrap it in a summary."""
    outcome = run_campaign(Campaign.single(config, settings), executor, cache)
    return outcome.summaries[config.name]


def summarize_many(
    configs: Sequence[ProcessorConfig],
    settings: ExperimentSettings,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[str, ConfigurationSummary]:
    """Summaries for several configurations, keyed by configuration name."""
    outcome = run_campaign(Campaign(configs, settings), executor, cache)
    return outcome.summaries

"""Deprecated experiment-runner shim — import :mod:`repro.campaign` instead.

Historically this module owned the serial experiment loop; everything it
exported now lives in the declarative campaign layer:

* :class:`ExperimentSettings` / :data:`QUICK_BENCHMARKS` —
  :mod:`repro.campaign.spec`;
* :class:`ConfigurationSummary` — :mod:`repro.campaign.summary`;
* :func:`run_configuration`, :func:`summarize`, :func:`summarize_many` —
  :mod:`repro.campaign.core`.

Importing this module emits a :class:`DeprecationWarning` (asserted by the
test suite); the re-exports themselves are identical objects, so existing
code keeps working unchanged.  New code should import from
:mod:`repro.campaign`.
"""

from __future__ import annotations

import warnings

from repro.campaign.core import run_configuration, summarize, summarize_many
from repro.campaign.spec import QUICK_BENCHMARKS, ExperimentSettings
from repro.campaign.summary import ConfigurationSummary

warnings.warn(
    "repro.experiments.runner is deprecated; import ExperimentSettings, "
    "ConfigurationSummary, run_configuration, summarize and summarize_many "
    "from repro.campaign instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "QUICK_BENCHMARKS",
    "ExperimentSettings",
    "ConfigurationSummary",
    "run_configuration",
    "summarize",
    "summarize_many",
]

"""Shared experiment machinery: workload selection, runs, aggregation.

The paper evaluates every configuration on the 26 SPEC2000 applications and
reports averages over them.  :class:`ExperimentSettings` controls which
benchmarks are simulated and at which (scaled-down) length; the helpers here
run one configuration over all of them and aggregate per-group temperature
metrics, reductions versus a baseline, and slowdowns exactly the way the
paper's figures do.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.sim.config import ProcessorConfig
from repro.sim.engine import SimulationEngine
from repro.sim.results import METRIC_NAMES, SimulationResult
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import SPEC2000_PROFILES, get_profile

#: A representative subset used by the quick settings: mixes integer and FP,
#: small and large working sets, high and low branch predictability.
QUICK_BENCHMARKS: Tuple[str, ...] = ("gzip", "gcc", "mcf", "crafty", "swim", "equake", "mesa", "lucas")


@dataclass(frozen=True)
class ExperimentSettings:
    """Controls the scale of an experiment run.

    The paper simulates 200 M-instruction slices and updates temperature
    every 10 M cycles; the reproduction scales both down together so each run
    still spans a comparable number of thermal intervals (each representing
    the same 1 ms of heating).
    """

    benchmarks: Tuple[str, ...] = tuple(SPEC2000_PROFILES)
    uops_per_benchmark: int = 8_000
    #: Thermal / hop / remap interval in cycles.  ``None`` derives it from the
    #: trace length so that every run spans roughly ``target_intervals``.
    interval_cycles: Optional[int] = None
    target_intervals: int = 25
    seed: int = 1
    honor_relative_length: bool = True

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("at least one benchmark is required")
        if self.uops_per_benchmark <= 0:
            raise ValueError("uops_per_benchmark must be positive")
        if self.target_intervals <= 0:
            raise ValueError("target_intervals must be positive")
        for name in self.benchmarks:
            get_profile(name)  # raises KeyError for unknown benchmarks

    @classmethod
    def full(cls) -> "ExperimentSettings":
        """All 26 SPEC2000 workloads at the default scaled-down length."""
        return cls()

    @classmethod
    def quick(cls, uops_per_benchmark: int = 6_000) -> "ExperimentSettings":
        """A representative 8-benchmark subset (used by the benchmark harness)."""
        return cls(benchmarks=QUICK_BENCHMARKS, uops_per_benchmark=uops_per_benchmark)

    @classmethod
    def smoke(cls) -> "ExperimentSettings":
        """Tiny two-benchmark run used by the integration tests."""
        return cls(benchmarks=("gzip", "swim"), uops_per_benchmark=3_000)

    def with_benchmarks(self, benchmarks: Iterable[str]) -> "ExperimentSettings":
        return replace(self, benchmarks=tuple(benchmarks))

    def resolved_interval_cycles(self) -> int:
        """Interval length in cycles, derived from the trace length if unset.

        The floor of 800 cycles keeps the bank-hop period large compared to
        the time the trace cache needs to refill a flushed bank; hopping at a
        much finer grain than the paper's 10 M cycles would otherwise turn
        every hop into a hit-rate cliff that the paper's configuration never
        experiences.
        """
        if self.interval_cycles is not None:
            return self.interval_cycles
        # Assume roughly one committed micro-op per cycle when sizing the
        # interval; the exact IPC does not matter, only that every run spans
        # a few tens of intervals.
        return max(800, self.uops_per_benchmark // self.target_intervals)


def _trace_length(settings: ExperimentSettings, benchmark: str) -> int:
    profile = get_profile(benchmark)
    length = settings.uops_per_benchmark
    if settings.honor_relative_length:
        length = max(500, int(round(length * profile.relative_length)))
    return length


#: Any periodic interval at or above this value is considered "unscaled"
#: (the paper's 10 M-cycle default) and is replaced by the experiment-scale
#: interval; smaller values were set deliberately (e.g. by an ablation sweep)
#: and are preserved.
_UNSCALED_INTERVAL_THRESHOLD = 1_000_000


def _scale_config(config: ProcessorConfig, interval: int) -> ProcessorConfig:
    """Scale the paper-default intervals of ``config`` down to ``interval``."""
    from dataclasses import replace as _replace

    tc = config.frontend.trace_cache
    tc_changes = {}
    if tc.hop_interval_cycles >= _UNSCALED_INTERVAL_THRESHOLD:
        tc_changes["hop_interval_cycles"] = interval
    if tc.remap_interval_cycles >= _UNSCALED_INTERVAL_THRESHOLD:
        tc_changes["remap_interval_cycles"] = interval
    if tc_changes:
        config = _replace(
            config, frontend=_replace(config.frontend, trace_cache=_replace(tc, **tc_changes))
        )
    if config.thermal.interval_cycles >= _UNSCALED_INTERVAL_THRESHOLD:
        config = _replace(config, thermal=_replace(config.thermal, interval_cycles=interval))
    return config


def run_configuration(
    config: ProcessorConfig,
    settings: ExperimentSettings,
) -> Dict[str, SimulationResult]:
    """Simulate ``config`` on every benchmark of ``settings``."""
    interval = settings.resolved_interval_cycles()
    scaled_config = _scale_config(config, interval)
    results: Dict[str, SimulationResult] = {}
    for benchmark in settings.benchmarks:
        generator = TraceGenerator(benchmark, seed=settings.seed)
        trace = generator.generate(_trace_length(settings, benchmark))
        engine = SimulationEngine(
            scaled_config, trace.uops, benchmark, interval_cycles=interval
        )
        results[benchmark] = engine.run()
    return results


@dataclass
class ConfigurationSummary:
    """Per-configuration aggregates over all simulated benchmarks."""

    config_name: str
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    def mean_metric(self, group: str, metric: str) -> float:
        """Average of a temperature metric (increase over ambient) over benchmarks."""
        values = [r.temperature_metrics(group)[metric] for r in self.results.values()]
        return sum(values) / len(values)

    def mean_metrics(self, group: str) -> Dict[str, float]:
        return {metric: self.mean_metric(group, metric) for metric in METRIC_NAMES}

    def mean_reductions_vs(
        self, baseline: "ConfigurationSummary", group: str
    ) -> Dict[str, float]:
        """Average per-benchmark fractional reductions versus a baseline."""
        reductions = {metric: [] for metric in METRIC_NAMES}
        for benchmark, result in self.results.items():
            base = baseline.results[benchmark]
            per_bench = result.temperature_reduction_vs(base, group)
            for metric in METRIC_NAMES:
                reductions[metric].append(per_bench[metric])
        return {
            metric: sum(values) / len(values) for metric, values in reductions.items()
        }

    def mean_slowdown_vs(self, baseline: "ConfigurationSummary") -> float:
        """Average per-benchmark execution-time increase versus a baseline."""
        slowdowns = [
            result.slowdown_vs(baseline.results[benchmark])
            for benchmark, result in self.results.items()
        ]
        return sum(slowdowns) / len(slowdowns)

    def mean_power(self, group: Optional[str] = None) -> float:
        """Average total power (W), optionally restricted to a block group."""
        if group is None:
            values = [r.average_power() for r in self.results.values()]
        else:
            values = [r.average_group_power(group) for r in self.results.values()]
        return sum(values) / len(values)

    def mean_ipc(self) -> float:
        return sum(r.stats.ipc for r in self.results.values()) / len(self.results)

    def mean_trace_cache_hit_rate(self) -> float:
        return sum(
            r.stats.trace_cache_hit_rate for r in self.results.values()
        ) / len(self.results)

    def group_area_mm2(self, group: str) -> float:
        """Area of a block group (identical across benchmarks)."""
        first = next(iter(self.results.values()))
        return first.group_area_mm2(group)


def summarize(
    config: ProcessorConfig, settings: ExperimentSettings
) -> ConfigurationSummary:
    """Run a configuration over all benchmarks and wrap it in a summary."""
    return ConfigurationSummary(
        config_name=config.name, results=run_configuration(config, settings)
    )


def summarize_many(
    configs: Sequence[ProcessorConfig], settings: ExperimentSettings
) -> Dict[str, ConfigurationSummary]:
    """Summaries for several configurations, keyed by configuration name."""
    return {config.name: summarize(config, settings) for config in configs}

"""Frontend of the clustered microarchitecture.

The frontend reads IA32 instructions from the UL2, translates them into
micro-ops and stores them in the trace cache, from where they are read,
decoded, renamed and steered to any of the backends (Section 2 of the
paper).  This package provides the centralized (baseline) implementations;
the distributed rename/commit machinery — the paper's contribution — lives
in :mod:`repro.core`.
"""

from repro.frontend.branch_predictor import BranchPredictor
from repro.frontend.trace_cache import TraceCache, TraceCacheLine, FetchResult
from repro.frontend.fetch import FetchUnit
from repro.frontend.steering import SteeringUnit, SteeringDecision
from repro.frontend.rename import RenameUnit, CentralizedRenameUnit
from repro.frontend.commit import CommitUnit, CentralizedCommitUnit

__all__ = [
    "BranchPredictor",
    "TraceCache",
    "TraceCacheLine",
    "FetchResult",
    "FetchUnit",
    "SteeringUnit",
    "SteeringDecision",
    "RenameUnit",
    "CentralizedRenameUnit",
    "CommitUnit",
    "CentralizedCommitUnit",
]

"""Branch predictor model.

The workload profiles already encode per-benchmark misprediction rates (the
``mispredicted`` flag on branch micro-ops), so the predictor's job in the
timing model is (a) to account for its own activity and area — it is one of
the frontend blocks on the floorplan (``BP``) — and (b) to maintain a
realistic predictor structure whose measured accuracy can be inspected by
tests and examples.  A standard gshare predictor is implemented.
"""

from __future__ import annotations

from repro.isa.microops import MicroOp


class BranchPredictor:
    """Gshare branch predictor with 2-bit saturating counters."""

    def __init__(self, num_entries: int = 4096) -> None:
        if num_entries <= 0 or num_entries & (num_entries - 1):
            raise ValueError("predictor size must be a positive power of two")
        self.num_entries = num_entries
        self._counters = [2] * num_entries  # weakly taken
        self._history = 0
        self._history_mask = num_entries - 1
        self.lookups = 0
        self.correct = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._history_mask

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc``."""
        self.lookups += 1
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the predictor with the resolved outcome."""
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def predict_and_update(self, uop: MicroOp) -> bool:
        """Predict, train and return whether the prediction was correct."""
        if not uop.is_branch:
            raise ValueError("predict_and_update requires a branch micro-op")
        prediction = self.predict(uop.pc)
        correct = prediction == uop.branch_taken
        if correct:
            self.correct += 1
        self.update(uop.pc, uop.branch_taken)
        return correct

    @property
    def accuracy(self) -> float:
        """Fraction of lookups that predicted the right direction."""
        return self.correct / self.lookups if self.lookups else 0.0

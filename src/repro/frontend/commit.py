"""Reorder buffer and commit logic (baseline, monolithic version).

In the baseline, the reorder buffer is a single structure; an instruction can
be committed once it reaches the head of the buffer and its ready bit is set
(Figure 6 of the paper).  The distributed organization with partial reorder
buffers and the R/L selection walk is implemented in
:mod:`repro.core.distributed_commit`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.sim.uop import DynamicUop, UopState


class CommitUnit:
    """Interface of the commit stage used by the processor pipeline."""

    def can_allocate(self, frontend_id: int) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def allocate(self, uop: DynamicUop) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def commit(self, cycle: int) -> List[DynamicUop]:  # pragma: no cover - interface
        raise NotImplementedError

    def occupancy(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def is_empty(self) -> bool:
        return self.occupancy() == 0


class CentralizedCommitUnit(CommitUnit):
    """A single monolithic reorder buffer with in-order commit."""

    def __init__(self, rob_entries: int, commit_width: int) -> None:
        if rob_entries <= 0 or commit_width <= 0:
            raise ValueError("ROB size and commit width must be positive")
        self.rob_entries = rob_entries
        self.commit_width = commit_width
        self._rob: Deque[DynamicUop] = deque()
        self.allocated = 0
        self.committed = 0

    # ------------------------------------------------------------------
    def can_allocate(self, frontend_id: int) -> bool:
        return len(self._rob) < self.rob_entries

    def allocate(self, uop: DynamicUop) -> None:
        if not self.can_allocate(uop.frontend_id):
            raise RuntimeError("reorder buffer is full")
        self._rob.append(uop)
        self.allocated += 1

    def commit(self, cycle: int) -> List[DynamicUop]:
        """Commit up to ``commit_width`` completed micro-ops from the head."""
        committed: List[DynamicUop] = []
        while self._rob and len(committed) < self.commit_width:
            head = self._rob[0]
            if head.state is not UopState.COMPLETED or head.complete_cycle > cycle:
                break
            self._rob.popleft()
            head.state = UopState.COMMITTED
            head.commit_cycle = cycle
            committed.append(head)
            self.committed += 1
        return committed

    def occupancy(self) -> int:
        return len(self._rob)

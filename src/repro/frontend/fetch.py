"""Fetch unit: reads micro-ops from the trace cache into the fetch buffer.

The fetch unit consumes the benchmark's dynamic micro-op stream, assembles it
into trace lines (the unit of trace-cache storage), performs the trace-cache
access for each line and delivers up to ``fetch_width`` micro-ops per cycle
towards decode/rename.  A trace-cache miss stalls delivery for the UL2 access
plus the trace-build overhead.  A mispredicted branch stalls fetch until the
branch resolves plus the frontend refill penalty (the simulator does not
model wrong-path execution).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List, Optional

from repro.frontend.branch_predictor import BranchPredictor
from repro.frontend.trace_cache import TraceCache
from repro.isa.microops import MicroOp
from repro.sim import blocks
from repro.sim.config import FrontendConfig
from repro.sim.stats import ActivityCounters, SimulationStats


class FetchUnit:
    """Assembles trace lines and feeds the decode/rename pipeline."""

    def __init__(
        self,
        config: FrontendConfig,
        trace_cache: TraceCache,
        branch_predictor: BranchPredictor,
        uop_stream: Iterator[MicroOp],
        activity: ActivityCounters,
        stats: SimulationStats,
    ) -> None:
        self.config = config
        self.trace_cache = trace_cache
        self.branch_predictor = branch_predictor
        self._stream = uop_stream
        self.activity = activity
        self.stats = stats
        #: Micro-ops of the current line still to be delivered.
        self._line_buffer: deque = deque()
        #: Cycle until which fetch is stalled (miss, or misprediction redirect).
        self._stall_until_cycle = 0
        #: Set when a mispredicted branch is in flight; fetch stays stalled
        #: until the processor calls :meth:`redirect` after it resolves.
        self._waiting_for_redirect = False
        self._exhausted = False
        self._lookahead: Optional[MicroOp] = None

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True once the benchmark stream and internal buffers are drained."""
        return self._exhausted and not self._line_buffer and self._lookahead is None

    def stall_for_redirect(self) -> None:
        """Stop fetching until :meth:`redirect` is called (branch misprediction)."""
        self._waiting_for_redirect = True

    def redirect(self, resume_cycle: int) -> None:
        """Resume fetching at ``resume_cycle`` after a misprediction resolves."""
        self._waiting_for_redirect = False
        self._stall_until_cycle = max(self._stall_until_cycle, resume_cycle)

    # ------------------------------------------------------------------
    def _next_uop(self) -> Optional[MicroOp]:
        if self._lookahead is not None:
            uop = self._lookahead
            self._lookahead = None
            return uop
        try:
            return next(self._stream)
        except StopIteration:
            self._exhausted = True
            return None

    def _assemble_line(self) -> List[MicroOp]:
        """Pull micro-ops from the stream to form the next trace line."""
        line: List[MicroOp] = []
        max_uops = self.config.trace_cache.line_uops
        branches = 0
        while len(line) < max_uops:
            uop = self._next_uop()
            if uop is None:
                break
            line.append(uop)
            if uop.is_branch:
                branches += 1
                # Trace lines hold a limited number of basic blocks; end the
                # line after three branches (typical trace-cache constraint).
                if branches >= 3:
                    break
        return line

    def _refill_line_buffer(self, cycle: int) -> None:
        line = self._assemble_line()
        if not line:
            return
        head_pc = line[0].pc
        result = self.trace_cache.access(head_pc)
        # Activity: the selected bank is read on every fetch cycle needed to
        # consume the line (a full 16-micro-op line takes two 8-wide fetch
        # cycles), plus one ITLB access per trace-cache access; a miss
        # additionally reads the UL2 and writes the line back into the bank.
        fetch_cycles_for_line = max(
            1, -(-len(line) // self.config.fetch_width)  # ceil division
        )
        self.activity.record(
            blocks.trace_cache_bank_block(result.bank), fetch_cycles_for_line
        )
        self.activity.record(blocks.ITLB)
        if result.hit:
            self.stats.trace_cache_hits += 1
        else:
            self.stats.trace_cache_misses += 1
            self.activity.record(blocks.UL2)
            self.activity.record(blocks.trace_cache_bank_block(result.bank))
            self._stall_until_cycle = max(self._stall_until_cycle, cycle + result.latency)
        self._line_buffer.extend(line)

    # ------------------------------------------------------------------
    def fetch(self, cycle: int) -> List[MicroOp]:
        """Return the micro-ops fetched during ``cycle`` (up to fetch width)."""
        if self._waiting_for_redirect:
            self.stats.fetch_stall_cycles += 1
            return []
        if cycle < self._stall_until_cycle:
            self.stats.fetch_stall_cycles += 1
            return []
        fetched: List[MicroOp] = []
        width = self.config.fetch_width
        while len(fetched) < width:
            if not self._line_buffer:
                self._refill_line_buffer(cycle)
                if not self._line_buffer:
                    break
                if cycle < self._stall_until_cycle:
                    # The refill missed in the trace cache; the line becomes
                    # available only when the build completes.
                    break
            uop = self._line_buffer.popleft()
            fetched.append(uop)
            self.stats.fetched_uops += 1
            # Decoder activity: every fetched micro-op goes through decode.
            self.activity.record(blocks.DECODER)
            if uop.is_branch:
                self.stats.branches += 1
                self.activity.record(blocks.BRANCH_PREDICTOR)
                self.branch_predictor.predict_and_update(uop)
                if uop.mispredicted:
                    self.stats.mispredicted_branches += 1
                    self.stall_for_redirect()
                    break
        return fetched

"""Register renaming for the clustered microarchitecture (baseline version).

The rename stage maps each logical register to a physical register of the
backend cluster the instruction was steered to.  Because values may be needed
in clusters other than the one that produced them, renaming also creates
*copy* micro-ops that move values over the point-to-point links; the rename
table therefore has one mapping per logical register *per cluster*
(Figure 4 of the paper).

The baseline keeps a monolithic rename table (all accesses charge the single
``RAT`` block); the distributed organization of Section 3.1.1 is implemented
by :class:`repro.core.distributed_rename.DistributedRenameUnit`, which reuses
this machinery but partitions the table (and the activity) across frontend
partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.backend.cluster import Cluster
from repro.isa.microops import MicroOp, UopClass
from repro.isa.registers import RegisterSpace
from repro.sim import blocks
from repro.sim.config import ProcessorConfig
from repro.sim.stats import ActivityCounters, SimulationStats
from repro.sim.uop import DynamicUop, UopState

#: A renamed physical register reference: (register file, physical index).
PhysRef = Tuple[object, int]


@dataclass
class RenameOutcome:
    """Result of renaming one micro-op: the uop itself plus any copies created."""

    uop: DynamicUop
    copies: List[DynamicUop] = field(default_factory=list)


class RenameTables:
    """Per-cluster logical-to-physical mappings for every logical register.

    ``mapping[flat_logical_index][cluster]`` is the physical reference of the
    most recent value of that logical register available in that cluster, or
    ``None`` when the cluster has no copy.
    """

    def __init__(self, register_space: RegisterSpace, num_clusters: int) -> None:
        self.register_space = register_space
        self.num_clusters = num_clusters
        self._table: List[List[Optional[PhysRef]]] = [
            [None] * num_clusters for _ in range(register_space.total)
        ]

    def mapping(self, flat_index: int, cluster: int) -> Optional[PhysRef]:
        return self._table[flat_index][cluster]

    def set_mapping(self, flat_index: int, cluster: int, ref: Optional[PhysRef]) -> None:
        self._table[flat_index][cluster] = ref

    def clusters_holding(self, flat_index: int) -> List[int]:
        """Clusters that currently hold a copy of the logical register."""
        return [c for c, ref in enumerate(self._table[flat_index]) if ref is not None]

    def all_mappings(self, flat_index: int) -> List[PhysRef]:
        """Every live physical mapping of a logical register (any cluster)."""
        return [ref for ref in self._table[flat_index] if ref is not None]

    def clear_register(self, flat_index: int) -> None:
        """Remove every mapping of a logical register (a new value supersedes them)."""
        self._table[flat_index] = [None] * self.num_clusters


class RenameUnit:
    """Interface of the rename stage used by the processor pipeline."""

    def can_rename(self, uop: MicroOp, cluster: int) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def rename(
        self,
        dynamic: DynamicUop,
        cluster: int,
        cycle: int,
        seq_alloc: Callable[[], int],
    ) -> RenameOutcome:  # pragma: no cover - interface
        raise NotImplementedError

    def release_at_commit(self, dynamic: DynamicUop) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class CentralizedRenameUnit(RenameUnit):
    """Monolithic rename table and freelists (the paper's baseline).

    Parameters
    ----------
    config:
        Full processor configuration (cluster count, frontend partitioning).
    clusters:
        The backend clusters (own the physical register files / freelists).
    register_space:
        Logical register namespace.
    activity:
        Per-block activity counters (RAT/DECO accesses are recorded here).
    stats:
        Aggregate simulation statistics (copy counts).
    """

    #: Worst-case physical registers allocated in the target cluster while
    #: renaming one micro-op: one destination plus one copy target per source.
    _WORST_CASE_ALLOCATIONS = 3

    def __init__(
        self,
        config: ProcessorConfig,
        clusters: Sequence[Cluster],
        register_space: RegisterSpace,
        activity: ActivityCounters,
        stats: SimulationStats,
    ) -> None:
        self.config = config
        self.clusters = list(clusters)
        self.register_space = register_space
        self.activity = activity
        self.stats = stats
        self.tables = RenameTables(register_space, len(self.clusters))
        self.num_frontends = config.frontend.num_frontends

    # ------------------------------------------------------------------
    # Activity helpers (overridden by the distributed unit)
    # ------------------------------------------------------------------
    def _rat_block_for_cluster(self, cluster: int) -> str:
        frontend = self.config.frontend_of_cluster(cluster)
        return blocks.rat_block(frontend, self.num_frontends)

    def _record_rat_access(self, cluster: int, count: int = 1) -> None:
        self.activity.record(self._rat_block_for_cluster(cluster), count)

    def _record_steering_access(self, count: int = 1) -> None:
        # The availability table and the freelists live with the (centralized)
        # steering logic; their activity is charged to the decode/steer block.
        self.activity.record(blocks.DECODER, count)

    def _on_copy_between_frontends(self) -> None:
        """Hook: called when a copy crosses frontend partitions (no-op here)."""

    # ------------------------------------------------------------------
    # Resource checks
    # ------------------------------------------------------------------
    def can_rename(self, uop: MicroOp, cluster: int) -> bool:
        """Whether the target cluster has enough free physical registers."""
        target = self.clusters[cluster]
        int_needed = 0
        fp_needed = 0
        if uop.dest is not None:
            if uop.dest.is_fp:
                fp_needed += 1
            else:
                int_needed += 1
        # Each source may require a copy target register in the consuming
        # cluster (conservative: assume every source needs one).
        for source in uop.sources:
            if source.is_fp:
                fp_needed += 1
            else:
                int_needed += 1
        return target.int_rf.can_allocate(int_needed) and target.fp_rf.can_allocate(fp_needed)

    # ------------------------------------------------------------------
    # Renaming
    # ------------------------------------------------------------------
    def rename(
        self,
        dynamic: DynamicUop,
        cluster: int,
        cycle: int,
        seq_alloc: Callable[[], int],
    ) -> RenameOutcome:
        """Rename ``dynamic`` for execution on ``cluster``.

        Creates copy micro-ops for source values that only exist in other
        clusters, allocates the destination physical register, updates the
        rename tables and records the corresponding RAT activity.
        """
        static = dynamic.static
        dynamic.cluster = cluster
        dynamic.frontend_id = self.config.frontend_of_cluster(cluster)
        target = self.clusters[cluster]
        copies: List[DynamicUop] = []

        # Steering-stage structures: availability table lookup per source and
        # one freelist access for the destination.
        self._record_steering_access(len(static.sources) + (1 if static.dest else 0))

        # --- Source operands -------------------------------------------------
        for source in static.sources:
            flat = self.register_space.flat_index(source)
            local_ref = self.tables.mapping(flat, cluster)
            self._record_rat_access(cluster)  # source rename table read
            if local_ref is not None:
                dynamic.src_refs.append(local_ref)
                continue
            holders = self.tables.clusters_holding(flat)
            if not holders:
                # Architectural state produced before the simulated trace
                # began: the value is available immediately, no copy needed.
                continue
            source_cluster = self._pick_copy_source(holders, cluster)
            copy = self._make_copy(
                dynamic, source, flat, source_cluster, cluster, seq_alloc()
            )
            copies.append(copy)
            dynamic.src_refs.append(copy.dest_ref)
            dynamic.num_copies_generated += 1
            self.stats.copy_uops_generated += 1
            if (
                self.config.frontend_of_cluster(source_cluster)
                != self.config.frontend_of_cluster(cluster)
            ):
                self.stats.copy_requests_between_frontends += 1
                self._on_copy_between_frontends()

        # --- Destination ------------------------------------------------------
        if static.dest is not None:
            flat = self.register_space.flat_index(static.dest)
            regfile = target.register_file_for(static.dest.is_fp)
            phys = regfile.allocate()
            # Previous mappings of this logical register (in any cluster) are
            # released when this micro-op commits.
            dynamic.prev_mappings = list(self.tables.all_mappings(flat))
            self.tables.clear_register(flat)
            self.tables.set_mapping(flat, cluster, (regfile, phys))
            dynamic.dest_ref = (regfile, phys)
            self._record_rat_access(cluster)  # destination rename table write

        dynamic.rename_cycle = cycle
        dynamic.state = UopState.RENAMED
        return RenameOutcome(uop=dynamic, copies=copies)

    def _pick_copy_source(self, holders: List[int], destination: int) -> int:
        """Choose which cluster provides the value for a copy.

        Prefer a cluster fed by the same frontend partition (no copy-request
        signalling needed), then the closest cluster on the point-to-point
        links.
        """
        dest_frontend = self.config.frontend_of_cluster(destination)
        same_frontend = [
            c for c in holders
            if self.config.frontend_of_cluster(c) == dest_frontend
        ]
        candidates = same_frontend if same_frontend else holders
        return min(candidates, key=lambda c: abs(c - destination))

    def _make_copy(
        self,
        consumer: DynamicUop,
        source_reg,
        flat: int,
        source_cluster: int,
        dest_cluster: int,
        seq: int,
    ) -> DynamicUop:
        """Create the copy micro-op that moves ``source_reg`` between clusters."""
        static = MicroOp(pc=consumer.static.pc, uop_class=UopClass.COPY)
        copy = DynamicUop(static, seq)
        copy.is_copy = True
        copy.cluster = source_cluster
        copy.copy_dest_cluster = dest_cluster
        copy.frontend_id = self.config.frontend_of_cluster(source_cluster)
        copy.fetch_cycle = consumer.fetch_cycle
        # The copy reads the value in the source cluster...
        source_ref = self.tables.mapping(flat, source_cluster)
        if source_ref is not None:
            copy.src_refs.append(source_ref)
        # ...and writes a newly allocated register in the destination cluster.
        dest_regfile = self.clusters[dest_cluster].register_file_for(source_reg.is_fp)
        dest_phys = dest_regfile.allocate()
        copy.dest_ref = (dest_regfile, dest_phys)
        # The destination cluster now (architecturally) holds a copy of the
        # logical register, so later consumers there do not need another copy.
        self.tables.set_mapping(flat, dest_cluster, copy.dest_ref)
        # Copy generation touches the rename table of the source cluster's
        # frontend (the copy request is processed there, Figure 3-B) and
        # writes the mapping in the destination cluster's table.
        self._record_rat_access(source_cluster)
        self._record_rat_access(dest_cluster)
        return copy

    # ------------------------------------------------------------------
    # Commit-side release
    # ------------------------------------------------------------------
    def release_at_commit(self, dynamic: DynamicUop) -> None:
        """Free the physical registers superseded by ``dynamic``'s destination."""
        for regfile, index in dynamic.prev_mappings:
            regfile.free(index)
        dynamic.prev_mappings = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_mappings(self) -> Dict[int, int]:
        """Number of live mappings per cluster (used by tests)."""
        counts = {c: 0 for c in range(len(self.clusters))}
        for flat in range(self.register_space.total):
            for c in range(len(self.clusters)):
                if self.tables.mapping(flat, c) is not None:
                    counts[c] += 1
        return counts

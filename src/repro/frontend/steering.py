"""Centralized steering unit.

The steering engine is kept centralized in both the baseline and the
distributed frontend (Figure 3-A): it examines each micro-op's source
operands in the availability table and decides which backend cluster will
execute it, balancing dependence locality (to avoid copy micro-ops) against
cluster load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.backend.cluster import Cluster
from repro.frontend.rename import RenameTables
from repro.isa.microops import MicroOp
from repro.isa.registers import RegisterSpace
from repro.sim.config import ProcessorConfig, SteeringPolicy


@dataclass
class SteeringDecision:
    """Outcome of steering one micro-op."""

    cluster: int
    #: Number of source operands already present in the chosen cluster.
    local_sources: int
    #: Number of source operands that will require a copy micro-op.
    remote_sources: int


class SteeringUnit:
    """Dependence- and load-aware cluster selection."""

    #: Weight of one locally-available source operand relative to one
    #: in-flight micro-op of load imbalance.
    _DEPENDENCE_WEIGHT = 24.0

    def __init__(
        self,
        config: ProcessorConfig,
        clusters: Sequence[Cluster],
        tables: RenameTables,
        register_space: RegisterSpace,
    ) -> None:
        self.config = config
        self.clusters = list(clusters)
        self.tables = tables
        self.register_space = register_space
        self._round_robin_next = 0
        self.decisions = 0

    # ------------------------------------------------------------------
    def choose(self, uop: MicroOp) -> SteeringDecision:
        """Pick the backend cluster that will execute ``uop``."""
        self.decisions += 1
        policy = self.config.steering_policy
        if policy is SteeringPolicy.ROUND_ROBIN:
            cluster = self._round_robin_next
            self._round_robin_next = (self._round_robin_next + 1) % len(self.clusters)
        elif policy is SteeringPolicy.LOAD_BALANCE:
            cluster = min(
                range(len(self.clusters)), key=lambda c: self.clusters[c].load()
            )
        else:
            cluster = self._dependence_choice(uop)
        local, remote = self._count_source_locality(uop, cluster)
        return SteeringDecision(cluster=cluster, local_sources=local, remote_sources=remote)

    # ------------------------------------------------------------------
    def _source_clusters(self, uop: MicroOp) -> list:
        """For each source, the list of clusters holding its current value."""
        holders = []
        for source in uop.sources:
            flat = self.register_space.flat_index(source)
            holders.append(self.tables.clusters_holding(flat))
        return holders

    def _count_source_locality(self, uop: MicroOp, cluster: int) -> tuple:
        local = 0
        remote = 0
        for source_holders in self._source_clusters(uop):
            if not source_holders:
                continue  # architectural value, available everywhere
            if cluster in source_holders:
                local += 1
            else:
                remote += 1
        return local, remote

    def _dependence_choice(self, uop: MicroOp) -> int:
        """Dependence-based steering with load balancing.

        Each cluster is scored by the number of source operands it already
        holds (avoiding copies) minus a load penalty proportional to its
        in-flight micro-op count; the highest score wins, ties go to the
        least-loaded cluster.
        """
        source_holders = self._source_clusters(uop)
        best_cluster = 0
        best_score = float("-inf")
        for c in range(len(self.clusters)):
            locality = sum(1 for holders in source_holders if c in holders)
            load = self.clusters[c].load()
            score = locality * self._DEPENDENCE_WEIGHT - load
            if score > best_score or (
                score == best_score and load < self.clusters[best_cluster].load()
            ):
                best_score = score
                best_cluster = c
        return best_cluster

"""Sub-banked trace cache.

The trace cache stores decoded micro-op traces.  It is divided into banks
with non-overlapping contents; a mapping function (balanced or thermal-aware,
see :mod:`repro.core.thermal_mapping`) selects the bank a trace address maps
to.  Banks can be Vdd-gated (losing their contents) by the bank-hopping
controller or statically in the blank-silicon configuration.

Timing: a trace-cache hit delivers one trace line; a miss triggers a trace
build from the UL2 (charged with the UL2 access latency plus a fixed build
overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.thermal_mapping import BankMappingTable
from repro.sim.config import TraceCacheConfig


@dataclass
class TraceCacheLine:
    """One trace line: up to ``line_uops`` micro-ops starting at ``head_pc``."""

    head_pc: int
    num_uops: int


@dataclass
class FetchResult:
    """Outcome of a trace-cache lookup."""

    hit: bool
    bank: int
    #: Cycles until the line's micro-ops are available to the fetch buffer.
    latency: int
    #: Whether the miss required a UL2 access (trace build).
    ul2_access: bool


class _Bank:
    """One physical bank: a small set-associative tag store of trace lines."""

    __slots__ = ("sets", "associativity", "num_sets", "gated")

    def __init__(self, num_sets: int, associativity: int) -> None:
        self.num_sets = num_sets
        self.associativity = associativity
        # Each set is an LRU-ordered list of head PCs (most recent last).
        self.sets: List[List[int]] = [[] for _ in range(num_sets)]
        self.gated = False

    def _set_index(self, head_pc: int) -> int:
        return (head_pc >> 4) % self.num_sets

    def lookup(self, head_pc: int) -> bool:
        if self.gated:
            return False
        entries = self.sets[self._set_index(head_pc)]
        if head_pc in entries:
            entries.remove(head_pc)
            entries.append(head_pc)
            return True
        return False

    def insert(self, head_pc: int) -> None:
        if self.gated:
            return
        entries = self.sets[self._set_index(head_pc)]
        if head_pc in entries:
            entries.remove(head_pc)
        elif len(entries) >= self.associativity:
            entries.pop(0)
        entries.append(head_pc)

    def flush(self) -> int:
        """Drop all contents; return the number of lines lost."""
        lost = sum(len(entries) for entries in self.sets)
        self.sets = [[] for _ in range(self.num_sets)]
        return lost

    def occupancy(self) -> int:
        return sum(len(entries) for entries in self.sets)


class TraceCache:
    """The sub-banked trace cache with a pluggable bank mapping table."""

    #: Extra cycles to rebuild a trace on a miss, on top of the UL2 latency
    #: (decode and trace-construction overhead).
    TRACE_BUILD_OVERHEAD = 4

    def __init__(self, config: TraceCacheConfig, ul2_hit_latency: int) -> None:
        self.config = config
        self.ul2_hit_latency = ul2_hit_latency
        self._banks = [
            _Bank(config.sets_per_bank, config.associativity)
            for _ in range(config.physical_banks)
        ]
        initial_enabled = list(range(config.physical_banks))
        self.mapping = BankMappingTable(config.mapping_table_entries, initial_enabled)
        self.hits = 0
        self.misses = 0
        self.hop_flushes = 0
        self.insertions = 0

    # ------------------------------------------------------------------
    # Gating control (driven by the bank hopping controller)
    # ------------------------------------------------------------------
    def set_enabled_banks(self, enabled_banks: Sequence[int]) -> None:
        """Gate every bank not in ``enabled_banks`` and flush newly gated ones."""
        enabled = set(enabled_banks)
        if not enabled:
            raise ValueError("at least one bank must stay enabled")
        for index, bank in enumerate(self._banks):
            should_gate = index not in enabled
            if should_gate and not bank.gated:
                self.hop_flushes += bank.flush()
            bank.gated = should_gate

    def enabled_banks(self) -> List[int]:
        return [i for i, bank in enumerate(self._banks) if not bank.gated]

    def gated_banks(self) -> List[int]:
        return [i for i, bank in enumerate(self._banks) if bank.gated]

    def set_mapping_shares(self, shares: Dict[int, int]) -> None:
        """Install a new combination-to-bank assignment (remap)."""
        for bank in shares:
            if not 0 <= bank < len(self._banks):
                raise ValueError(f"bank {bank} out of range")
            if self._banks[bank].gated and shares[bank] > 0:
                raise ValueError(f"cannot map accesses to gated bank {bank}")
        self.mapping.set_assignment(shares)

    def set_balanced_mapping(self) -> None:
        """Distribute the mapping evenly over the currently enabled banks."""
        self.mapping.set_balanced(self.enabled_banks())

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def bank_for(self, head_pc: int) -> int:
        """Bank the mapping function selects for a trace address."""
        return self.mapping.bank_for(head_pc)

    def access(self, head_pc: int) -> FetchResult:
        """Look up the trace starting at ``head_pc``; insert it on a miss."""
        bank_index = self.bank_for(head_pc)
        bank = self._banks[bank_index]
        if bank.gated:
            # The mapping table should never point at a gated bank; if it
            # does (e.g. right at a hop boundary) treat the access as a miss
            # into the first enabled bank.
            enabled = self.enabled_banks()
            bank_index = enabled[0]
            bank = self._banks[bank_index]
        if bank.lookup(head_pc):
            self.hits += 1
            return FetchResult(hit=True, bank=bank_index, latency=0, ul2_access=False)
        self.misses += 1
        self.insertions += 1
        bank.insert(head_pc)
        latency = self.ul2_hit_latency + self.TRACE_BUILD_OVERHEAD
        return FetchResult(hit=False, bank=bank_index, latency=latency, ul2_access=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0

    def occupancy(self) -> Dict[int, int]:
        """Number of valid lines per physical bank."""
        return {i: bank.occupancy() for i, bank in enumerate(self._banks)}

    def accesses_per_bank_share(self) -> Dict[int, float]:
        """Fraction of mapping-table entries pointing at each bank."""
        counts = self.mapping.entries_per_bank()
        total = sum(counts.values())
        return {bank: counts.get(bank, 0) / total for bank in range(len(self._banks))}

"""Inter-cluster interconnect.

Register values move between backends through bidirectional point-to-point
links (1 cycle per hop, 2 cycles from side to side of the chip); store
addresses are broadcast on the disambiguation buses so every cluster can
disambiguate locally.
"""

from repro.interconnect.p2p import PointToPointNetwork

__all__ = ["PointToPointNetwork"]

"""Point-to-point links between backend clusters.

The clusters are arranged in a line on the floorplan; a copy instruction
travelling from cluster *i* to cluster *j* takes ``|i - j|`` hops, one cycle
per hop (Table 1: two cycles from side to side of the chip for the
four-cluster arrangement with two clusters per side).  Two bidirectional
links exist; link occupancy is modelled per direction.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class PointToPointNetwork:
    """Hop-latency and occupancy model of the inter-cluster links."""

    def __init__(self, num_clusters: int, num_links: int, hop_latency: int) -> None:
        if num_clusters <= 0 or num_links <= 0 or hop_latency <= 0:
            raise ValueError("network parameters must be positive")
        self.num_clusters = num_clusters
        self.num_links = num_links
        self.hop_latency = hop_latency
        #: Next-free cycle of each link (links are shared by all hops).
        self._link_free: List[int] = [0] * num_links
        self.transfers = 0
        self.total_hops = 0
        self._traffic: Dict[Tuple[int, int], int] = {}

    def hops(self, source: int, destination: int) -> int:
        """Number of hops between two clusters (linear arrangement)."""
        self._check_cluster(source)
        self._check_cluster(destination)
        # The paper's floorplan places two clusters on each side of the chip;
        # a linear ordering 0-1-2-3 gives 2 hops from side to side.
        distance = abs(source - destination)
        return min(distance, 2) if distance else 0

    def _check_cluster(self, cluster: int) -> None:
        if not 0 <= cluster < self.num_clusters:
            raise ValueError(f"cluster {cluster} out of range")

    def transfer(self, cycle: int, source: int, destination: int) -> int:
        """Send a register value from ``source`` to ``destination``.

        Returns the cycle at which the value is available at the destination.
        Transfers within the same cluster are free.
        """
        hops = self.hops(source, destination)
        if hops == 0:
            return cycle
        # Pick the link that frees up first.
        link = min(range(self.num_links), key=lambda i: self._link_free[i])
        start = max(cycle, self._link_free[link])
        finish = start + hops * self.hop_latency
        self._link_free[link] = start + self.hop_latency  # pipelined per hop
        self.transfers += 1
        self.total_hops += hops
        key = (source, destination)
        self._traffic[key] = self._traffic.get(key, 0) + 1
        return finish

    def traffic_matrix(self) -> Dict[Tuple[int, int], int]:
        """Number of transfers per (source, destination) pair."""
        return dict(self._traffic)

    @property
    def average_hops(self) -> float:
        return self.total_hops / self.transfers if self.transfers else 0.0

"""Micro-op instruction set abstraction.

The paper's processor fetches IA32 instructions, translates them into
micro-ops and stores the micro-ops in a trace cache.  The reproduction works
directly at the micro-op level: :class:`~repro.isa.microops.MicroOp` is the
unit handled by every pipeline stage and by the workload generator.
"""

from repro.isa.microops import MicroOp, UopClass, OP_LATENCY, is_memory_class
from repro.isa.registers import RegisterSpace, RegisterClass, LogicalRegister

__all__ = [
    "MicroOp",
    "UopClass",
    "OP_LATENCY",
    "is_memory_class",
    "RegisterSpace",
    "RegisterClass",
    "LogicalRegister",
]

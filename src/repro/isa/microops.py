"""Micro-op definition and execution-latency table.

A :class:`MicroOp` is the static form of an instruction as stored in the
trace cache.  The simulator wraps it in a dynamic record
(:class:`repro.sim.uop.DynamicUop`) when it enters the pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.registers import LogicalRegister


class UopClass(enum.Enum):
    """Execution class of a micro-op.

    The class determines the functional unit used, the execution latency and
    the issue queue the micro-op waits in (integer, floating point, memory or
    copy queue — see Table 1 of the paper).
    """

    IALU = "ialu"
    IMUL = "imul"
    IDIV = "idiv"
    FPADD = "fpadd"
    FPMUL = "fpmul"
    FPDIV = "fpdiv"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    COPY = "copy"
    NOP = "nop"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UopClass.{self.name}"


#: Execution latency in cycles for each micro-op class.  Memory latencies are
#: *hit* latencies; cache misses add the UL2/memory latency on top (modelled
#: by the memory hierarchy, not by this table).
OP_LATENCY = {
    UopClass.IALU: 1,
    UopClass.IMUL: 3,
    UopClass.IDIV: 20,
    UopClass.FPADD: 4,
    UopClass.FPMUL: 6,
    UopClass.FPDIV: 24,
    UopClass.LOAD: 1,
    UopClass.STORE: 1,
    UopClass.BRANCH: 1,
    UopClass.COPY: 1,
    UopClass.NOP: 1,
}

_FP_CLASSES = frozenset({UopClass.FPADD, UopClass.FPMUL, UopClass.FPDIV})
_MEM_CLASSES = frozenset({UopClass.LOAD, UopClass.STORE})


def is_memory_class(uop_class: UopClass) -> bool:
    """Return whether ``uop_class`` occupies the memory order buffer."""
    return uop_class in _MEM_CLASSES


@dataclass
class MicroOp:
    """A single micro-op as produced by the IA32 decoder / trace builder.

    Attributes
    ----------
    pc:
        Address of the originating IA32 instruction (used for trace-cache
        indexing and branch prediction).
    uop_class:
        Execution class (see :class:`UopClass`).
    dest:
        Destination logical register, or ``None`` for stores, branches and
        nops.
    sources:
        Source logical registers (zero to two).
    mem_addr:
        Effective address for loads and stores, ``None`` otherwise.
    is_branch:
        Whether the micro-op terminates a basic block.
    branch_taken:
        Actual outcome for branches (the workload generator resolves
        branches; the predictor guesses them).
    mispredicted:
        Set by the workload generator when the branch predictor of the
        modelled program would mispredict this branch.  The timing simulator
        charges the re-steer penalty when it commits such a branch.
    end_of_trace:
        Marks the last micro-op of a trace-cache line candidate.
    """

    pc: int
    uop_class: UopClass
    dest: Optional[LogicalRegister] = None
    sources: Tuple[LogicalRegister, ...] = field(default_factory=tuple)
    mem_addr: Optional[int] = None
    is_branch: bool = False
    branch_taken: bool = False
    mispredicted: bool = False
    end_of_trace: bool = False

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ValueError("pc must be non-negative")
        if len(self.sources) > 2:
            raise ValueError("micro-ops have at most two source registers")
        if self.uop_class in _MEM_CLASSES and self.mem_addr is None:
            raise ValueError(f"{self.uop_class} requires a memory address")
        if self.uop_class is UopClass.BRANCH and not self.is_branch:
            # Branch micro-ops are always branches; keep the two fields
            # consistent so downstream code can rely on either.
            object.__setattr__(self, "is_branch", True)

    @property
    def is_fp(self) -> bool:
        """Whether the micro-op executes on the floating-point datapath."""
        return self.uop_class in _FP_CLASSES

    @property
    def is_load(self) -> bool:
        return self.uop_class is UopClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.uop_class is UopClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.uop_class in _MEM_CLASSES

    @property
    def latency(self) -> int:
        """Execution latency in cycles (cache-hit latency for memory ops)."""
        return OP_LATENCY[self.uop_class]

    def __str__(self) -> str:
        srcs = ",".join(str(s) for s in self.sources)
        dest = str(self.dest) if self.dest is not None else "-"
        return f"{self.uop_class.value} pc=0x{self.pc:x} {dest} <- [{srcs}]"

"""Logical register namespace of the micro-op ISA.

IA32 micro-ops reference a small architectural register file plus a set of
micro-architectural temporaries introduced by the IA32-to-micro-op cracking.
The exact encoding does not matter for the paper's experiments; what matters
is that the rename machinery sees a realistic number of logical registers
(the paper's availability table has "as many entries as number of logical
registers").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegisterClass(enum.Enum):
    """Class of a logical register (determines which register file it maps to)."""

    INT = "int"
    FP = "fp"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegisterClass.{self.name}"


@dataclass(frozen=True)
class LogicalRegister:
    """A logical (architectural or temporary) register.

    Attributes
    ----------
    index:
        Index within its register class, ``0 <= index < RegisterSpace`` size
        for the class.
    reg_class:
        Whether the register lives in the integer or floating-point space.
    """

    index: int
    reg_class: RegisterClass

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"register index must be non-negative, got {self.index}")

    @property
    def is_int(self) -> bool:
        return self.reg_class is RegisterClass.INT

    @property
    def is_fp(self) -> bool:
        return self.reg_class is RegisterClass.FP

    def __str__(self) -> str:
        prefix = "r" if self.is_int else "f"
        return f"{prefix}{self.index}"


class RegisterSpace:
    """The set of logical registers visible to the rename stage.

    Parameters
    ----------
    num_int:
        Number of integer logical registers (architectural + temporaries).
    num_fp:
        Number of floating-point logical registers.
    """

    DEFAULT_INT = 32
    DEFAULT_FP = 32

    def __init__(self, num_int: int = DEFAULT_INT, num_fp: int = DEFAULT_FP) -> None:
        if num_int <= 0 or num_fp <= 0:
            raise ValueError("register space sizes must be positive")
        self.num_int = num_int
        self.num_fp = num_fp
        self._int_regs = tuple(
            LogicalRegister(i, RegisterClass.INT) for i in range(num_int)
        )
        self._fp_regs = tuple(
            LogicalRegister(i, RegisterClass.FP) for i in range(num_fp)
        )

    @property
    def total(self) -> int:
        """Total number of logical registers (size of the availability table)."""
        return self.num_int + self.num_fp

    def int_reg(self, index: int) -> LogicalRegister:
        """Return the integer logical register ``index``."""
        return self._int_regs[index % self.num_int]

    def fp_reg(self, index: int) -> LogicalRegister:
        """Return the floating-point logical register ``index``."""
        return self._fp_regs[index % self.num_fp]

    def all_registers(self) -> tuple:
        """All logical registers, integer first then floating point."""
        return self._int_regs + self._fp_regs

    def flat_index(self, reg: LogicalRegister) -> int:
        """Map a register to a dense index in ``[0, total)``.

        Used to index availability tables and rename tables, which the paper
        sizes by the number of logical registers.
        """
        if reg.is_int:
            if reg.index >= self.num_int:
                raise ValueError(f"{reg} outside integer register space")
            return reg.index
        if reg.index >= self.num_fp:
            raise ValueError(f"{reg} outside FP register space")
        return self.num_int + reg.index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegisterSpace(num_int={self.num_int}, num_fp={self.num_fp})"

"""Memory hierarchy beyond the per-cluster L1 data caches.

The unified second-level cache (UL2) is shared by the instruction path (trace
builds on trace-cache misses) and the data path (L1 misses arriving over the
memory buses).  UL2 misses go to main memory with a fixed latency.
"""

from repro.memory.ul2 import UnifiedL2Cache
from repro.memory.bus import Bus, BusPool

__all__ = ["UnifiedL2Cache", "Bus", "BusPool"]

"""Shared buses: the memory buses and the disambiguation buses.

Table 1: two memory buses and two disambiguation buses, each with a 4-cycle
transfer latency plus a 1-cycle arbiter.  The model tracks per-bus occupancy:
a request is granted on the earliest bus that is free, and the transfer
occupies that bus for the transfer latency.
"""

from __future__ import annotations

from typing import List


class Bus:
    """A single bus with sequential occupancy."""

    def __init__(self, name: str, transfer_latency: int, arbitration_latency: int) -> None:
        if transfer_latency <= 0 or arbitration_latency < 0:
            raise ValueError("bus latencies must be positive")
        self.name = name
        self.transfer_latency = transfer_latency
        self.arbitration_latency = arbitration_latency
        self.next_free_cycle = 0
        self.transfers = 0

    def earliest_grant(self, cycle: int) -> int:
        """Cycle at which a request issued at ``cycle`` would start its transfer."""
        return max(cycle + self.arbitration_latency, self.next_free_cycle)

    def request(self, cycle: int) -> int:
        """Perform a transfer requested at ``cycle``; return its completion cycle."""
        start = self.earliest_grant(cycle)
        finish = start + self.transfer_latency
        self.next_free_cycle = finish
        self.transfers += 1
        return finish

    def utilization(self, total_cycles: int) -> float:
        """Fraction of cycles the bus spent transferring."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.transfers * self.transfer_latency / total_cycles)


class BusPool:
    """A pool of identical buses with earliest-available arbitration."""

    def __init__(self, name: str, count: int, transfer_latency: int, arbitration_latency: int) -> None:
        if count <= 0:
            raise ValueError("bus pool needs at least one bus")
        self.name = name
        self.buses: List[Bus] = [
            Bus(f"{name}{i}", transfer_latency, arbitration_latency) for i in range(count)
        ]

    def request(self, cycle: int) -> int:
        """Route the request to the bus that can serve it earliest."""
        best = min(self.buses, key=lambda bus: bus.earliest_grant(cycle))
        return best.request(cycle)

    @property
    def transfers(self) -> int:
        return sum(bus.transfers for bus in self.buses)

"""Unified second-level cache (UL2).

Table 1: 2 MB, 8-way set associative, 12-cycle hit latency, 500+ cycles on a
miss (main memory).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.sim.config import MemoryConfig


class UnifiedL2Cache:
    """Set-associative LRU model of the UL2 plus main-memory latency."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        capacity_bytes = config.ul2_kb * 1024
        self.line_bytes = config.line_bytes
        self.associativity = config.ul2_associativity
        self.num_sets = max(
            1, capacity_bytes // (self.line_bytes * self.associativity)
        )
        self._sets: Dict[int, OrderedDict] = {}
        self.hits = 0
        self.misses = 0
        #: Extra cycles added to every *miss* — the chip-level contention
        #: model's actuator (queueing behind co-runner traffic on the shared
        #: memory buses).  Zero by default, so an uncontended processor is
        #: byte-identical to the pre-contention model.
        self.extra_miss_latency = 0

    def _set_index(self, address: int) -> int:
        return (address // self.line_bytes) % self.num_sets

    def _line_address(self, address: int) -> int:
        return address // self.line_bytes

    def access(self, address: int) -> int:
        """Access the UL2; return the latency of the access.

        Hits cost ``ul2_hit_latency``; misses additionally pay the main
        memory latency plus any :attr:`extra_miss_latency` the chip-level
        contention model has imposed for this interval.  The line is
        allocated on a miss.
        """
        set_index = self._set_index(address)
        line = self._line_address(address)
        entries = self._sets.setdefault(set_index, OrderedDict())
        if line in entries:
            entries.move_to_end(line)
            self.hits += 1
            return self.config.ul2_hit_latency
        self.misses += 1
        if len(entries) >= self.associativity:
            entries.popitem(last=False)
        entries[line] = True
        return (
            self.config.ul2_hit_latency
            + self.config.ul2_miss_latency
            + self.extra_miss_latency
        )

    @property
    def hit_rate(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0

"""Power modelling (Section 2.1 of the paper).

The dynamic power model is Wattch-style: an activity counter is associated
with each functional block, and energy is the activity count multiplied by
the block's energy per operation.  Energies per operation and block areas are
derived from an analytical CACTI-like model of SRAM structures
(:mod:`repro.power.cacti`) evaluated at the paper's design point (65 nm,
10 GHz, 1.1 V).

Leakage power is modelled per block as a fraction (roughly 30%) of the
block's average dynamic power at ambient temperature, scaled exponentially
with temperature (:mod:`repro.power.leakage`).
"""

from repro.power.cacti import sram_area_mm2, sram_access_energy_nj
from repro.power.energy import BlockPowerParameters, build_block_parameters
from repro.power.leakage import LeakageModel
from repro.power.power_model import PowerModel, PowerBreakdown

__all__ = [
    "sram_area_mm2",
    "sram_access_energy_nj",
    "BlockPowerParameters",
    "build_block_parameters",
    "LeakageModel",
    "PowerModel",
    "PowerBreakdown",
]

"""Analytical area and energy model for SRAM-like structures.

The paper computes structure areas with an enhanced version of CACTI and
scales the remaining blocks from contemporary designs.  CACTI itself is a
large circuit-level tool; what the paper's experiments actually need from it
is the *scaling* of area and energy-per-access with capacity, associativity
and port count, so that, for example, each partition of a distributed rename
table is cheaper to access than the monolithic table it replaces.  The
analytical expressions below capture the accepted first-order scaling laws
for SRAM arrays at the 65 nm design point:

* area grows linearly with capacity and roughly quadratically with the
  number of ports (each port adds a wordline and a pair of bitlines per
  cell);
* energy per access grows with the square root of capacity (bitline/wordline
  length of a well-banked array), linearly with the access width and with
  the number of ports, and mildly with associativity (parallel tag/data
  reads).
"""

from __future__ import annotations

import math

#: Cell area of a single-ported 6T SRAM cell at 65 nm, in mm^2 per bit.
_CELL_AREA_MM2_PER_BIT = 0.52e-6
#: Additional relative area per extra port (wordline + bitline pair per cell).
_PORT_AREA_FACTOR = 0.45
#: Peripheral circuitry (decoders, sense amplifiers) overhead factor.
_PERIPHERY_FACTOR = 1.35

#: Energy constants (nJ) calibrated so that a 16 KB, 2-way, 2-port L1 cache
#: access costs ~0.20 nJ and a 2 MB, 8-way L2 access costs ~1.8 nJ at 65 nm,
#: 1.1 V — in line with published CACTI 3.0 numbers scaled to 65 nm.
_ENERGY_BASE_NJ = 0.012
_ENERGY_PER_SQRT_KB_NJ = 0.042
_ENERGY_PER_PORT_FACTOR = 0.18
_ENERGY_ASSOC_FACTOR = 0.05


def sram_area_mm2(
    capacity_bytes: float,
    read_ports: int = 1,
    write_ports: int = 1,
) -> float:
    """Silicon area (mm^2) of an SRAM array at 65 nm.

    Parameters
    ----------
    capacity_bytes:
        Storage capacity in bytes.
    read_ports / write_ports:
        Number of read and write ports (a single shared port is the minimum).
    """
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    ports = max(1, read_ports + write_ports)
    bits = capacity_bytes * 8
    cell_area = _CELL_AREA_MM2_PER_BIT * (1.0 + _PORT_AREA_FACTOR * (ports - 1)) ** 2
    return bits * cell_area * _PERIPHERY_FACTOR


def sram_access_energy_nj(
    capacity_bytes: float,
    access_bytes: float = 8.0,
    associativity: int = 1,
    read_ports: int = 1,
    write_ports: int = 1,
) -> float:
    """Energy (nJ) of one access to an SRAM structure at 65 nm, 1.1 V.

    Parameters
    ----------
    capacity_bytes:
        Total capacity of the structure.
    access_bytes:
        Width of one access in bytes (e.g. a 16-micro-op trace line).
    associativity:
        Number of ways probed in parallel.
    read_ports / write_ports:
        Total port count of the array (more ports mean longer lines and
        larger cells, hence more energy per access).
    """
    if capacity_bytes <= 0 or access_bytes <= 0:
        raise ValueError("capacity and access width must be positive")
    if associativity <= 0:
        raise ValueError("associativity must be positive")
    ports = max(1, read_ports + write_ports)
    capacity_kb = capacity_bytes / 1024.0
    # Bitline/wordline energy grows with the square root of capacity for a
    # well-banked array; width and associativity scale the number of bitlines
    # discharged; ports lengthen every line.
    energy = (
        _ENERGY_BASE_NJ
        + _ENERGY_PER_SQRT_KB_NJ * math.sqrt(capacity_kb) * (access_bytes / 8.0) ** 0.5
    )
    energy *= 1.0 + _ENERGY_ASSOC_FACTOR * (associativity - 1)
    energy *= 1.0 + _ENERGY_PER_PORT_FACTOR * (ports - 2) if ports > 2 else 1.0
    return energy


def cam_access_energy_nj(entries: int, entry_bits: int, ports: int = 1) -> float:
    """Energy (nJ) of one access to a CAM-like structure (issue queue, MOB).

    CAM matchlines dominate: energy grows linearly with the number of entries
    and the tag width.
    """
    if entries <= 0 or entry_bits <= 0:
        raise ValueError("entries and entry width must be positive")
    return 0.004 + 0.00045 * entries * (entry_bits / 8.0) * max(1, ports) ** 0.5


def cam_area_mm2(entries: int, entry_bits: int, ports: int = 1) -> float:
    """Area (mm^2) of a CAM-like structure at 65 nm."""
    if entries <= 0 or entry_bits <= 0:
        raise ValueError("entries and entry width must be positive")
    bits = entries * entry_bits
    # CAM cells are roughly twice the size of SRAM cells.
    return bits * 2.0 * _CELL_AREA_MM2_PER_BIT * (1.0 + _PORT_AREA_FACTOR * (ports - 1)) ** 2 * _PERIPHERY_FACTOR

"""Per-block area, energy-per-access and idle power.

This module turns a :class:`~repro.sim.config.ProcessorConfig` into the
per-block parameters the power and thermal models consume:

* the silicon **area** of every floorplan block (mm^2), derived from the
  CACTI-like analytical model for SRAM/CAM structures plus fixed estimates
  for random logic (decoder, functional units), scaled so the overall
  breakdown matches the paper: the frontend occupies roughly 20% of the
  processor area and the distributed rename/commit organization adds about
  3% of processor area;
* the **energy per access** of every block (nJ), which feeds the activity
  based dynamic power model — crucially, partitioned structures (the
  distributed RAT and ROB, the trace-cache banks) have fewer entries and/or
  fewer ports than their monolithic counterparts and therefore cost less per
  access, which is where the paper's power-density reduction comes from;
* a small **idle power** per block (clock distribution and always-on logic),
  proportional to area, which is suppressed for Vdd-gated trace-cache banks.

The absolute values are calibrated to the paper's design point (65 nm,
10 GHz, 1.1 V) so that the simulated baseline dissipates on the order of
100 W with roughly 30% of the dynamic power in the frontend (Section 1 of
the paper quotes 30% dynamic / 36% leakage for this microarchitecture).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.power import cacti
from repro.sim import blocks
from repro.sim.config import ProcessorConfig

#: Storage bytes per micro-op in the trace cache.
UOP_BYTES = 8
#: Bytes of one rename-table entry per backend cluster (physical register
#: pointer plus valid bit).
RAT_ENTRY_BYTES_PER_CLUSTER = 1.25
#: Bytes of one reorder-buffer entry.
ROB_ENTRY_BYTES = 16
#: Idle (clock tree and always-on logic) power density, W/mm^2.
IDLE_POWER_DENSITY_W_PER_MM2 = 0.14

#: Fixed-area blocks (random logic), mm^2.
_DECODER_AREA_MM2 = 3.2
_BRANCH_PREDICTOR_EXTRA_AREA_MM2 = 0.9
_ITLB_EXTRA_AREA_MM2 = 0.4
_INT_FU_AREA_MM2 = 2.6
_FP_FU_AREA_MM2 = 3.4
_DTLB_AREA_MM2 = 0.5

#: Fixed energies per operation (nJ) for random-logic blocks.
_DECODE_ENERGY_NJ = 0.18
_INT_FU_ENERGY_NJ = 0.16
_FP_FU_ENERGY_NJ = 0.55
_DTLB_ENERGY_NJ = 0.03
_ITLB_ENERGY_NJ = 0.03
_BP_ENERGY_NJ = 0.08


@dataclass(frozen=True)
class BlockPowerParameters:
    """Static power/area parameters of one floorplan block."""

    area_mm2: float
    energy_per_access_nj: float
    idle_power_w: float
    #: Whether the block can be Vdd-gated (trace-cache banks only).
    gateable: bool = False

    def __post_init__(self) -> None:
        if self.area_mm2 <= 0:
            raise ValueError("block area must be positive")
        if self.energy_per_access_nj < 0 or self.idle_power_w < 0:
            raise ValueError("energies and idle power must be non-negative")


def _idle_power(area_mm2: float) -> float:
    return area_mm2 * IDLE_POWER_DENSITY_W_PER_MM2


def _trace_cache_bank_parameters(config: ProcessorConfig) -> BlockPowerParameters:
    """One physical trace-cache bank.

    Trace caches read a whole trace line (16 micro-ops in decoded form) plus
    multiple tag/branch-mask fields per access, which makes them one of the
    most energy-hungry frontend structures (the Pentium 4's trace cache was a
    well-known hot spot); the 1.9x factor accounts for the decoded-micro-op
    width and the next-trace pointer logic read alongside the data array.
    """
    tc = config.frontend.trace_cache
    bank_bytes = tc.capacity_uops * UOP_BYTES / tc.active_banks
    line_bytes = tc.line_uops * UOP_BYTES
    area = cacti.sram_area_mm2(bank_bytes, read_ports=1, write_ports=1) * 1.25
    energy = 1.9 * cacti.sram_access_energy_nj(
        bank_bytes,
        access_bytes=line_bytes,
        associativity=tc.associativity,
        read_ports=1,
        write_ports=1,
    )
    return BlockPowerParameters(
        area_mm2=area,
        energy_per_access_nj=energy,
        idle_power_w=_idle_power(area),
        gateable=True,
    )


#: Energy of one access to a partition of a distributed structure, relative
#: to an access to the monolithic structure it replaces.  Each partition
#: holds the mappings / entries of only its own backends and is provisioned
#: for its share of the dispatch bandwidth, so "each access consumes less
#: than half the energy that [it] consumed in the centralized version"
#: (Section 4.1 of the paper).
DISTRIBUTED_ENERGY_PER_ACCESS_RATIO = 0.45
#: Total area of all partitions of a distributed structure relative to the
#: monolithic structure (duplicated decoders, sense amplifiers and control).
#: With this factor the distributed RAT+ROB add roughly 2-3% of processor
#: area, matching the paper's reported 3% overhead.
DISTRIBUTED_AREA_OVERHEAD_RATIO = 1.5


def _partition(monolithic: BlockPowerParameters, num_partitions: int) -> BlockPowerParameters:
    """Derive one partition's parameters from the monolithic structure."""
    if num_partitions <= 1:
        return monolithic
    area = monolithic.area_mm2 * DISTRIBUTED_AREA_OVERHEAD_RATIO / num_partitions
    energy = monolithic.energy_per_access_nj * DISTRIBUTED_ENERGY_PER_ACCESS_RATIO
    return BlockPowerParameters(area, energy, _idle_power(area), monolithic.gateable)


def _rat_parameters(config: ProcessorConfig, register_count: int = 64) -> BlockPowerParameters:
    """Rename-table partition parameters.

    The monolithic table has one column per backend cluster and enough ports
    to rename the full dispatch width.  When rename is distributed, each of
    the ``num_frontends`` partitions stores the mappings only for its own
    backends; its parameters are derived from the monolithic structure via
    the energy/area ratios documented above (Section 4.1 of the paper).
    """
    num_clusters = config.backend.num_clusters
    capacity = register_count * num_clusters * RAT_ENTRY_BYTES_PER_CLUSTER
    read_ports = 2 * config.frontend.dispatch_width
    write_ports = config.frontend.dispatch_width
    area = cacti.sram_area_mm2(capacity, read_ports, write_ports) * 5.5
    energy = 0.80 * cacti.sram_access_energy_nj(
        capacity,
        access_bytes=RAT_ENTRY_BYTES_PER_CLUSTER * num_clusters,
        associativity=1,
        read_ports=read_ports,
        write_ports=write_ports,
    )
    monolithic = BlockPowerParameters(area, energy, _idle_power(area))
    return _partition(monolithic, config.frontend.num_frontends)


def _rob_parameters(config: ProcessorConfig) -> BlockPowerParameters:
    """Reorder-buffer partition parameters (same reasoning as the RAT)."""
    entries = config.frontend.rob_entries
    capacity = entries * ROB_ENTRY_BYTES
    dispatch_ports = config.frontend.dispatch_width
    commit_ports = config.frontend.commit_width
    area = cacti.sram_area_mm2(capacity, dispatch_ports, commit_ports) * 2.2
    energy = 0.75 * cacti.sram_access_energy_nj(
        capacity,
        access_bytes=ROB_ENTRY_BYTES,
        associativity=1,
        read_ports=dispatch_ports,
        write_ports=commit_ports,
    )
    monolithic = BlockPowerParameters(area, energy, _idle_power(area))
    return _partition(monolithic, config.frontend.num_frontends)


def _branch_predictor_parameters(config: ProcessorConfig) -> BlockPowerParameters:
    table_bytes = config.frontend.branch_predictor_entries * 0.25 + 4096
    area = cacti.sram_area_mm2(table_bytes, 1, 1) + _BRANCH_PREDICTOR_EXTRA_AREA_MM2
    return BlockPowerParameters(area, _BP_ENERGY_NJ, _idle_power(area))


def _itlb_parameters() -> BlockPowerParameters:
    area = cacti.sram_area_mm2(1024, 1, 1) + _ITLB_EXTRA_AREA_MM2
    return BlockPowerParameters(area, _ITLB_ENERGY_NJ, _idle_power(area))


def _decoder_parameters() -> BlockPowerParameters:
    area = _DECODER_AREA_MM2
    return BlockPowerParameters(area, _DECODE_ENERGY_NJ, _idle_power(area))


def _register_file_parameters(num_registers: int, read_ports: int, write_ports: int, bytes_per_reg: float) -> BlockPowerParameters:
    capacity = num_registers * bytes_per_reg
    area = cacti.sram_area_mm2(capacity, read_ports, write_ports) * 1.6
    energy = cacti.sram_access_energy_nj(
        capacity,
        access_bytes=bytes_per_reg,
        associativity=1,
        read_ports=read_ports,
        write_ports=write_ports,
    )
    return BlockPowerParameters(area, energy, _idle_power(area))


def _scheduler_parameters(entries: int) -> BlockPowerParameters:
    area = cacti.cam_area_mm2(entries, 48, ports=2) * 2.0 + 0.35
    energy = cacti.cam_access_energy_nj(entries, 48, ports=2)
    return BlockPowerParameters(area, energy, _idle_power(area))


def _mob_parameters(entries: int) -> BlockPowerParameters:
    area = cacti.cam_area_mm2(entries, 52, ports=2) * 2.0 + 0.6
    energy = cacti.cam_access_energy_nj(entries, 52, ports=2)
    return BlockPowerParameters(area, energy, _idle_power(area))


def _dcache_parameters(config: ProcessorConfig) -> BlockPowerParameters:
    be = config.backend
    capacity = be.dcache_kb * 1024
    area = cacti.sram_area_mm2(capacity, 1, 1) * 1.4 + 0.3
    energy = cacti.sram_access_energy_nj(
        capacity,
        access_bytes=8,
        associativity=be.dcache_associativity,
        read_ports=1,
        write_ports=1,
    )
    return BlockPowerParameters(area, energy, _idle_power(area))


def _dtlb_parameters() -> BlockPowerParameters:
    return BlockPowerParameters(_DTLB_AREA_MM2, _DTLB_ENERGY_NJ, _idle_power(_DTLB_AREA_MM2))


def _fu_parameters(is_fp: bool) -> BlockPowerParameters:
    area = _FP_FU_AREA_MM2 if is_fp else _INT_FU_AREA_MM2
    energy = _FP_FU_ENERGY_NJ if is_fp else _INT_FU_ENERGY_NJ
    return BlockPowerParameters(area, energy, _idle_power(area))


def _ul2_parameters(config: ProcessorConfig) -> BlockPowerParameters:
    capacity = config.memory.ul2_kb * 1024
    area = cacti.sram_area_mm2(capacity, 1, 1) * 1.6
    energy = cacti.sram_access_energy_nj(
        capacity,
        access_bytes=config.memory.line_bytes,
        associativity=config.memory.ul2_associativity,
        read_ports=1,
        write_ports=1,
    )
    return BlockPowerParameters(area, energy, _idle_power(area))


def build_block_parameters(config: ProcessorConfig) -> Dict[str, BlockPowerParameters]:
    """Compute area / energy / idle-power parameters for every block."""
    params: Dict[str, BlockPowerParameters] = {}

    # Frontend ----------------------------------------------------------
    num_frontends = config.frontend.num_frontends
    rob = _rob_parameters(config)
    rat = _rat_parameters(config)
    for f in range(num_frontends):
        params[blocks.rob_block(f, num_frontends)] = rob
        params[blocks.rat_block(f, num_frontends)] = rat
    params[blocks.ITLB] = _itlb_parameters()
    params[blocks.DECODER] = _decoder_parameters()
    params[blocks.BRANCH_PREDICTOR] = _branch_predictor_parameters(config)
    tc_bank = _trace_cache_bank_parameters(config)
    for b in range(config.frontend.trace_cache.physical_banks):
        params[blocks.trace_cache_bank_block(b)] = tc_bank

    # Backend clusters ---------------------------------------------------
    be = config.backend
    irf = _register_file_parameters(
        be.int_registers, be.int_rf_read_ports, be.int_rf_write_ports, 8.0
    )
    fprf = _register_file_parameters(
        be.fp_registers, be.fp_rf_read_ports, be.fp_rf_write_ports, 10.0
    )
    int_sched = _scheduler_parameters(be.int_queue_entries)
    fp_sched = _scheduler_parameters(be.fp_queue_entries)
    copy_sched = _scheduler_parameters(be.copy_queue_entries)
    mob = _mob_parameters(be.mem_queue_entries)
    dcache = _dcache_parameters(config)
    dtlb = _dtlb_parameters()
    int_fu = _fu_parameters(is_fp=False)
    fp_fu = _fu_parameters(is_fp=True)
    for c in range(be.num_clusters):
        params[blocks.cluster_block(c, blocks.CLUSTER_INT_RF)] = irf
        params[blocks.cluster_block(c, blocks.CLUSTER_FP_RF)] = fprf
        params[blocks.cluster_block(c, blocks.CLUSTER_INT_SCHED)] = int_sched
        params[blocks.cluster_block(c, blocks.CLUSTER_FP_SCHED)] = fp_sched
        params[blocks.cluster_block(c, blocks.CLUSTER_COPY_SCHED)] = copy_sched
        params[blocks.cluster_block(c, blocks.CLUSTER_MOB)] = mob
        params[blocks.cluster_block(c, blocks.CLUSTER_DCACHE)] = dcache
        params[blocks.cluster_block(c, blocks.CLUSTER_DTLB)] = dtlb
        params[blocks.cluster_block(c, blocks.CLUSTER_INT_FU)] = int_fu
        params[blocks.cluster_block(c, blocks.CLUSTER_FP_FU)] = fp_fu

    # UL2 -----------------------------------------------------------------
    params[blocks.UL2] = _ul2_parameters(config)

    # Sanity: every block of the configuration must have parameters.
    missing = set(blocks.all_blocks(config)) - set(params)
    if missing:
        raise RuntimeError(f"blocks without power parameters: {sorted(missing)}")
    return params


def total_area_mm2(params: Dict[str, BlockPowerParameters]) -> float:
    """Total processor area covered by the parameterized blocks."""
    return sum(p.area_mm2 for p in params.values())


def area_by_group(config: ProcessorConfig, params: Dict[str, BlockPowerParameters]) -> Dict[str, float]:
    """Area per figure-level block group (Processor / Frontend / Backend / UL2...)."""
    groups = blocks.block_groups(config)
    return {
        name: sum(params[b].area_mm2 for b in members)
        for name, members in groups.items()
    }

"""Temperature-dependent leakage power (Section 2.1 of the paper).

For each functional block, leakage power is modelled as the block's *average
dynamic power* multiplied by a factor that depends on temperature: roughly
30% at the ambient, inside-box temperature of 45 C, growing exponentially
with temperature (the paper establishes an exponential dependence between
temperature and leakage).

The "average dynamic power" of a block is tracked as a running average over
the simulation (the paper obtains it from a 50 M-instruction profiling run);
Vdd-gated blocks leak nothing.

The model is array-backed: the running dynamic-power average lives in a
NumPy vector laid out by a :class:`~repro.sim.block_index.BlockIndex`, and
the per-interval hot path (:meth:`LeakageModel.observe_dynamic_power_array`,
:meth:`LeakageModel.leakage_power_array`) never builds a per-block
dictionary.  The original mapping-based methods remain as thin wrappers for
the public boundary and the tests.

The per-block exponential is evaluated with :func:`math.exp` (not
``np.exp``) on purpose: the golden-metric equivalence suite locks the
simulator's output bit-for-bit against the original scalar implementation,
and the two exponentials can differ in the last ulp.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.sim.block_index import BlockIndex
from repro.sim.config import PowerConfig


class LeakageModel:
    """Per-block leakage as an exponential function of temperature."""

    def __init__(self, config: PowerConfig, block_names: Iterable[str]) -> None:
        self.config = config
        self.index = BlockIndex(block_names)
        self._blocks = self.index.names
        self._dynamic_power_sum = np.zeros(len(self.index))
        self._intervals = 0

    # ------------------------------------------------------------------
    # Running average of dynamic power
    # ------------------------------------------------------------------
    def observe_dynamic_power_array(self, dynamic_power: np.ndarray) -> None:
        """Update the running average from a block-index-ordered vector."""
        self._dynamic_power_sum += dynamic_power
        self._intervals += 1

    def observe_dynamic_power(self, dynamic_power: Mapping[str, float]) -> None:
        """Update the running average of per-block dynamic power."""
        self.observe_dynamic_power_array(self.index.array_from_mapping(dynamic_power))

    def nominal_dynamic_power(self, block: str) -> float:
        """Running-average dynamic power of ``block`` (W)."""
        if self._intervals == 0:
            return 0.0
        return float(self._dynamic_power_sum[self.index.position(block)]) / self._intervals

    def seed_nominal_power_array(self, dynamic_power: np.ndarray) -> None:
        """Seed the running average (used by the warm-up steady-state solve)."""
        self._dynamic_power_sum = np.array(dynamic_power, dtype=float)
        self._intervals = 1

    def seed_nominal_power(self, dynamic_power: Mapping[str, float]) -> None:
        """Seed the running average from a per-block mapping."""
        self.seed_nominal_power_array(self.index.array_from_mapping(dynamic_power))

    # ------------------------------------------------------------------
    #: Temperature rise over ambient beyond which the exponential is clamped.
    #: Real silicon would long have hit the thermal-emergency limit (381 K);
    #: the clamp only guards the solver against numerical runaway when no
    #: emergency mechanism is modelled (the paper disables them too).
    MAX_DELTA_CELSIUS = 120.0

    def leakage_factor(self, temperature_celsius: float) -> float:
        """Leakage as a fraction of nominal dynamic power at a temperature."""
        delta = temperature_celsius - self.config.ambient_celsius
        delta = min(delta, self.MAX_DELTA_CELSIUS)
        return self.config.leakage_fraction_at_ambient * math.exp(
            self.config.leakage_temperature_coefficient * delta
        )

    def leakage_power_array(
        self,
        temperatures: np.ndarray,
        gated_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-block leakage power (W) from a block-index-ordered temperature vector."""
        intervals = self._intervals
        if intervals == 0:
            return np.zeros(len(self._blocks))
        # The loop runs on plain Python floats (``tolist``) — bit-identical
        # to NumPy scalar arithmetic (both are IEEE doubles) but several
        # times faster for the ~50 blocks of a floorplan.
        sums = self._dynamic_power_sum.tolist()
        temps = temperatures.tolist() if isinstance(temperatures, np.ndarray) else list(temperatures)
        gated = gated_mask.tolist() if gated_mask is not None else None
        ambient = self.config.ambient_celsius
        fraction = self.config.leakage_fraction_at_ambient
        coefficient = self.config.leakage_temperature_coefficient
        max_delta = self.MAX_DELTA_CELSIUS
        exp = math.exp
        out = [0.0] * len(sums)
        for i, nominal_sum in enumerate(sums):
            if gated is not None and gated[i]:
                continue
            delta = min(temps[i] - ambient, max_delta)
            out[i] = (nominal_sum / intervals) * (fraction * exp(coefficient * delta))
        return np.array(out)

    def leakage_power_batch(
        self,
        temperatures: np.ndarray,
        gated_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`leakage_power_array` over stacked temperature rows.

        ``temperatures`` is a ``(..., blocks)`` array whose trailing axis is
        block-index order; the result has the same shape.  Evaluates the
        exponential with :func:`np.exp` in one pass — the *documented-
        tolerance* kernel: each element matches the scalar :func:`math.exp`
        loop of :meth:`leakage_power_array` to within the last ulp of an
        IEEE double (the two libm paths may round differently), so callers
        that are tolerance-locked (batched trace replay, screening) use
        this, while the exact/coupled paths keep the scalar bit-exact
        kernel.  ``gated_mask`` broadcasts against the temperature shape.
        """
        temperatures = np.asarray(temperatures, dtype=float)
        if self._intervals == 0:
            return np.zeros(temperatures.shape)
        nominal = self._dynamic_power_sum / self._intervals
        out = batched_leakage_kernel(
            nominal,
            temperatures,
            ambient_celsius=self.config.ambient_celsius,
            fraction_at_ambient=self.config.leakage_fraction_at_ambient,
            temperature_coefficient=self.config.leakage_temperature_coefficient,
        )
        if gated_mask is not None:
            out = np.where(gated_mask, 0.0, out)
        return out

    def leakage_power(
        self,
        temperatures: Mapping[str, float],
        gated_blocks: Optional[Iterable[str]] = None,
    ) -> Dict[str, float]:
        """Per-block leakage power (W) at the given block temperatures."""
        temps = self.index.array_from_mapping(
            temperatures, default=self.config.ambient_celsius
        )
        mask = self.index.mask(gated_blocks) if gated_blocks else None
        return self.index.mapping_from_array(self.leakage_power_array(temps, mask))


def batched_leakage_kernel(
    nominal_power: np.ndarray,
    temperatures: np.ndarray,
    *,
    ambient_celsius,
    fraction_at_ambient,
    temperature_coefficient,
    max_delta_celsius: float = LeakageModel.MAX_DELTA_CELSIUS,
) -> np.ndarray:
    """The ``np.exp`` leakage kernel over arbitrary stacked shapes.

    ``leakage = nominal * (fraction * exp(coefficient * min(T - ambient,
    max_delta)))`` — elementwise, with the same association order as the
    scalar loop in :meth:`LeakageModel.leakage_power_array`, so the only
    divergence from the bit-exact kernel is ``np.exp`` vs :func:`math.exp`
    (last-ulp rounding).  Every argument broadcasts: the batched group
    replay engine passes a ``(cells, blocks)`` temperature matrix with
    per-cell ``(cells, 1)`` column vectors for the three leakage
    parameters, evaluating a whole sweep's leakage in one pass.
    """
    delta = np.minimum(
        np.asarray(temperatures, dtype=float) - ambient_celsius,
        max_delta_celsius,
    )
    return nominal_power * (
        fraction_at_ambient * np.exp(temperature_coefficient * delta)
    )

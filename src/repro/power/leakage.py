"""Temperature-dependent leakage power (Section 2.1 of the paper).

For each functional block, leakage power is modelled as the block's *average
dynamic power* multiplied by a factor that depends on temperature: roughly
30% at the ambient, inside-box temperature of 45 C, growing exponentially
with temperature (the paper establishes an exponential dependence between
temperature and leakage).

The "average dynamic power" of a block is tracked as a running average over
the simulation (the paper obtains it from a 50 M-instruction profiling run);
Vdd-gated blocks leak nothing.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional

from repro.sim.config import PowerConfig


class LeakageModel:
    """Per-block leakage as an exponential function of temperature."""

    def __init__(self, config: PowerConfig, block_names: Iterable[str]) -> None:
        self.config = config
        self._blocks = tuple(block_names)
        self._dynamic_power_sum: Dict[str, float] = {b: 0.0 for b in self._blocks}
        self._intervals = 0

    # ------------------------------------------------------------------
    def observe_dynamic_power(self, dynamic_power: Mapping[str, float]) -> None:
        """Update the running average of per-block dynamic power."""
        for block in self._blocks:
            self._dynamic_power_sum[block] += dynamic_power.get(block, 0.0)
        self._intervals += 1

    def nominal_dynamic_power(self, block: str) -> float:
        """Running-average dynamic power of ``block`` (W)."""
        if self._intervals == 0:
            return 0.0
        return self._dynamic_power_sum[block] / self._intervals

    def seed_nominal_power(self, dynamic_power: Mapping[str, float]) -> None:
        """Seed the running average (used by the warm-up steady-state solve)."""
        for block in self._blocks:
            self._dynamic_power_sum[block] = dynamic_power.get(block, 0.0)
        self._intervals = 1

    # ------------------------------------------------------------------
    #: Temperature rise over ambient beyond which the exponential is clamped.
    #: Real silicon would long have hit the thermal-emergency limit (381 K);
    #: the clamp only guards the solver against numerical runaway when no
    #: emergency mechanism is modelled (the paper disables them too).
    MAX_DELTA_CELSIUS = 120.0

    def leakage_factor(self, temperature_celsius: float) -> float:
        """Leakage as a fraction of nominal dynamic power at a temperature."""
        delta = temperature_celsius - self.config.ambient_celsius
        delta = min(delta, self.MAX_DELTA_CELSIUS)
        return self.config.leakage_fraction_at_ambient * math.exp(
            self.config.leakage_temperature_coefficient * delta
        )

    def leakage_power(
        self,
        temperatures: Mapping[str, float],
        gated_blocks: Optional[Iterable[str]] = None,
    ) -> Dict[str, float]:
        """Per-block leakage power (W) at the given block temperatures."""
        gated = set(gated_blocks or ())
        leakage: Dict[str, float] = {}
        for block in self._blocks:
            if block in gated:
                leakage[block] = 0.0
                continue
            nominal = self.nominal_dynamic_power(block)
            temperature = temperatures.get(block, self.config.ambient_celsius)
            leakage[block] = nominal * self.leakage_factor(temperature)
        return leakage

"""Activity-based dynamic power plus leakage (the paper's power model).

``P_dynamic(block) = accesses_per_cycle(block) * energy_per_access(block) * f_clock``

with an additional always-on idle component (clock distribution) proportional
to the block's area.  Vdd-gated blocks (trace-cache banks under bank hopping
or blank silicon) dissipate neither dynamic nor idle nor leakage power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from repro.power.energy import BlockPowerParameters
from repro.power.leakage import LeakageModel
from repro.sim.config import PowerConfig


@dataclass
class PowerBreakdown:
    """Per-block dynamic and leakage power of one thermal interval."""

    dynamic: Dict[str, float]
    leakage: Dict[str, float]

    def total(self) -> float:
        return sum(self.dynamic.values()) + sum(self.leakage.values())

    def total_dynamic(self) -> float:
        return sum(self.dynamic.values())

    def total_leakage(self) -> float:
        return sum(self.leakage.values())

    def per_block_total(self) -> Dict[str, float]:
        return {
            block: self.dynamic[block] + self.leakage.get(block, 0.0)
            for block in self.dynamic
        }


class PowerModel:
    """Computes per-block power from per-interval activity counts."""

    def __init__(
        self,
        config: PowerConfig,
        block_parameters: Mapping[str, BlockPowerParameters],
    ) -> None:
        self.config = config
        self.block_parameters = dict(block_parameters)
        self.leakage_model = LeakageModel(config, self.block_parameters.keys())
        self._frequency_hz = config.frequency_ghz * 1e9

    # ------------------------------------------------------------------
    def dynamic_power(
        self,
        activity_counts: Mapping[str, int],
        cycles: int,
        gated_blocks: Optional[Iterable[str]] = None,
    ) -> Dict[str, float]:
        """Per-block dynamic power (W) for an interval of ``cycles`` cycles."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        gated = set(gated_blocks or ())
        power: Dict[str, float] = {}
        for block, params in self.block_parameters.items():
            if block in gated:
                power[block] = 0.0
                continue
            accesses = activity_counts.get(block, 0)
            access_rate = accesses / cycles
            switching = access_rate * params.energy_per_access_nj * 1e-9 * self._frequency_hz
            power[block] = switching + params.idle_power_w
        return power

    def compute(
        self,
        activity_counts: Mapping[str, int],
        cycles: int,
        temperatures: Mapping[str, float],
        gated_blocks: Optional[Iterable[str]] = None,
    ) -> PowerBreakdown:
        """Dynamic + leakage power for one interval.

        The leakage model's running average of dynamic power is updated with
        this interval's dynamic power before leakage is evaluated.
        """
        dynamic = self.dynamic_power(activity_counts, cycles, gated_blocks)
        self.leakage_model.observe_dynamic_power(dynamic)
        leakage = self.leakage_model.leakage_power(temperatures, gated_blocks)
        return PowerBreakdown(dynamic=dynamic, leakage=leakage)

    # ------------------------------------------------------------------
    def nominal_power(
        self,
        activity_counts: Mapping[str, int],
        cycles: int,
        gated_blocks: Optional[Iterable[str]] = None,
    ) -> Dict[str, float]:
        """Nominal per-block power at ambient temperature (for thermal warm-up).

        The paper starts every simulation with the processor already warm:
        it assumes the processor has been dissipating its nominal average
        dynamic power (plus the corresponding leakage) for a long time.  This
        helper returns dynamic power plus ambient-temperature leakage and
        seeds the leakage model's nominal power.
        """
        dynamic = self.dynamic_power(activity_counts, cycles, gated_blocks)
        self.leakage_model.seed_nominal_power(dynamic)
        ambient = {block: self.config.ambient_celsius for block in dynamic}
        leakage = self.leakage_model.leakage_power(ambient, gated_blocks)
        return {block: dynamic[block] + leakage[block] for block in dynamic}

"""Activity-based dynamic power plus leakage (the paper's power model).

``P_dynamic(block) = accesses_per_cycle(block) * energy_per_access(block) * f_clock``

with an additional always-on idle component (clock distribution) proportional
to the block's area.  Vdd-gated blocks (trace-cache banks under bank hopping
or blank silicon) dissipate neither dynamic nor idle nor leakage power.

The model is array-backed: per-block energies and idle powers are
precomputed into NumPy vectors laid out by the model's
:class:`~repro.sim.block_index.BlockIndex`, and the per-interval hot path
(:meth:`PowerModel.dynamic_power_array`, :meth:`PowerModel.compute_arrays`)
turns an activity-count vector into dynamic and leakage power vectors
without allocating a single per-block dictionary.  The original
mapping-based methods remain as wrappers over the same arithmetic, so the
dict and array paths cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.power.energy import BlockPowerParameters
from repro.power.leakage import LeakageModel
from repro.sim.block_index import BlockIndex
from repro.sim.config import PowerConfig


@dataclass
class PowerBreakdown:
    """Per-block dynamic and leakage power of one thermal interval."""

    dynamic: Dict[str, float]
    leakage: Dict[str, float]

    def total(self) -> float:
        return sum(self.dynamic.values()) + sum(self.leakage.values())

    def total_dynamic(self) -> float:
        return sum(self.dynamic.values())

    def total_leakage(self) -> float:
        return sum(self.leakage.values())

    def per_block_total(self) -> Dict[str, float]:
        return {
            block: self.dynamic[block] + self.leakage.get(block, 0.0)
            for block in self.dynamic
        }


class PowerModel:
    """Computes per-block power from per-interval activity counts."""

    def __init__(
        self,
        config: PowerConfig,
        block_parameters: Mapping[str, BlockPowerParameters],
    ) -> None:
        self.config = config
        self.block_parameters = dict(block_parameters)
        self.index = BlockIndex(self.block_parameters.keys())
        self.leakage_model = LeakageModel(config, self.index.names)
        self._frequency_hz = config.frequency_ghz * 1e9
        self._energy_per_access_nj = np.array(
            [p.energy_per_access_nj for p in self.block_parameters.values()]
        )
        self._idle_power_w = np.array(
            [p.idle_power_w for p in self.block_parameters.values()]
        )

    # ------------------------------------------------------------------
    # Array fast path
    # ------------------------------------------------------------------
    def dynamic_power_array(
        self,
        activity_counts: np.ndarray,
        cycles,
        gated_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-block dynamic power (W) from a block-index-ordered count vector.

        The expression keeps the scalar implementation's exact association
        order (``((rate * e_nJ) * 1e-9) * f + idle``) so the vectorized path
        is bit-identical to the historical dict path, which the golden-metric
        suite locks down.

        ``cycles`` is the interval's cycle count — a scalar, or (for a
        composite multi-core die whose cores' final intervals run different
        lengths) a per-block vector in block-index order.  Dividing by a
        vector whose entries all equal the scalar is bit-identical to the
        scalar division, which is what keeps a 1-core chip exact.
        """
        if isinstance(cycles, np.ndarray):
            if (cycles <= 0).any():
                raise ValueError("cycles must be positive")
        elif cycles <= 0:
            raise ValueError("cycles must be positive")
        access_rate = activity_counts / cycles
        power = (
            access_rate * self._energy_per_access_nj * 1e-9 * self._frequency_hz
            + self._idle_power_w
        )
        if gated_mask is not None:
            power[gated_mask] = 0.0
        return power

    def dynamic_power_matrix(
        self,
        activity_counts: np.ndarray,
        cycles: np.ndarray,
        gated_masks: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Stacked dynamic power (W) for many intervals at once.

        ``activity_counts`` is an (intervals x blocks) count matrix (one
        activity-trace row per interval, block-index order) and ``cycles``
        the per-interval cycle counts — a length-``intervals`` vector, or an
        (intervals x blocks) matrix when different blocks of an interval ran
        different cycle counts (a multi-core die whose cores finish at
        different times); ``gated_masks`` optionally gates blocks per
        interval with a boolean matrix of the same shape.  Every element is
        computed with exactly the scalar association order of
        :meth:`dynamic_power_array` — NumPy elementwise broadcasting does
        not reassociate — so row ``i`` is bit-identical to the per-interval
        call, which the trace-replay equivalence suite relies on.
        """
        if np.any(cycles <= 0):
            raise ValueError("cycles must be positive")
        cycles = np.asarray(cycles)
        access_rate = activity_counts / (
            cycles[:, None] if cycles.ndim == 1 else cycles
        )
        power = (
            access_rate * self._energy_per_access_nj * 1e-9 * self._frequency_hz
            + self._idle_power_w
        )
        if gated_masks is not None:
            power[gated_masks] = 0.0
        return power

    def compute_arrays(
        self,
        activity_counts: np.ndarray,
        cycles,
        temperatures: np.ndarray,
        gated_mask: Optional[np.ndarray] = None,
        dynamic_scale: Optional[np.ndarray] = None,
        leakage_scale: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dynamic and leakage power vectors (W) for one interval (the hot path).

        Like :meth:`compute`, the leakage model's running average of dynamic
        power is updated with this interval's dynamic power before leakage is
        evaluated.  ``cycles`` may be a scalar or a per-block vector (see
        :meth:`dynamic_power_array`).

        ``dynamic_scale`` / ``leakage_scale`` are optional per-block
        multiplier vectors (block-index order, dimensionless) supplied by the
        DTM subsystem's DVFS actuators: dynamic power scales as
        ``(f/f0) * (V/V0)^2`` and leakage as ``V/V0``.  The dynamic scale is
        applied *before* the leakage model observes the interval — a scaled
        domain's nominal-power average reflects the power it actually
        dissipated.  When both are ``None`` (the default) the arithmetic is
        bit-identical to the pre-DTM pipeline, which the golden-metric suite
        locks down.
        """
        dynamic = self.dynamic_power_array(activity_counts, cycles, gated_mask)
        if dynamic_scale is not None:
            dynamic = dynamic * dynamic_scale
        self.leakage_model.observe_dynamic_power_array(dynamic)
        leakage = self.leakage_model.leakage_power_array(temperatures, gated_mask)
        if leakage_scale is not None:
            leakage = leakage * leakage_scale
        return dynamic, leakage

    # ------------------------------------------------------------------
    # Mapping boundary (wrappers over the array path)
    # ------------------------------------------------------------------
    def dynamic_power(
        self,
        activity_counts: Mapping[str, int],
        cycles: int,
        gated_blocks: Optional[Iterable[str]] = None,
    ) -> Dict[str, float]:
        """Per-block dynamic power (W) for an interval of ``cycles`` cycles."""
        counts = self.index.array_from_mapping(activity_counts)
        mask = self.index.mask(gated_blocks) if gated_blocks else None
        return self.index.mapping_from_array(
            self.dynamic_power_array(counts, cycles, mask)
        )

    def compute(
        self,
        activity_counts: Mapping[str, int],
        cycles: int,
        temperatures: Mapping[str, float],
        gated_blocks: Optional[Iterable[str]] = None,
    ) -> PowerBreakdown:
        """Dynamic + leakage power for one interval.

        The leakage model's running average of dynamic power is updated with
        this interval's dynamic power before leakage is evaluated.
        """
        counts = self.index.array_from_mapping(activity_counts)
        temps = self.index.array_from_mapping(
            temperatures, default=self.config.ambient_celsius
        )
        mask = self.index.mask(gated_blocks) if gated_blocks else None
        dynamic, leakage = self.compute_arrays(counts, cycles, temps, mask)
        return PowerBreakdown(
            dynamic=self.index.mapping_from_array(dynamic),
            leakage=self.index.mapping_from_array(leakage),
        )

    # ------------------------------------------------------------------
    def nominal_power(
        self,
        activity_counts: Mapping[str, int],
        cycles: int,
        gated_blocks: Optional[Iterable[str]] = None,
    ) -> Dict[str, float]:
        """Nominal per-block power at ambient temperature (for thermal warm-up).

        The paper starts every simulation with the processor already warm:
        it assumes the processor has been dissipating its nominal average
        dynamic power (plus the corresponding leakage) for a long time.  This
        helper returns dynamic power plus ambient-temperature leakage and
        seeds the leakage model's nominal power.
        """
        counts = self.index.array_from_mapping(activity_counts)
        mask = self.index.mask(gated_blocks) if gated_blocks else None
        dynamic = self.dynamic_power_array(counts, cycles, mask)
        self.leakage_model.seed_nominal_power_array(dynamic)
        ambient = np.full(len(self.index), self.config.ambient_celsius)
        leakage = self.leakage_model.leakage_power_array(ambient, mask)
        return self.index.mapping_from_array(dynamic + leakage)

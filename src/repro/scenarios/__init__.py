"""Named workload scenarios beyond the 26 SPEC2000 profiles.

Where :mod:`repro.workloads.profiles` reproduces the paper's benchmark
suite, this package curates *scenarios*: synthetic workloads that each probe
one corner of the thermal design space — a maximum-power virus, pathological
phase alternation, a deliberately imbalanced cluster, trace-cache thrashing,
and so on.  They are the workload axis of DTM policy sweeps
(``Campaign(..., dtm_policies=...)``, ``repro-campaign run --figure dtm``).

A scenario is just a named :class:`~repro.workloads.profiles.WorkloadProfile`
wrapped with documentation (:class:`Scenario`), so everything that accepts a
benchmark name — :class:`~repro.campaign.ExperimentSettings`,
:class:`~repro.workloads.generator.TraceGenerator`, the CLI — accepts a
scenario name too: :func:`repro.workloads.profiles.get_profile` falls back
to this registry.  See ``docs/scenarios.md`` for the full catalogue.
"""

from repro.scenarios.library import (
    SCENARIO_NAMES,
    SCENARIO_PROFILES,
    SCENARIOS,
    Scenario,
    get_scenario,
)

__all__ = [
    "SCENARIO_NAMES",
    "SCENARIO_PROFILES",
    "SCENARIOS",
    "Scenario",
    "get_scenario",
]

"""The named workload scenarios.

Every scenario is a :class:`~repro.workloads.profiles.WorkloadProfile`
pushed to a corner of the workload space the SPEC2000 profiles only brush:
maximum-power viruses, pathological phase behaviour, deliberately imbalanced
cluster load, cache and trace-cache thrashing.  The profile's ``name`` *is*
the scenario name, so the deterministic trace seeding
(``zlib.crc32(name) ^ seed``), the campaign cache keys and the CLI all work
on scenarios exactly as they do on benchmarks.

The parameters bend the same knobs the SPEC profiles use (see
``repro/workloads/profiles.py`` for the meaning and units of every field);
the comments on each scenario say which blocks it is designed to stress and
why a DTM policy should care.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class Scenario:
    """One named workload scenario.

    Attributes
    ----------
    name:
        Registry key; also the generated trace's benchmark name.
    title:
        One-line human-readable summary (CLI listings, docs).
    stresses:
        The block group or behaviour the scenario is designed to stress,
        e.g. ``"TraceCache"`` or ``"phase transitions"``.
    profile:
        The trace-generator profile, with ``profile.name == name``.
    """

    name: str
    title: str
    stresses: str
    profile: WorkloadProfile

    def __post_init__(self) -> None:
        if self.profile.name != self.name:
            raise ValueError(
                f"scenario {self.name!r} wraps a profile named "
                f"{self.profile.name!r}; the names must match"
            )


def _scenario(name: str, title: str, stresses: str, is_fp: bool, **kwargs) -> Scenario:
    return Scenario(
        name=name,
        title=title,
        stresses=stresses,
        profile=WorkloadProfile(name=name, is_fp=is_fp, **kwargs),
    )


_SCENARIOS: Tuple[Scenario, ...] = (
    # A single tiny loop that lives in the trace cache and never misses:
    # the frontend (trace cache + decoder) runs flat out, which is the
    # paper's motivating hotspot.
    _scenario(
        "hot_loop",
        "one tiny loop, near-perfect trace-cache reuse",
        "Frontend",
        is_fp=False,
        load_fraction=0.15, store_fraction=0.05, branch_fraction=0.10,
        branch_taken_rate=0.95, branch_misprediction_rate=0.005,
        fp_fraction=0.00, long_op_fraction=0.01,
        mean_dependency_distance=6.0, working_set_kb=8,
        spatial_locality=0.95, loop_body_uops=32, num_hot_loops=1,
        phase_length_uops=100_000,
    ),
    # The maximum-power workload: high ILP (long dependency distances),
    # both datapaths busy, no stalls from memory or mispredictions.  The
    # whole die heats; DTM policies must engage hardest here.
    _scenario(
        "thermal_virus",
        "maximum sustained activity on every datapath",
        "Processor (peak power)",
        is_fp=True,
        load_fraction=0.16, store_fraction=0.06, branch_fraction=0.06,
        branch_taken_rate=0.95, branch_misprediction_rate=0.002,
        fp_fraction=0.50, long_op_fraction=0.04,
        mean_dependency_distance=8.0, working_set_kb=8,
        spatial_locality=0.95, loop_body_uops=48, num_hot_loops=2,
        phase_length_uops=50_000,
    ),
    # mcf taken to the extreme: a working set far beyond the UL2 with almost
    # no locality, so the core idles on 500-cycle memory latencies and the
    # UL2 becomes the relatively hottest structure.
    _scenario(
        "memory_bound",
        "giant working set, near-random access, memory-latency bound",
        "UL2 / memory path",
        is_fp=False,
        load_fraction=0.38, store_fraction=0.10, branch_fraction=0.12,
        branch_taken_rate=0.55, branch_misprediction_rate=0.05,
        fp_fraction=0.00, long_op_fraction=0.01,
        mean_dependency_distance=2.2, working_set_kb=262_144,
        spatial_locality=0.10, loop_body_uops=40, num_hot_loops=4,
        phase_length_uops=4000,
    ),
    # Two hot regions and a short phase length: activity ping-pongs between
    # them, producing the bursty frontend behaviour the thermal-aware
    # mapping reacts to and the worst case for trigger/hysteresis tuning.
    _scenario(
        "phase_alternating",
        "rapid alternation between a hot and a cool program phase",
        "phase transitions",
        is_fp=True,
        load_fraction=0.22, store_fraction=0.08, branch_fraction=0.10,
        branch_taken_rate=0.75, branch_misprediction_rate=0.02,
        fp_fraction=0.50, long_op_fraction=0.10,
        mean_dependency_distance=5.0, working_set_kb=1024,
        spatial_locality=0.70, loop_body_uops=64, num_hot_loops=2,
        phase_length_uops=600,
    ),
    # Very short dependency distances chain every value to its neighbour;
    # dependence-based steering rides each chain on one cluster until the
    # load penalty forces a spill (generating a flood of inter-cluster
    # copies), which leaves the clusters visibly unevenly heated — the
    # asymmetric-hotspot case per-cluster DVFS exists for.
    _scenario(
        "imbalanced_cluster",
        "serial dependence chains that pile heat onto single clusters",
        "uneven backend-cluster heating",
        is_fp=False,
        load_fraction=0.18, store_fraction=0.07, branch_fraction=0.10,
        branch_taken_rate=0.80, branch_misprediction_rate=0.01,
        fp_fraction=0.00, long_op_fraction=0.02,
        mean_dependency_distance=1.2, working_set_kb=64,
        spatial_locality=0.90, loop_body_uops=40, num_hot_loops=2,
        phase_length_uops=20_000,
    ),
    # Branch-dominated code with a high misprediction rate: the frontend
    # churns (predictor, redirects, refills) while the backend starves.
    _scenario(
        "branch_storm",
        "branchy code with frequent mispredictions",
        "branch predictor / frontend churn",
        is_fp=False,
        load_fraction=0.20, store_fraction=0.08, branch_fraction=0.30,
        branch_taken_rate=0.50, branch_misprediction_rate=0.15,
        fp_fraction=0.00, long_op_fraction=0.01,
        mean_dependency_distance=3.0, working_set_kb=512,
        spatial_locality=0.60, loop_body_uops=48, num_hot_loops=12,
        phase_length_uops=2000,
    ),
    # The FP datapath saturated with long-latency multiplies and divides.
    _scenario(
        "fp_saturate",
        "floating-point pipelines saturated with long operations",
        "FP functional units",
        is_fp=True,
        load_fraction=0.18, store_fraction=0.06, branch_fraction=0.03,
        branch_taken_rate=0.92, branch_misprediction_rate=0.005,
        fp_fraction=0.95, long_op_fraction=0.30,
        mean_dependency_distance=7.0, working_set_kb=256,
        spatial_locality=0.90, loop_body_uops=96, num_hot_loops=3,
        phase_length_uops=30_000,
    ),
    # The integer mirror image of fp_saturate.
    _scenario(
        "int_saturate",
        "integer ALUs saturated with high-ILP arithmetic",
        "integer functional units",
        is_fp=False,
        load_fraction=0.15, store_fraction=0.05, branch_fraction=0.08,
        branch_taken_rate=0.90, branch_misprediction_rate=0.01,
        fp_fraction=0.00, long_op_fraction=0.03,
        mean_dependency_distance=7.0, working_set_kb=128,
        spatial_locality=0.92, loop_body_uops=64, num_hot_loops=2,
        phase_length_uops=40_000,
    ),
    # A working set sized to thrash the UL2 with moderate locality: the L1s
    # miss constantly, the buses and UL2 stay busy, the core limps.
    _scenario(
        "cache_thrash",
        "L1- and UL2-thrashing strided access",
        "cache hierarchy / buses",
        is_fp=False,
        load_fraction=0.34, store_fraction=0.14, branch_fraction=0.10,
        branch_taken_rate=0.70, branch_misprediction_rate=0.03,
        fp_fraction=0.05, long_op_fraction=0.02,
        mean_dependency_distance=3.5, working_set_kb=16_384,
        spatial_locality=0.30, loop_body_uops=72, num_hot_loops=16,
        phase_length_uops=1500,
    ),
    # A static footprint much larger than the trace cache: every phase
    # change refills lines, so bank hopping's flush cost and the mapping
    # function see maximum pressure.
    _scenario(
        "trace_cache_pressure",
        "instruction footprint far beyond the trace-cache capacity",
        "TraceCache",
        is_fp=False,
        load_fraction=0.24, store_fraction=0.10, branch_fraction=0.16,
        branch_taken_rate=0.60, branch_misprediction_rate=0.04,
        fp_fraction=0.00, long_op_fraction=0.01,
        mean_dependency_distance=4.0, working_set_kb=4096,
        spatial_locality=0.65, loop_body_uops=200, num_hot_loops=120,
        phase_length_uops=800,
    ),
    # The cold control case: serial chains of long-latency operations,
    # frequent mispredictions and a cache-hostile working set keep IPC (and
    # power) minimal.  DTM policies must stay disengaged; any throttling
    # here is a false positive.
    _scenario(
        "idle_crawl",
        "low-IPC serial crawl; the control case DTM must not touch",
        "nothing (cool-die control)",
        is_fp=True,
        load_fraction=0.26, store_fraction=0.08, branch_fraction=0.20,
        branch_taken_rate=0.52, branch_misprediction_rate=0.15,
        fp_fraction=0.40, long_op_fraction=0.50,
        mean_dependency_distance=1.05, working_set_kb=32_768,
        spatial_locality=0.30, loop_body_uops=56, num_hot_loops=8,
        phase_length_uops=1500,
    ),
)

#: Every scenario, keyed by name, in presentation order.
SCENARIOS: Dict[str, Scenario] = {s.name: s for s in _SCENARIOS}

#: The scenario profiles, keyed by name — what
#: :func:`repro.workloads.profiles.get_profile` falls back to.
SCENARIO_PROFILES: Dict[str, WorkloadProfile] = {
    s.name: s.profile for s in _SCENARIOS
}

SCENARIO_NAMES: Tuple[str, ...] = tuple(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Return scenario ``name``; raises ``KeyError`` listing valid names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        valid = ", ".join(SCENARIO_NAMES)
        raise KeyError(f"unknown scenario {name!r}; valid names: {valid}") from None

"""Campaign-as-a-service: run thermal campaigns behind an HTTP job server.

The service layer turns the campaign engine into a long-running,
multi-client daemon built entirely on the standard library:

* :mod:`repro.service.jobs` — job model, states, progress events;
* :mod:`repro.service.pool` — the shared worker pool (thread workers, or
  crash-contained process workers: persistent by default with
  worker-resident warm caches, fork-per-task as a fallback; timeouts,
  bounded retries);
* :mod:`repro.service.warmcache` — the warm worker runtime: solver/trace
  warm caches and zero-copy trace transport (re-exported from
  :mod:`repro.sim.warmcache`);
* :mod:`repro.service.cache` — multi-tenant sharded result cache with an
  LRU byte budget and a background janitor;
* :mod:`repro.service.codec` — the JSON wire format for campaign specs;
* :mod:`repro.service.manager` — :class:`CampaignService`, the dispatcher
  that runs each job through :func:`repro.campaign.run_campaign` over the
  shared pool (results are bit-identical to a local run by construction);
* :mod:`repro.service.server` / :mod:`repro.service.client` — the HTTP
  surface (``POST /jobs``, NDJSON event streaming, ``/metrics``) and its
  urllib client.

Serve with ``repro-campaign serve``, submit with ``repro-campaign submit``
(falls back to a local run when no server is listening), follow with
``repro-campaign watch``.
"""

from repro.service.cache import ShardedResultCache, TenantCacheView
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.service.codec import (
    campaign_from_payload,
    payload_from_options,
    settings_from_payload,
)
from repro.service.jobs import Job, JobState, JobStore
from repro.service.manager import CampaignService, PoolBackedExecutor, results_payload
from repro.service.pool import WorkerPool
from repro.service.server import ServiceServer, create_server
from repro.service.warmcache import (
    TraceRef,
    WarmCache,
    publish_trace,
    resolve_trace,
    warm_cache,
    warm_cache_enabled,
    warm_snapshot,
)

__all__ = [
    "CampaignService",
    "Job",
    "JobState",
    "JobStore",
    "PoolBackedExecutor",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailable",
    "ShardedResultCache",
    "TenantCacheView",
    "TraceRef",
    "WarmCache",
    "WorkerPool",
    "campaign_from_payload",
    "create_server",
    "payload_from_options",
    "publish_trace",
    "resolve_trace",
    "results_payload",
    "settings_from_payload",
    "warm_cache",
    "warm_cache_enabled",
    "warm_snapshot",
]

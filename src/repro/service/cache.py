"""Multi-tenant sharded result cache — the service's shared warm store.

:class:`ShardedResultCache` grows the campaign layer's content-keyed
:class:`~repro.campaign.cache.ResultCache` into something a long-running
multi-client service can sit on:

* **Sharding** — entries spread over ``shards`` subdirectories
  (``shard-00/ .. shard-NN/``) by a prefix of the cell's content hash, so
  no single directory accumulates tens of thousands of files and shard
  statistics localize churn.  Entries written by a pre-sharding cache in
  the directory root are adopted (moved into their shard) on first access.
* **LRU eviction with a byte budget** — loading an entry touches its
  mtime, so :meth:`prune` (inherited, deterministic mtime-then-name order)
  becomes least-recently-*used* eviction; :meth:`enforce_budget` applies
  the configured ``max_bytes``, and :meth:`start_janitor` runs it from a
  background daemon thread so eviction never sits on a request path.
* **Multi-tenancy** — :meth:`for_tenant` returns a lightweight view that
  counts one tenant's hits/misses/stores separately while reading and
  writing the SAME shared shards: the store is content-addressed, so two
  tenants submitting identically-keyed cells share one entry (the second
  tenant's lookup is a hit on the first tenant's stored result).

All stores are atomic (temp file + rename, see
:func:`repro.sim.serialization.atomic_write_text`), so concurrent jobs —
and concurrent *server processes* pointed at one directory — race safely
to last-writer-wins without torn reads.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.campaign.cache import TRACE_BIN_SUFFIX, TRACE_SUFFIX, ResultCache
from repro.campaign.spec import RunSpec
from repro.sim.activity_trace import ActivityTrace
from repro.sim.results import SimulationResult


class ShardedResultCache(ResultCache):
    """A :class:`ResultCache` spread over hash-prefix shard directories."""

    def __init__(
        self,
        directory: Union[str, Path],
        shards: int = 16,
        max_bytes: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        super().__init__(directory)
        self.shards = shards
        self.max_bytes = max_bytes
        self._counter_lock = threading.Lock()
        self._tenants: Dict[str, "TenantCacheView"] = {}
        self._janitor: Optional[threading.Thread] = None
        self._janitor_stop = threading.Event()

    # ------------------------------------------------------------------
    # Shard layout
    # ------------------------------------------------------------------
    def shard_name(self, content_hash: str) -> str:
        """Shard directory for a cell/trace content hash (hex string)."""
        index = int(content_hash[:8], 16) % self.shards
        return f"shard-{index:02d}"

    def path_for(self, spec: RunSpec) -> Path:
        return (
            self.directory
            / self.shard_name(spec.cache_key())
            / f"{self._key(spec)}.json"
        )

    def trace_path_for(self, timing_key: str) -> Path:
        flat = super().trace_path_for(timing_key)
        return self.directory / self.shard_name(timing_key) / flat.name

    def _adopt_legacy(self, sharded_path: Path) -> None:
        """Move a root-level entry written by an unsharded cache into place."""
        if sharded_path.exists():
            return
        legacy = self.directory / sharded_path.name
        if legacy.exists():
            sharded_path.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, sharded_path)

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh an entry's mtime so pruning approximates true LRU."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry evicted under our feet
            pass

    # ------------------------------------------------------------------
    # Lookup/store (counters guarded: many job threads share this object)
    # ------------------------------------------------------------------
    def load(self, spec: RunSpec) -> Optional[SimulationResult]:
        path = self.path_for(spec)
        self._adopt_legacy(path)
        result = super().load(spec)
        if result is not None:
            self._touch(path)
        return result

    def load_trace(self, timing_key: str) -> Optional[ActivityTrace]:
        path = self.trace_path_for(timing_key)
        self._adopt_legacy(path)
        # Pre-binary-codec caches hold *.trace.json entries (sharded or at
        # the root); adopt the JSON spelling too so the base class's legacy
        # fallback finds it inside the shard.
        self._adopt_legacy(self._legacy_trace_path(path))
        trace = super().load_trace(timing_key)
        if trace is not None:
            self._touch(path)
        return trace

    # ------------------------------------------------------------------
    # Housekeeping across shards
    # ------------------------------------------------------------------
    def _all_files(self) -> List[Path]:
        # Shard subdirectories plus the root (not-yet-adopted legacy
        # entries), skipping in-flight atomic-write scratch files.
        files = [
            path
            for pattern in ("*.json", f"*{TRACE_BIN_SUFFIX}")
            for path in self.directory.rglob(pattern)
            if not path.name.startswith(".")
        ]
        return files

    def _result_files(self):
        return [
            path
            for path in self._all_files()
            if not path.name.endswith((TRACE_SUFFIX, TRACE_BIN_SUFFIX))
        ]

    def _trace_files(self):
        return [
            path
            for path in self._all_files()
            if path.name.endswith((TRACE_SUFFIX, TRACE_BIN_SUFFIX))
        ]

    def stats(self) -> Dict[str, object]:
        """Base counts/bytes plus a per-shard and per-tenant breakdown."""
        stats: Dict[str, object] = super().stats()
        per_shard: Dict[str, Dict[str, int]] = {}
        for index in range(self.shards):
            name = f"shard-{index:02d}"
            listed = [
                e
                for e in (self.directory / name).glob("*.json")
                if not e.name.startswith(".")
            ]
            # Single stat per entry, tolerant of concurrent eviction (the
            # janitor or another server process may prune under our feet).
            entries = self._stat_entries(listed)
            per_shard[name] = {
                "entries": len(entries),
                "bytes": sum(size for _, _, size in entries),
            }
        stats["shards"] = per_shard
        stats["tenants"] = {
            name: view.counters() for name, view in sorted(self._tenants.items())
        }
        return stats

    def enforce_budget(self) -> Dict[str, int]:
        """Apply the configured byte budget (no-op without ``max_bytes``)."""
        if self.max_bytes is None:
            return {"removed": 0, "removed_bytes": 0, "remaining_bytes": -1}
        return self.prune(self.max_bytes)

    # ------------------------------------------------------------------
    # Background janitor
    # ------------------------------------------------------------------
    def start_janitor(self, interval_seconds: float = 30.0) -> None:
        """Enforce the byte budget periodically from a daemon thread."""
        if self._janitor is not None:
            return
        self._janitor_stop.clear()

        def _loop() -> None:
            while not self._janitor_stop.wait(interval_seconds):
                try:
                    self.enforce_budget()
                except OSError:  # pragma: no cover - directory vanished
                    pass

        self._janitor = threading.Thread(
            target=_loop, name="repro-cache-janitor", daemon=True
        )
        self._janitor.start()

    def stop_janitor(self) -> None:
        if self._janitor is None:
            return
        self._janitor_stop.set()
        self._janitor.join(timeout=5)
        self._janitor = None

    # ------------------------------------------------------------------
    # Multi-tenancy
    # ------------------------------------------------------------------
    def for_tenant(self, tenant: str) -> "TenantCacheView":
        """A per-tenant accounting view over the shared shards."""
        with self._counter_lock:
            view = self._tenants.get(tenant)
            if view is None:
                view = TenantCacheView(self, tenant)
                self._tenants[tenant] = view
            return view


class TenantCacheView:
    """One tenant's window onto a shared :class:`ShardedResultCache`.

    Delegates every operation to the shared cache (content-addressed, so
    identical cells dedupe across tenants) while keeping per-tenant
    hit/miss/store counters for the ``/metrics`` endpoint.  Implements the
    subset of the cache interface :func:`~repro.campaign.run_campaign`
    uses (``load``/``store``/``load_trace``/``store_trace``), so it can be
    passed anywhere a :class:`~repro.campaign.cache.ResultCache` goes.
    """

    def __init__(self, shared: ShardedResultCache, tenant: str) -> None:
        self.shared = shared
        self.tenant = tenant
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.trace_hits = 0
        self.trace_misses = 0
        self.trace_stores = 0

    def _bump(self, counter: str) -> None:
        with self.shared._counter_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def load(self, spec: RunSpec) -> Optional[SimulationResult]:
        result = self.shared.load(spec)
        self._bump("hits" if result is not None else "misses")
        return result

    def store(self, spec: RunSpec, result: SimulationResult) -> Path:
        self._bump("stores")
        return self.shared.store(spec, result)

    def load_trace(self, timing_key: str) -> Optional[ActivityTrace]:
        trace = self.shared.load_trace(timing_key)
        self._bump("trace_hits" if trace is not None else "trace_misses")
        return trace

    def store_trace(self, timing_key: str, trace: ActivityTrace) -> Path:
        self._bump("trace_stores")
        return self.shared.store_trace(timing_key, trace)

    def counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "trace_stores": self.trace_stores,
        }

    def __repr__(self) -> str:
        return (
            f"TenantCacheView({self.tenant!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )

"""Thin urllib client for the campaign service's HTTP API.

:class:`ServiceClient` wraps the endpoints documented in
:mod:`repro.service.server` with typed helpers and turns connection-level
failures into :class:`ServiceUnavailable`, which is what lets the CLI's
``submit`` verb fall back to a local run when no server is listening.
Nothing here imports the simulation stack — the client is safe to use from
scripts that only want to talk to a remote server.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional


class ServiceUnavailable(ConnectionError):
    """The campaign service could not be reached at the given URL.

    ``reason`` is a short human phrase classifying *why* — ``"connection
    refused"``, ``"timed out"``, ``"dns lookup failed"``, ... — which the
    CLI's local-fallback warning surfaces so an operator can tell a down
    server from a firewalled or misspelled one.
    """

    def __init__(self, message: str, reason: str = "network error") -> None:
        super().__init__(message)
        self.reason = reason


def _unreachable_reason(error: BaseException) -> str:
    """Classify a connection-level failure into a short reason phrase."""
    seen = set()
    current: Optional[BaseException] = error
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if isinstance(current, ConnectionRefusedError):
            return "connection refused"
        if isinstance(current, ConnectionResetError):
            return "connection reset"
        if isinstance(current, (socket.timeout, TimeoutError)):
            return "timed out"
        if isinstance(current, socket.gaierror):
            return "dns lookup failed"
        # URLError wraps the transport error in .reason; plain exception
        # chains link through __cause__.
        nested = getattr(current, "reason", None)
        current = nested if isinstance(nested, BaseException) else current.__cause__
    return "network error"


class ServiceError(RuntimeError):
    """The service answered with an error status (message from the body)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to a running campaign service at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _open(self, method: str, path: str, body: Optional[Dict] = None):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            # The server answered: surface its JSON error message.
            try:
                message = json.loads(error.read().decode("utf-8")).get("error", "")
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = error.reason
            raise ServiceError(error.code, str(message)) from error
        except (urllib.error.URLError, ConnectionError, OSError) as error:
            reason = _unreachable_reason(error)
            raise ServiceUnavailable(
                f"campaign service unreachable at {self.base_url} "
                f"({reason}): {error}",
                reason=reason,
            ) from error

    def _json(self, method: str, path: str, body: Optional[Dict] = None) -> Dict:
        with self._open(method, path, body) as response:
            return json.loads(response.read().decode("utf-8"))

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> Dict:
        return self._json("GET", "/metrics")

    def submit(self, payload: Dict) -> Dict:
        """``POST /jobs``; returns the created job's payload (201)."""
        return self._json("POST", "/jobs", body=payload)

    def jobs(self) -> List[Dict]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: int, results: bool = False) -> Dict:
        suffix = "?results=1" if results else ""
        return self._json("GET", f"/jobs/{job_id}{suffix}")

    def cancel(self, job_id: int) -> Dict:
        return self._json("DELETE", f"/jobs/{job_id}")

    def events(self, job_id: int, since: int = 0) -> Iterator[Dict]:
        """Follow a job's NDJSON event stream until it ends."""
        with self._open("GET", f"/jobs/{job_id}/events?since={since}") as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def wait(
        self, job_id: int, timeout: float = 300.0, poll_seconds: float = 0.2
    ) -> Dict:
        """Poll until the job is terminal; returns its payload with results."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id, results=True)
            if payload["state"] in ("done", "failed", "cancelled"):
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload['state']} after {timeout:g}s"
                )
            time.sleep(poll_seconds)

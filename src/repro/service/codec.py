"""JSON wire format for campaign specifications.

``POST /jobs`` accepts the same campaign description the ``repro-campaign
run`` command builds from its flags, as one JSON object::

    {
        "name": "sweep",                 # optional campaign name
        "configs": ["baseline"],         # preset names (default: baseline)
        "scale": "smoke",                # smoke | quick | full
        "benchmarks": ["gzip", "swim"],  # benchmark/scenario names;
                                         # "scenarios" expands the library
        "uops": 3000,                    # micro-ops per benchmark
        "seed": 1,
        "interval_cycles": null,         # explicit thermal interval
        "dtm_policies": ["none", "dvfs"],
        "cores": 1,
        "per_core_scenarios": [["thermal_virus", "idle_crawl"]]
    }

:func:`campaign_from_payload` validates eagerly — unknown presets,
benchmarks or policy specs raise ``ValueError``/``KeyError`` before any
simulation, which the HTTP layer maps to a 400 — and the CLI's ``submit``
verb builds exactly this payload from its flags (so a submission that
cannot reach the server can fall back to running the identical campaign
locally).  :func:`settings_from_payload` reuses the CLI's semantics: a
scenario-only benchmark list turns off the SPEC relative-length table.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, Optional, Tuple

from repro.campaign.spec import Campaign, ExperimentSettings

_SCALES = ("smoke", "quick", "full")


def _benchmarks_from(names: Iterable[str]) -> Tuple[str, ...]:
    """Expand a benchmark list; ``"scenarios"`` means the whole library."""
    expanded = []
    for name in names:
        if name == "scenarios":
            from repro.scenarios import SCENARIO_NAMES

            expanded.extend(SCENARIO_NAMES)
        elif name:
            expanded.append(name)
    return tuple(expanded)


def settings_from_payload(payload: Dict) -> ExperimentSettings:
    """Build :class:`ExperimentSettings` from a campaign spec payload."""
    scale = payload.get("scale", "smoke")
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r} (expected one of {_SCALES})")
    settings = getattr(ExperimentSettings, scale)()
    changes: Dict[str, object] = {}
    if payload.get("benchmarks"):
        benchmarks = _benchmarks_from(payload["benchmarks"])
        changes["benchmarks"] = benchmarks
        from repro.workloads.profiles import SPEC2000_PROFILES

        if all(b not in SPEC2000_PROFILES for b in benchmarks):
            # Scenario sweeps run every workload at full length; the SPEC
            # relative-length table only applies to the paper's benchmarks.
            changes["honor_relative_length"] = False
    if payload.get("uops") is not None:
        changes["uops_per_benchmark"] = int(payload["uops"])
    if payload.get("seed") is not None:
        changes["seed"] = int(payload["seed"])
    if payload.get("interval_cycles") is not None:
        changes["interval_cycles"] = int(payload["interval_cycles"])
    if changes:
        settings = replace(settings, **changes)
    return settings


def campaign_from_payload(payload: Dict) -> Campaign:
    """Reconstruct a :class:`Campaign` from its JSON wire form.

    Raises ``ValueError``/``KeyError`` (the domain layer's own validation
    errors) for unknown presets, benchmarks, scenario mixes or policy
    specs; the server maps those to a 400 response.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"campaign spec must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - {
        "name",
        "configs",
        "scale",
        "benchmarks",
        "uops",
        "seed",
        "interval_cycles",
        "dtm_policies",
        "cores",
        "per_core_scenarios",
        "replay_mode",
        "tenant",  # stripped by the server, tolerated here
    }
    if unknown:
        raise ValueError(f"unknown campaign spec field(s): {sorted(unknown)}")
    from repro.core.presets import FrontendOrganization, config_for

    names = payload.get("configs") or ["baseline"]
    if isinstance(names, str):
        names = [names]
    configs = [config_for(FrontendOrganization(name)) for name in names]
    settings = settings_from_payload(payload)
    mixes = tuple(tuple(mix) for mix in payload.get("per_core_scenarios") or ())
    cores = payload.get("cores")
    if cores is None:
        cores = max((len(mix) for mix in mixes), default=1)
    return Campaign(
        configs,
        settings,
        name=str(payload.get("name", "service")),
        dtm_policies=tuple(payload.get("dtm_policies") or ()),
        cores=int(cores),
        per_core_scenarios=mixes,
        replay_mode=str(payload.get("replay_mode") or "exact"),
    )


def payload_from_options(
    configs: Optional[Iterable[str]] = None,
    scale: Optional[str] = None,
    benchmarks: Optional[Iterable[str]] = None,
    uops: Optional[int] = None,
    seed: Optional[int] = None,
    interval_cycles: Optional[int] = None,
    dtm_policies: Optional[Iterable[str]] = None,
    cores: Optional[int] = None,
    per_core_scenarios: Optional[Iterable] = None,
    name: Optional[str] = None,
    replay_mode: Optional[str] = None,
) -> Dict:
    """The wire payload for a set of CLI-style options (``None`` = omit)."""
    payload: Dict = {}
    if name is not None:
        payload["name"] = name
    if configs is not None:
        payload["configs"] = list(configs)
    if scale is not None:
        payload["scale"] = scale
    if benchmarks is not None:
        payload["benchmarks"] = list(benchmarks)
    if uops is not None:
        payload["uops"] = uops
    if seed is not None:
        payload["seed"] = seed
    if interval_cycles is not None:
        payload["interval_cycles"] = interval_cycles
    if dtm_policies:
        payload["dtm_policies"] = list(dtm_policies)
    if cores is not None:
        payload["cores"] = cores
    if per_core_scenarios:
        payload["per_core_scenarios"] = [list(mix) for mix in per_core_scenarios]
    if replay_mode is not None:
        payload["replay_mode"] = replay_mode
    return payload

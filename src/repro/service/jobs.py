"""The service's job model: states, progress events, and the job registry.

A :class:`Job` is one submitted campaign travelling through the lifecycle
``pending -> running -> done | failed | cancelled``.  Besides its state it
carries everything a client can ask about over HTTP: the submitted spec
payload, per-phase progress counters, wall-clock timings, a running ETA,
the terminal error (if any) and — once done — the full results payload
(per-variant, per-benchmark serialized :class:`~repro.sim.results.
SimulationResult` dictionaries, exactly what :func:`repro.sim.serialization.
result_to_dict` produces for a local :func:`~repro.campaign.run_campaign`).

Every observable change appends a monotonically numbered *event* to the
job's event log; :meth:`Job.events_since` is the long-poll primitive the
HTTP layer's NDJSON streaming endpoint (``GET /jobs/<id>/events``) rides
on.  The :class:`JobStore` hands out monotonic integer job ids and is the
single registry the server, the dispatcher and the metrics endpoint share.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Dict, List, Optional

from repro.campaign.spec import Campaign


class JobState(str, enum.Enum):
    """Lifecycle of a submitted campaign job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class Job:
    """One submitted campaign and everything observable about it.

    Thread-safe: the executing job thread mutates it, HTTP handler threads
    read it, and the event log's condition variable wakes streaming
    watchers.  All mutation goes through the ``mark_*`` / ``record_*``
    methods, each of which appends an event under the lock.
    """

    def __init__(
        self,
        job_id: int,
        campaign: Campaign,
        payload: Optional[Dict] = None,
        tenant: str = "default",
    ) -> None:
        self.id = job_id
        self.campaign = campaign
        self.payload = dict(payload or {})
        self.tenant = tenant
        self.state = JobState.PENDING
        self.error: Optional[str] = None
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        # Progress counters (cells_total is known at submission; the rest
        # fill in as the executor completes tasks / the outcome lands).
        self.cells_total = len(campaign)
        self.cells_done = 0
        self.cells_simulated = 0
        self.cells_replayed = 0
        self.cache_hits = 0
        self.traces_captured = 0
        #: Per-variant results payload, set on DONE.
        self.results: Optional[Dict] = None
        #: Executor description + outcome describe() line, set on DONE.
        self.outcome_description: Optional[str] = None
        self._cancel = threading.Event()
        self._lock = threading.Lock()
        self._events: List[Dict] = []
        self._events_ready = threading.Condition(self._lock)
        self._append_event("state", state=self.state.value)

    # ------------------------------------------------------------------
    # Event log
    # ------------------------------------------------------------------
    def _append_event(self, event_kind: str, **fields) -> None:
        """Append one event (callers must NOT hold ``self._lock``)."""
        with self._events_ready:
            event = {"seq": len(self._events), "event": event_kind, "job": self.id}
            event.update(fields)
            self._events.append(event)
            self._events_ready.notify_all()

    def events_since(self, seq: int, timeout: Optional[float] = None) -> List[Dict]:
        """Events with ``seq >= seq``, blocking up to ``timeout`` for news.

        Returns an empty list on timeout (the streaming endpoint uses that
        as its heartbeat tick); with ``timeout=None`` returns immediately
        whatever is buffered.
        """
        with self._events_ready:
            if timeout is not None and len(self._events) <= seq:
                self._events_ready.wait(timeout)
            return list(self._events[seq:])

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation; returns whether the request was accepted.

        A terminal job cannot be cancelled.  A pending job is marked
        cancelled immediately; a running one drains at the next task
        boundary (the executor adapter checks :attr:`cancelled` before
        every task submission and between completions).
        """
        with self._lock:
            if self.state.terminal:
                return False
            already = self._cancel.is_set()
            self._cancel.set()
        if not already:
            self._append_event("cancel_requested")
        return True

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    # ------------------------------------------------------------------
    # State transitions (called by the executing job thread)
    # ------------------------------------------------------------------
    def _transition(self, state: JobState, **fields) -> None:
        with self._lock:
            self.state = state
            if state is JobState.RUNNING:
                self.started_at = time.time()
            elif state.terminal:
                self.finished_at = time.time()
        self._append_event("state", state=state.value, **fields)

    def mark_running(self) -> None:
        self._transition(JobState.RUNNING)

    def mark_done(self, results: Dict, description: str, counters: Dict) -> None:
        with self._lock:
            self.results = results
            self.outcome_description = description
            self.cells_simulated = counters.get("cells_executed", self.cells_simulated)
            self.cells_replayed = counters.get("cells_replayed", self.cells_replayed)
            self.cache_hits = counters.get("cache_hits", self.cache_hits)
            self.traces_captured = counters.get(
                "traces_captured", self.traces_captured
            )
            self.cells_done = self.cells_total
        self._transition(JobState.DONE, description=description)

    def mark_failed(self, error: str) -> None:
        with self._lock:
            self.error = error
        self._transition(JobState.FAILED, error=error)

    def mark_cancelled(self) -> None:
        self._transition(JobState.CANCELLED)

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def record_progress(self, kind: str, cells: int) -> None:
        """Account ``cells`` completed by one executor task of ``kind``."""
        with self._lock:
            self.cells_done += cells
            if kind == "replay":
                self.cells_replayed += cells
            else:
                self.cells_simulated += cells
                if kind == "capture":
                    self.traces_captured += 1
            snapshot = self._progress_locked()
        self._append_event("progress", kind=kind, cells=cells, **snapshot)

    def record_cache_hits(self, hits: int) -> None:
        """Account cells satisfied straight from the result cache."""
        if hits <= 0:
            return
        with self._lock:
            self.cache_hits += hits
            self.cells_done += hits
            snapshot = self._progress_locked()
        self._append_event("progress", kind="cached", cells=hits, **snapshot)

    def _progress_locked(self) -> Dict:
        done = self.cells_done
        total = self.cells_total
        snapshot = {
            "cells_done": done,
            "cells_total": total,
            "cells_simulated": self.cells_simulated,
            "cells_replayed": self.cells_replayed,
            "cache_hits": self.cache_hits,
            "traces_captured": self.traces_captured,
        }
        if self.started_at is not None and 0 < done < total:
            elapsed = time.time() - self.started_at
            snapshot["eta_seconds"] = round(elapsed * (total - done) / done, 3)
        return snapshot

    # ------------------------------------------------------------------
    # HTTP payloads
    # ------------------------------------------------------------------
    def to_payload(self, include_results: bool = False) -> Dict:
        with self._lock:
            payload: Dict = {
                "id": self.id,
                "state": self.state.value,
                "tenant": self.tenant,
                "campaign": self.campaign.name,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "cancel_requested": self._cancel.is_set(),
            }
            payload.update(self._progress_locked())
            if self.error is not None:
                payload["error"] = self.error
            if self.outcome_description is not None:
                payload["description"] = self.outcome_description
            if include_results and self.results is not None:
                payload["results"] = self.results
            return payload


class JobStore:
    """Registry of every job the service has seen, with monotonic ids."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[int, Job] = {}
        self._next_id = 1

    def create(
        self,
        campaign: Campaign,
        payload: Optional[Dict] = None,
        tenant: str = "default",
    ) -> Job:
        with self._lock:
            job = Job(self._next_id, campaign, payload=payload, tenant=tenant)
            self._jobs[job.id] = job
            self._next_id += 1
            return job

    def get(self, job_id: int) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every job, in submission (id) order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def counts(self) -> Dict[str, int]:
        """Job totals by state (the /metrics building block)."""
        counts = {state.value: 0 for state in JobState}
        for job in self.jobs():
            counts[job.state.value] += 1
        counts["total"] = len(self._jobs)
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

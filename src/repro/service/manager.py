"""Campaign-as-a-service: the dispatcher between jobs and the worker pool.

:class:`CampaignService` owns the whole serving pipeline:

* a :class:`~repro.service.jobs.JobStore` of submitted jobs;
* a bounded set of *job slots* (``max_concurrent_jobs``) — submissions
  beyond the bound queue as PENDING in FIFO order;
* one shared :class:`~repro.service.pool.WorkerPool` every running job
  fans its cells into; and
* an optional shared :class:`~repro.service.cache.ShardedResultCache`,
  viewed per tenant.

Each job executes through the REAL campaign path — a running job calls
:func:`repro.campaign.run_campaign` with a :class:`PoolBackedExecutor`
(an :class:`~repro.campaign.executors.Executor` whose ``run_tasks`` fans
out over the shared pool) — so a campaign submitted over HTTP takes
*exactly* the code path of a local run: same cache lookups, same
timing-key grouping, same capture-once/replay-rest planning, bit-identical
results.  Two things are layered on top:

* **progress**: every completed task appends a progress event (cells
  simulated/replayed, running ETA) to the job, which the HTTP layer
  streams as NDJSON;
* **cross-job trace sharing**: a :class:`_TraceGate` around the cache
  serializes concurrent captures of the same timing key — the first job
  to miss becomes the *leader* and captures; followers block until the
  leader's trace artifact lands in the shared cache, then replay it.
  (Sequentially, sharing already falls out of the content-keyed cache;
  the gate closes the concurrent-miss window where N jobs would all pay
  for the same per-uop timing simulation.)

Cancellation is cooperative at task granularity: ``DELETE /jobs/<id>``
sets the job's cancel flag, the executor adapter raises between tasks,
in-flight work drains in the pool, and the job lands in CANCELLED without
touching the server's health.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.campaign.core import CampaignOutcome, run_campaign
from repro.campaign.executors import Executor
from repro.service.cache import ShardedResultCache
from repro.service.codec import campaign_from_payload
from repro.service.jobs import Job, JobState, JobStore
from repro.service.pool import WorkerPool
from repro.sim.serialization import result_to_dict
from repro.sim.warmcache import publish_trace


class JobCancelled(Exception):
    """Internal control-flow: the job's cancel flag was observed."""


#: Executor-function name -> (progress kind, how to count cells in a task).
_TASK_KINDS = {
    "execute_cell": "run",
    "execute_chip_cell": "run",
    "execute_campaign_task": "phase1",
    "execute_cell_replay": "replay",
    "execute_replay_group": "replay_group",
    "execute_chip_replay": "replay",
    "execute_chip_replay_group": "replay_group",
}


def _progress_of(fn, task) -> (str, int):
    """(kind, cells) one completed task contributes to job progress."""
    kind = _TASK_KINDS.get(getattr(fn, "__name__", ""), "run")
    if kind == "phase1":
        mode = task[0] if isinstance(task, tuple) else "run"
        return ("capture" if mode == "capture" else "run"), 1
    if kind == "replay_group":
        return "replay", len(task[1])
    return kind, 1


class PoolBackedExecutor(Executor):
    """A campaign :class:`Executor` that fans out over a shared WorkerPool.

    One instance per running job (``cells_executed`` accounting in
    :func:`run_campaign` is per-executor), all instances feeding the same
    pool.  Task completions report progress to the job; the job's cancel
    flag is checked before each submission and while waiting, turning a
    ``DELETE`` into a :class:`JobCancelled` at the next task boundary.
    """

    #: How often the result wait wakes up to re-check the cancel flag.
    _POLL_SECONDS = 0.1

    def __init__(self, pool: WorkerPool, job: Optional[Job] = None) -> None:
        super().__init__()
        self.pool = pool
        self.job = job

    def describe(self) -> str:
        return (
            f"PoolBackedExecutor({self.pool.workers} {self.pool.mode} workers)"
        )

    def runtime_info(self) -> Dict[str, object]:
        return self.pool.runtime_info()

    def _check_cancelled(self) -> None:
        if self.job is not None and self.job.cancelled:
            raise JobCancelled()

    def _prepare_tasks(self, fn, tasks: Sequence):
        """Swap replay-task trace payloads for zero-copy TraceRefs.

        Only meaningful for process pools (thread workers share this
        process's memory, so shipping the object is already free).  Each
        trace travels as its cache artifact path when the campaign cache
        stamped one, else as a freshly created shared-memory segment —
        tracked with the pool so shutdown can unlink leftovers.  Returns
        ``(prepared_tasks, handles)``; the caller must release every handle
        once the fan-out is done.
        """
        if self.pool.mode != "process":
            return list(tasks), []
        name = getattr(fn, "__name__", "")
        handles: List = []
        published: Dict[int, object] = {}

        def _publish(trace, key: str):
            # Chip groups repeat the same trace object across cores and
            # tasks; publish each distinct object once.
            payload = published.get(id(trace))
            if payload is None:
                payload, handle = publish_trace(trace, key)
                if handle is not None:
                    handles.append(handle)
                    self.pool.track_segment(handle)
                published[id(trace)] = payload
            return payload

        prepared: List = []
        if name == "execute_replay_group":
            for trace, specs in tasks:
                specs = tuple(specs)
                key = specs[0].timing_key() if specs else ""
                prepared.append((_publish(trace, key), specs))
        elif name == "execute_cell_replay":
            for spec, trace in tasks:
                prepared.append((spec, _publish(trace, spec.timing_key())))
        elif name == "execute_chip_replay_group":
            for traces, specs in tasks:
                specs = tuple(specs)
                keys = [
                    core.timing_key() for core in specs[0].core_specs()
                ] if specs else []
                prepared.append(
                    (
                        tuple(
                            _publish(trace, keys[i] if i < len(keys) else "")
                            for i, trace in enumerate(traces)
                        ),
                        specs,
                    )
                )
        elif name == "execute_chip_replay":
            for spec, traces in tasks:
                keys = [core.timing_key() for core in spec.core_specs()]
                prepared.append(
                    (
                        spec,
                        tuple(
                            _publish(trace, keys[i] if i < len(keys) else "")
                            for i, trace in enumerate(traces)
                        ),
                    )
                )
        else:
            return list(tasks), []
        return prepared, handles

    def run_tasks(self, fn, tasks: Sequence) -> List:
        self._check_cancelled()
        tasks, handles = self._prepare_tasks(fn, tasks)
        try:
            futures = []
            for task in tasks:
                self._check_cancelled()
                futures.append(self.pool.submit(fn, task))
            results = []
            for task, future in zip(tasks, futures):
                while True:
                    try:
                        result = future.result(timeout=self._POLL_SECONDS)
                        break
                    except TimeoutError:
                        # Abandoning the futures on cancel is safe: the pool
                        # finishes in-flight tasks and discards the results.
                        self._check_cancelled()
                results.append(result)
                if self.job is not None:
                    kind, cells = _progress_of(fn, task)
                    self.job.record_progress(kind, cells)
            return results
        finally:
            # Unlink this fan-out's shared-memory segments.  On a cancel,
            # a queued task that attaches after the unlink fails and is
            # surfaced by the pool as an ordinary task error — its future
            # was already abandoned.
            for handle in handles:
                self.pool.release_segment(handle)


class _TraceRegistry:
    """Service-wide registry of in-flight trace captures, by timing key."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        #: timing key -> Event set when the capture lands (or is abandoned).
        self.in_flight: Dict[str, threading.Event] = {}


class _TraceGate:
    """Cache wrapper that dedupes concurrent captures of one timing key.

    ``load_trace`` on a miss either *claims* the key (this job becomes the
    leader and will capture) or *waits* for the current leader, then
    re-reads the shared cache.  A leader that fails or is cancelled
    releases its claims on the way out (see :meth:`release`), and each
    waiter then contends to claim the key itself — nobody deadlocks on an
    abandoned capture.  Everything else delegates to the wrapped cache.
    """

    #: Upper bound on waiting for another job's capture; a capture that
    #: takes longer than this has almost certainly died non-cleanly, and
    #: the waiter falls back to capturing itself.
    _WAIT_SECONDS = 600.0

    def __init__(self, inner, registry: _TraceRegistry, job: Optional[Job]) -> None:
        self._inner = inner
        self._registry = registry
        self._job = job
        self._claims: List[str] = []

    # Pass-through result interface.
    def load(self, spec):
        return self._inner.load(spec)

    def store(self, spec, result):
        return self._inner.store(spec, result)

    def load_trace(self, timing_key: str):
        while True:
            trace = self._inner.load_trace(timing_key)
            if trace is not None:
                return trace
            with self._registry.lock:
                event = self._registry.in_flight.get(timing_key)
                if event is None:
                    # Claim the key: this job captures for everyone.
                    self._registry.in_flight[timing_key] = threading.Event()
                    self._claims.append(timing_key)
                    return None
            # Another job is capturing this key; wait it out, then loop
            # (hit its stored trace, or claim the abandoned key ourselves).
            if self._job is not None and self._job.cancelled:
                raise JobCancelled()
            event.wait(self._WAIT_SECONDS)

    def store_trace(self, timing_key: str, trace):
        path = self._inner.store_trace(timing_key, trace)
        self._resolve(timing_key)
        return path

    def _resolve(self, timing_key: str) -> None:
        with self._registry.lock:
            event = self._registry.in_flight.pop(timing_key, None)
        if event is not None:
            event.set()
        if timing_key in self._claims:
            self._claims.remove(timing_key)

    def release(self) -> None:
        """Abandon every unresolved claim (job failed or was cancelled)."""
        for timing_key in list(self._claims):
            self._resolve(timing_key)


class CampaignService:
    """The long-running campaign server: jobs in, summaries + metrics out."""

    def __init__(
        self,
        pool: Optional[WorkerPool] = None,
        cache: Optional[ShardedResultCache] = None,
        max_concurrent_jobs: int = 4,
        replay: bool = True,
    ) -> None:
        if max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be at least 1")
        self.store = JobStore()
        self.pool = pool if pool is not None else WorkerPool(workers=2)
        self.cache = cache
        self.replay = replay
        self.started_at = time.time()
        self._registry = _TraceRegistry()
        self._slots = threading.Semaphore(max_concurrent_jobs)
        self.max_concurrent_jobs = max_concurrent_jobs
        self._accepting = True
        self._threads_lock = threading.Lock()
        self._job_threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    # Submission and lookup
    # ------------------------------------------------------------------
    def submit(self, payload: Dict, tenant: str = "default") -> Job:
        """Validate a campaign spec payload and enqueue it as a job.

        Raises ``ValueError``/``KeyError`` on an invalid spec (mapped to a
        400 by the HTTP layer) and ``RuntimeError`` once shut down.
        """
        if not self._accepting:
            raise RuntimeError("service is shutting down")
        campaign = campaign_from_payload(payload)
        job = self.store.create(campaign, payload=payload, tenant=tenant)
        thread = threading.Thread(
            target=self._run_job, args=(job,), name=f"repro-job-{job.id}", daemon=True
        )
        with self._threads_lock:
            self._job_threads.append(thread)
        thread.start()
        return job

    def job(self, job_id: int) -> Optional[Job]:
        return self.store.get(job_id)

    def cancel(self, job_id: int) -> bool:
        job = self.store.get(job_id)
        return job.cancel() if job is not None else False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _job_cache(self, job: Job):
        if self.cache is None:
            return None
        view = (
            self.cache.for_tenant(job.tenant)
            if isinstance(self.cache, ShardedResultCache)
            else self.cache
        )
        return _TraceGate(view, self._registry, job)

    def _run_job(self, job: Job) -> None:
        # PENDING jobs wait for a slot, staying responsive to cancellation.
        while not self._slots.acquire(timeout=0.1):
            if job.cancelled:
                job.mark_cancelled()
                return
        try:
            if job.cancelled:
                job.mark_cancelled()
                return
            job.mark_running()
            executor = PoolBackedExecutor(self.pool, job)
            gate = self._job_cache(job)
            try:
                outcome = run_campaign(
                    job.campaign, executor=executor, cache=gate, replay=self.replay
                )
            except JobCancelled:
                job.mark_cancelled()
            except Exception as error:  # noqa: BLE001 - job carries it
                job.mark_failed(f"{type(error).__name__}: {error}")
            else:
                job.mark_done(
                    results_payload(outcome),
                    outcome.describe(),
                    {
                        "cells_executed": outcome.cells_executed,
                        "cells_replayed": outcome.cells_replayed,
                        "cache_hits": outcome.cache_hits,
                        "traces_captured": outcome.traces_captured,
                    },
                )
            finally:
                if gate is not None:
                    gate.release()
        finally:
            self._slots.release()

    # ------------------------------------------------------------------
    # Observability + lifecycle
    # ------------------------------------------------------------------
    def metrics(self) -> Dict:
        """The ``/metrics`` payload: queueing, pool, jobs and cache health."""
        job_counts = self.store.counts()
        payload: Dict = {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "jobs": job_counts,
            "queue": {
                "pending_jobs": job_counts[JobState.PENDING.value],
                "running_jobs": job_counts[JobState.RUNNING.value],
                "job_slots": self.max_concurrent_jobs,
                "task_queue_depth": self.pool.queue_depth,
            },
            "pool": self.pool.metrics(),
        }
        if self.cache is not None:
            lookups = self.cache.hits + self.cache.misses
            payload["cache"] = {
                "directory": str(self.cache.directory),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
                "trace_hits": self.cache.trace_hits,
                "trace_misses": self.cache.trace_misses,
                "trace_stores": self.cache.trace_stores,
                "hit_rate": (self.cache.hits / lookups) if lookups else None,
                "shards": getattr(self.cache, "shards", 1),
                "max_bytes": getattr(self.cache, "max_bytes", None),
            }
        return payload

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting jobs and wind the service down.

        With ``drain=True`` every submitted job runs to completion first
        (bounded by ``timeout`` seconds overall, if given); with
        ``drain=False`` running jobs are cancelled at their next task
        boundary.  The worker pool and the cache janitor stop either way.
        """
        self._accepting = False
        if not drain:
            for job in self.store.jobs():
                job.cancel()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._threads_lock:
            threads = list(self._job_threads)
        for thread in threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            thread.join(timeout=remaining)
        self.pool.shutdown(drain=drain, timeout=timeout)
        if isinstance(self.cache, ShardedResultCache):
            self.cache.stop_janitor()


def results_payload(outcome: CampaignOutcome) -> Dict:
    """The job results wire format: per-variant, per-benchmark result dicts.

    Values are exactly :func:`~repro.sim.serialization.result_to_dict`
    output — the same documents a local campaign writes into the result
    cache — which is what makes the HTTP-vs-local equivalence lock a plain
    dictionary comparison.
    """
    return {
        "summaries": {
            variant: {
                benchmark: result_to_dict(result)
                for benchmark, result in summary.results.items()
            }
            for variant, summary in outcome.summaries.items()
        },
        "outcome": {
            "total_cells": outcome.total_cells,
            "cells_executed": outcome.cells_executed,
            "cells_replayed": outcome.cells_replayed,
            "traces_captured": outcome.traces_captured,
            "cache_hits": outcome.cache_hits,
            "executor": outcome.executor_description,
            "runtime": outcome.runtime,
        },
    }

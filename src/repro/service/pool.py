"""The service's shared worker pool: a persistent task-execution backend.

Where a campaign's :class:`~repro.campaign.executors.ParallelExecutor`
spins up a process pool per fan-out and tears it down again, the service
keeps ONE pool alive for its whole lifetime and lets every concurrently
running job feed it.  Tasks — the same picklable module-level executor
functions the campaign layer already uses (``execute_campaign_task``,
``execute_replay_group``, ...) — enter a shared queue; worker threads pull
them off in FIFO order and run them either

* **inline** (``mode="thread"``): directly in the worker thread.  Zero
  dispatch overhead and full monkeypatchability, the right choice for
  tests and single-machine smoke serving (pure-Python simulation threads
  contend on the GIL, so aggregate throughput is bounded); or
* **in a subprocess** (``mode="process"``): each task runs in a fresh
  forked child with a result pipe.  This is what makes the service robust:
  a worker process that *dies* mid-task (segfault, OOM-kill, ``os._exit``)
  is detected by its exit code and retried with exponential backoff up to
  ``retries`` times, and a task that exceeds ``task_timeout`` seconds is
  killed and failed without taking the service down.

Failures surface as the campaign layer's typed
:class:`~repro.campaign.executors.ExecutorTaskError` with the offending
task attached.  :meth:`WorkerPool.shutdown` drains gracefully: submissions
are refused, queued work completes (or is discarded with ``drain=False``),
and the worker threads exit.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
import traceback
from concurrent.futures import Future
from typing import Callable, Dict, Optional

from repro.campaign.executors import ExecutorTaskError


class _TaskCrash(Exception):
    """A subprocess died before reporting a result (exit code attached)."""


class _TaskTimeout(Exception):
    """A subprocess exceeded the per-task timeout and was killed."""


def _subprocess_main(connection, fn, task) -> None:
    """Child-side runner: execute one task, ship (status, payload) back."""
    try:
        payload = ("ok", fn(task))
    except BaseException:  # noqa: BLE001 - the parent re-raises, typed
        payload = ("error", traceback.format_exc())
    try:
        connection.send(payload)
    finally:
        connection.close()


class WorkerPool:
    """A fixed set of worker threads draining one shared task queue.

    ``workers`` threads run tasks in submission order.  ``mode="process"``
    executes each task in a forked child process (crash containment,
    enforceable ``task_timeout``); ``mode="thread"`` executes inline.
    Crashed children are retried up to ``retries`` times with exponential
    backoff starting at ``retry_backoff`` seconds; timeouts and in-task
    exceptions are not retried (a deterministic failure would only fail
    again, slower).
    """

    def __init__(
        self,
        workers: int = 2,
        mode: str = "thread",
        task_timeout: Optional[float] = None,
        retries: int = 1,
        retry_backoff: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown worker pool mode {mode!r}")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.workers = workers
        self.mode = mode
        self.task_timeout = task_timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._accepting = True
        self._busy = 0
        self._unfinished = 0
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.tasks_retried = 0
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, fn: Callable, task) -> "Future":
        """Enqueue one task; returns a future resolving to ``fn(task)``."""
        future: Future = Future()
        with self._lock:
            if not self._accepting:
                raise RuntimeError("worker pool is shut down")
            self._unfinished += 1
        self._queue.put((fn, task, future))
        return future

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, task, future = item
            with self._lock:
                self._busy += 1
            try:
                result = self._run_with_retries(fn, task)
            except BaseException as error:  # noqa: BLE001 - future carries it
                with self._lock:
                    self.tasks_failed += 1
                future.set_exception(error)
            else:
                with self._lock:
                    self.tasks_completed += 1
                future.set_result(result)
            finally:
                with self._idle:
                    self._busy -= 1
                    self._unfinished -= 1
                    self._idle.notify_all()

    def _run_with_retries(self, fn: Callable, task):
        attempt = 0
        while True:
            try:
                if self.mode == "thread":
                    return fn(task)
                return self._run_in_subprocess(fn, task)
            except _TaskTimeout as error:
                raise ExecutorTaskError(
                    f"task exceeded the {self.task_timeout:g}s timeout "
                    f"({task!r})",
                    task=task,
                ) from error
            except _TaskCrash as error:
                if attempt >= self.retries:
                    raise ExecutorTaskError(
                        f"worker process died while executing {task!r} "
                        f"({error}; {attempt + 1} attempt(s))",
                        task=task,
                    ) from error
                with self._lock:
                    self.tasks_retried += 1
                time.sleep(self.retry_backoff * (2**attempt))
                attempt += 1

    def _run_in_subprocess(self, fn: Callable, task):
        """Run one task in a forked child; kill it on timeout."""
        context = multiprocessing.get_context()
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=_subprocess_main, args=(sender, fn, task), daemon=True
        )
        process.start()
        sender.close()
        try:
            if not receiver.poll(self.task_timeout):
                process.terminate()
                process.join()
                raise _TaskTimeout()
            try:
                status, payload = receiver.recv()
            except EOFError as error:
                # The child died (killed, segfault, os._exit) before
                # sending anything: the pipe closes without a payload.
                process.join()
                raise _TaskCrash(f"exit code {process.exitcode}") from error
            process.join()
            if status == "error":
                raise ExecutorTaskError(
                    f"task raised in worker process:\n{payload}", task=task
                )
            return payload
        finally:
            receiver.close()
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join()

    # ------------------------------------------------------------------
    # Observability + lifecycle
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Tasks waiting for a worker (excluding the ones executing)."""
        return self._queue.qsize()

    def metrics(self) -> Dict[str, object]:
        with self._lock:
            busy = self._busy
            return {
                "workers": self.workers,
                "mode": self.mode,
                "busy_workers": busy,
                "utilization": busy / self.workers,
                "queue_depth": self._queue.qsize(),
                "tasks_completed": self.tasks_completed,
                "tasks_failed": self.tasks_failed,
                "tasks_retried": self.tasks_retried,
            }

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted task has finished.

        Returns ``False`` if ``timeout`` elapsed first.  Does not stop the
        pool — use :meth:`shutdown` for that.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._unfinished > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the pool: refuse new work, finish (or discard) queued work.

        With ``drain=True`` (the default) queued tasks complete first;
        with ``drain=False`` queued-but-unstarted tasks are failed with
        :class:`~repro.campaign.executors.ExecutorTaskError` and only
        in-flight ones run to completion.
        """
        with self._lock:
            if not self._accepting:
                return
            self._accepting = False
        if drain:
            self.drain(timeout)
        else:
            while True:
                try:
                    fn, task, future = self._queue.get_nowait()
                except queue.Empty:
                    break
                future.set_exception(
                    ExecutorTaskError(
                        "worker pool shut down before the task ran", task=task
                    )
                )
                with self._idle:
                    self._unfinished -= 1
                    self._idle.notify_all()
            self.drain(timeout)
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5)

"""The service's shared worker pool: a persistent task-execution backend.

Where a campaign's :class:`~repro.campaign.executors.ParallelExecutor`
spins up a process pool per fan-out and tears it down again, the service
keeps ONE pool alive for its whole lifetime and lets every concurrently
running job feed it.  Tasks — the same picklable module-level executor
functions the campaign layer already uses (``execute_campaign_task``,
``execute_replay_group``, ...) — enter a shared queue; worker threads pull
them off in FIFO order and run them either

* **inline** (``mode="thread"``): directly in the worker thread.  Zero
  dispatch overhead and full monkeypatchability, the right choice for
  tests and single-machine smoke serving (pure-Python simulation threads
  contend on the GIL, so aggregate throughput is bounded); or
* **in a worker process** (``mode="process"``): with ``keepalive=True``
  (the default) each worker thread owns one long-lived forked child and
  feeds it task after task over a duplex pipe — the child keeps its
  imports, its warm solver/trace cache (:mod:`repro.sim.warmcache`) and
  its numpy state across tasks, so a replay sweep pays interpreter
  startup and solver factorization once per worker instead of once per
  task.  With ``keepalive=False`` every task forks a fresh child (the
  pre-warm behavior): maximal crash isolation, cold every time.

Both process flavors keep the same containment contract: a worker that
*dies* mid-task (segfault, OOM-kill, ``os._exit``) is detected, retired
and respawned, and the task is retried with exponential backoff up to
``retries`` times; a task that exceeds ``task_timeout`` seconds is killed
by the watchdog (the persistent worker is killed *and respawned*, so the
next task starts clean) and failed without retry — a deterministic
timeout would only time out again, slower.

Failures surface as the campaign layer's typed
:class:`~repro.campaign.executors.ExecutorTaskError` with the offending
task attached.  :meth:`WorkerPool.shutdown` drains gracefully: submissions
are refused, queued work completes (or is discarded with ``drain=False``),
worker threads exit, persistent children are stopped, and any
shared-memory trace segments still tracked are unlinked.
"""

from __future__ import annotations

import math
import multiprocessing
import queue
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional

from repro.campaign.executors import ExecutorTaskError
from repro.sim.warmcache import ensure_shm_tracker, warm_snapshot

#: Task-duration samples kept for the latency percentiles in `metrics()`.
_DURATION_SAMPLES = 2048

#: Counter keys a worker's warm-cache snapshot may carry (summable).
_WARM_KEYS = ("solver_hits", "solver_misses", "trace_hits", "trace_misses")


class _TaskCrash(Exception):
    """A worker process died before reporting a result (exit code attached)."""


class _TaskTimeout(Exception):
    """A task exceeded the per-task timeout; its worker was killed."""


def _subprocess_main(connection, fn, task) -> None:
    """Fork-per-task child: execute one task, ship (status, payload, warm)."""
    try:
        payload = ("ok", fn(task), warm_snapshot())
    except BaseException:  # noqa: BLE001 - the parent re-raises, typed
        payload = ("error", traceback.format_exc(), warm_snapshot())
    try:
        connection.send(payload)
    finally:
        connection.close()


def _persistent_worker_main(connection) -> None:
    """Persistent child: serve tasks off one duplex pipe until told to stop.

    The loop protocol is ``recv (fn, task)`` → ``send (status, payload,
    warm_snapshot)``; a ``None`` message (or the pipe closing) is the stop
    sentinel.  The warm-cache counter snapshot piggybacks on every reply so
    the parent can aggregate warm/cold hit rates without extra round trips.
    """
    while True:
        try:
            item = connection.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if item is None:
            break
        fn, task = item
        try:
            payload = ("ok", fn(task), warm_snapshot())
        except BaseException:  # noqa: BLE001 - the parent re-raises, typed
            payload = ("error", traceback.format_exc(), warm_snapshot())
        try:
            connection.send(payload)
        except (BrokenPipeError, OSError):
            break
    try:
        connection.close()
    except OSError:  # pragma: no cover - defensive cleanup
        pass


class _PersistentWorker:
    """Parent-side handle of one long-lived worker process."""

    def __init__(self, context, generation: int) -> None:
        parent_end, child_end = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_persistent_worker_main, args=(child_end,), daemon=True
        )
        self.process.start()
        child_end.close()
        self.connection = parent_end
        self.generation = generation
        #: Last warm-cache counter snapshot this worker reported.
        self.warm: Dict[str, int] = {}

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, fn: Callable, task) -> None:
        self.connection.send((fn, task))

    def stop(self, kill: bool = False) -> Optional[int]:
        """Stop the child (gracefully, or ``kill=True`` for the watchdog).

        Returns the child's exit code once it is reaped.
        """
        if not kill and self.process.is_alive():
            try:
                self.connection.send(None)
            except (BrokenPipeError, OSError, ValueError):
                pass
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - defensive cleanup
            pass
        if kill and self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - stuck child
            self.process.kill()
            self.process.join(timeout=5)
        exitcode = self.process.exitcode
        try:
            self.process.close()
        except Exception:  # pragma: no cover - defensive cleanup
            pass
        return exitcode


class WorkerPool:
    """A fixed set of worker threads draining one shared task queue.

    ``workers`` threads run tasks in submission order.  ``mode="process"``
    executes tasks in worker processes — long-lived ones fed over pipes
    with ``keepalive=True`` (default; warm caches survive across tasks),
    or a fresh fork per task with ``keepalive=False`` — while
    ``mode="thread"`` executes inline.  Crashed workers are respawned and
    their task retried up to ``retries`` times with exponential backoff
    starting at ``retry_backoff`` seconds; timeouts and in-task exceptions
    are not retried (a deterministic failure would only fail again,
    slower).
    """

    def __init__(
        self,
        workers: int = 2,
        mode: str = "thread",
        task_timeout: Optional[float] = None,
        retries: int = 1,
        retry_backoff: float = 0.05,
        keepalive: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown worker pool mode {mode!r}")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.workers = workers
        self.mode = mode
        self.task_timeout = task_timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.keepalive = bool(keepalive) and mode == "process"
        if mode == "process":
            # Start the shm resource tracker BEFORE any worker forks, so
            # attach-side registrations land in the shared parent tracker
            # instead of spawning per-worker trackers that would unlink
            # live segments when a worker dies (bpo-39959 on < 3.13).
            ensure_shm_tracker()
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._accepting = True
        self._busy = 0
        self._unfinished = 0
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.tasks_retried = 0
        self.worker_respawns = 0
        self._created = time.monotonic()
        self._busy_seconds = 0.0
        self._busy_started: Dict[int, float] = {}
        self._durations: "deque[float]" = deque(maxlen=_DURATION_SAMPLES)
        # Persistent-worker state: one optional child per worker-thread slot
        # (spawned lazily on the slot's first process task), its respawn
        # generation, and the warm counters of already-retired children.
        self._process_workers: Dict[int, _PersistentWorker] = {}
        self._generations: List[int] = [0] * workers
        self._warm_retired: Dict[str, int] = {}
        # Shared-memory trace segments currently in flight (name -> handle);
        # shutdown unlinks whatever a crashed submitter left behind.
        self._segments: Dict[str, object] = {}
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"repro-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, fn: Callable, task) -> "Future":
        """Enqueue one task; returns a future resolving to ``fn(task)``."""
        future: Future = Future()
        with self._lock:
            if not self._accepting:
                raise RuntimeError("worker pool is shut down")
            self._unfinished += 1
        self._queue.put((fn, task, future))
        return future

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker_loop(self, slot: int) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, task, future = item
            started = time.monotonic()
            with self._lock:
                self._busy += 1
                self._busy_started[slot] = started
            try:
                result = self._run_with_retries(slot, fn, task)
            except BaseException as error:  # noqa: BLE001 - future carries it
                with self._lock:
                    self.tasks_failed += 1
                future.set_exception(error)
            else:
                with self._lock:
                    self.tasks_completed += 1
                future.set_result(result)
            finally:
                duration = time.monotonic() - started
                with self._idle:
                    self._busy_seconds += duration
                    self._durations.append(duration)
                    self._busy_started.pop(slot, None)
                    self._busy -= 1
                    self._unfinished -= 1
                    self._idle.notify_all()

    def _run_with_retries(self, slot: int, fn: Callable, task):
        attempt = 0
        while True:
            try:
                if self.mode == "thread":
                    return fn(task)
                if self.keepalive:
                    return self._run_keepalive(slot, fn, task)
                return self._run_in_subprocess(fn, task)
            except _TaskTimeout as error:
                raise ExecutorTaskError(
                    f"task exceeded the {self.task_timeout:g}s timeout "
                    f"({task!r})",
                    task=task,
                ) from error
            except _TaskCrash as error:
                if attempt >= self.retries:
                    raise ExecutorTaskError(
                        f"worker process died while executing {task!r} "
                        f"({error}; {attempt + 1} attempt(s))",
                        task=task,
                    ) from error
                with self._lock:
                    self.tasks_retried += 1
                time.sleep(self.retry_backoff * (2**attempt))
                attempt += 1

    # -- persistent workers --------------------------------------------
    def _ensure_worker(self, slot: int) -> _PersistentWorker:
        """The slot's live child, spawning (or respawning) as needed."""
        with self._lock:
            worker = self._process_workers.get(slot)
        if worker is not None:
            if worker.alive():
                return worker
            # Found dead between tasks (e.g. killed externally): retire it
            # so the generation counter and warm totals stay truthful.
            self._retire_worker(slot, kill=True)
        context = multiprocessing.get_context()
        with self._lock:
            generation = self._generations[slot]
        worker = _PersistentWorker(context, generation)
        with self._lock:
            self._process_workers[slot] = worker
        return worker

    def _retire_worker(self, slot: int, kill: bool = False) -> Optional[int]:
        """Stop and forget the slot's child; fold its warm counters in."""
        with self._lock:
            worker = self._process_workers.pop(slot, None)
        if worker is None:
            return None
        exitcode = worker.stop(kill=kill)
        with self._lock:
            for key in _WARM_KEYS:
                if key in worker.warm:
                    self._warm_retired[key] = (
                        self._warm_retired.get(key, 0) + worker.warm[key]
                    )
            self.worker_respawns += 1
            self._generations[slot] += 1
        return exitcode

    def _run_keepalive(self, slot: int, fn: Callable, task):
        """Run one task on the slot's persistent worker; watchdog the pipe."""
        worker = self._ensure_worker(slot)
        try:
            worker.send(fn, task)
        except (BrokenPipeError, OSError, ValueError) as error:
            exitcode = self._retire_worker(slot, kill=True)
            raise _TaskCrash(f"exit code {exitcode}") from error
        if not worker.connection.poll(self.task_timeout):
            # Watchdog: the task overran its budget.  Kill the worker —
            # its warm cache dies with it — and respawn lazily on the
            # slot's next task.
            self._retire_worker(slot, kill=True)
            raise _TaskTimeout()
        try:
            status, payload, warm = worker.connection.recv()
        except (EOFError, OSError) as error:
            # The child died mid-task (killed, segfault, os._exit): the
            # pipe closes without a payload.
            exitcode = self._retire_worker(slot, kill=True)
            raise _TaskCrash(f"exit code {exitcode}") from error
        worker.warm = dict(warm)
        if status == "error":
            raise ExecutorTaskError(
                f"task raised in worker process:\n{payload}", task=task
            )
        return payload

    # -- fork-per-task fallback ----------------------------------------
    def _run_in_subprocess(self, fn: Callable, task):
        """Run one task in a fresh forked child; kill it on timeout."""
        context = multiprocessing.get_context()
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=_subprocess_main, args=(sender, fn, task), daemon=True
        )
        process.start()
        sender.close()
        try:
            if not receiver.poll(self.task_timeout):
                process.terminate()
                process.join()
                raise _TaskTimeout()
            try:
                status, payload, warm = receiver.recv()
            except EOFError as error:
                # The child died (killed, segfault, os._exit) before
                # sending anything: the pipe closes without a payload.
                process.join()
                raise _TaskCrash(f"exit code {process.exitcode}") from error
            process.join()
            with self._lock:
                for key in _WARM_KEYS:
                    if key in warm:
                        self._warm_retired[key] = (
                            self._warm_retired.get(key, 0) + warm[key]
                        )
            if status == "error":
                raise ExecutorTaskError(
                    f"task raised in worker process:\n{payload}", task=task
                )
            return payload
        finally:
            receiver.close()
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join()

    # ------------------------------------------------------------------
    # Shared-memory segment tracking (zero-copy trace transport)
    # ------------------------------------------------------------------
    def track_segment(self, handle) -> None:
        """Register a trace segment so shutdown can unlink leftovers."""
        with self._lock:
            self._segments[handle.name] = handle

    def release_segment(self, handle) -> None:
        """Unlink one tracked segment (idempotent)."""
        with self._lock:
            self._segments.pop(handle.name, None)
        handle.close()

    def _release_all_segments(self) -> None:
        with self._lock:
            handles = list(self._segments.values())
            self._segments.clear()
        for handle in handles:
            handle.close()

    # ------------------------------------------------------------------
    # Observability + lifecycle
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Tasks waiting for a worker (excluding the ones executing)."""
        return self._queue.qsize()

    def _warm_totals_locked(self) -> Dict[str, int]:
        """Warm-cache counters summed across every worker, past and present."""
        if self.mode == "thread":
            # Thread workers share this process's global cache.
            return warm_snapshot()
        totals = dict(self._warm_retired)
        for worker in self._process_workers.values():
            for key in _WARM_KEYS:
                if key in worker.warm:
                    totals[key] = totals.get(key, 0) + worker.warm[key]
        for key in _WARM_KEYS:
            totals.setdefault(key, 0)
        return totals

    @staticmethod
    def _percentile(ordered: List[float], q: float) -> float:
        """Nearest-rank percentile of an already-sorted sample."""
        if not ordered:
            return 0.0
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def metrics(self) -> Dict[str, object]:
        now = time.monotonic()
        with self._lock:
            busy = self._busy
            # Busy-time integral over the pool's lifetime: completed task
            # durations plus the partial time of everything in flight.  An
            # instantaneous busy-worker snapshot is almost always 0 by the
            # time a scrape reads it; the integral is what capacity
            # planning actually needs.
            busy_seconds = self._busy_seconds + sum(
                now - started for started in self._busy_started.values()
            )
            lifetime = max(now - self._created, 1e-9)
            ordered = sorted(self._durations)
            warm = self._warm_totals_locked()
            generations = list(self._generations)
            respawns = self.worker_respawns
            completed = self.tasks_completed
            failed = self.tasks_failed
            retried = self.tasks_retried
        return {
            "workers": self.workers,
            "mode": self.mode,
            "keepalive": self.keepalive,
            "busy_workers": busy,
            "utilization": min(1.0, busy_seconds / (self.workers * lifetime)),
            "busy_seconds": busy_seconds,
            "queue_depth": self._queue.qsize(),
            "tasks_completed": completed,
            "tasks_failed": failed,
            "tasks_retried": retried,
            "worker_respawns": respawns,
            "worker_generations": generations,
            "task_latency_p50_seconds": self._percentile(ordered, 0.50),
            "task_latency_p99_seconds": self._percentile(ordered, 0.99),
            "warm_cache": warm,
        }

    def runtime_info(self) -> Dict[str, object]:
        """The runtime facts a campaign outcome records (see metrics())."""
        metrics = self.metrics()
        return {
            "mode": metrics["mode"],
            "keepalive": metrics["keepalive"],
            "workers": metrics["workers"],
            "worker_respawns": metrics["worker_respawns"],
            "worker_generations": metrics["worker_generations"],
            "warm_cache": metrics["warm_cache"],
        }

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted task has finished.

        Returns ``False`` if ``timeout`` elapsed first.  Does not stop the
        pool — use :meth:`shutdown` for that.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._unfinished > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the pool: refuse new work, finish (or discard) queued work.

        With ``drain=True`` (the default) queued tasks complete first;
        with ``drain=False`` queued-but-unstarted tasks are failed with
        :class:`~repro.campaign.executors.ExecutorTaskError` and only
        in-flight ones run to completion.  Persistent worker processes are
        stopped after their threads exit, and any tracked shared-memory
        segments are unlinked.
        """
        with self._lock:
            if not self._accepting:
                return
            self._accepting = False
        if drain:
            self.drain(timeout)
        else:
            while True:
                try:
                    fn, task, future = self._queue.get_nowait()
                except queue.Empty:
                    break
                future.set_exception(
                    ExecutorTaskError(
                        "worker pool shut down before the task ran", task=task
                    )
                )
                with self._idle:
                    self._unfinished -= 1
                    self._idle.notify_all()
            self.drain(timeout)
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5)
        with self._lock:
            workers = list(self._process_workers.values())
            self._process_workers.clear()
        for worker in workers:
            worker.stop()
        with self._lock:
            # Keep the stopped workers' warm counters visible in post-
            # shutdown metrics() scrapes (a shutdown is not a respawn, so
            # generations stay put).
            for worker in workers:
                for key in _WARM_KEYS:
                    if key in worker.warm:
                        self._warm_retired[key] = (
                            self._warm_retired.get(key, 0) + worker.warm[key]
                        )
        self._release_all_segments()

"""Stdlib HTTP front door for :class:`~repro.service.manager.CampaignService`.

Routes (all JSON unless noted):

==========================  =====================================================
``POST /jobs``              Submit a campaign spec (see :mod:`repro.service.codec`);
                            returns ``201`` with the job payload.  An optional
                            ``"tenant"`` field namespaces cache accounting.
``GET /jobs``               List every job (most recent last).
``GET /jobs/<id>``          One job's state/progress; ``?results=1`` embeds the
                            full results payload once the job is done.
``GET /jobs/<id>/events``   NDJSON progress stream: replays the job's event log
                            from ``?since=<seq>`` (default 0) and then follows it
                            live until the job reaches a terminal state.
``DELETE /jobs/<id>``       Request cancellation; ``409`` if already terminal.
``GET /healthz``            Liveness: ``{"status": "ok"}``.
``GET /metrics``            Queue depth, worker utilization, cache hit rate, ...
==========================  =====================================================

Implementation notes: the server is a ``ThreadingHTTPServer`` speaking
HTTP/1.0 with ``Connection: close`` framing, which lets the events endpoint
stream newline-delimited JSON without chunked transfer encoding — each
event is written and flushed as it happens, and end-of-stream is the
connection closing.  Invalid campaign specs surface as ``400`` with the
domain layer's own ``ValueError``/``KeyError`` message.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.manager import CampaignService

_JOB_PATH = re.compile(r"^/jobs/(\d+)$")
_EVENTS_PATH = re.compile(r"^/jobs/(\d+)/events$")

#: How long one streaming long-poll tick waits before re-checking state.
_STREAM_POLL_SECONDS = 0.25

#: Quiet streams emit a heartbeat line this often so client socket
#: timeouts don't sever a watcher mid-cell.
_HEARTBEAT_SECONDS = 5.0


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Maps the HTTP surface onto a shared :class:`CampaignService`."""

    server_version = "repro-service"
    # HTTP/1.0: every response is framed by connection close, which is what
    # lets the NDJSON stream flush incrementally without chunked encoding.
    protocol_version = "HTTP/1.0"

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Response plumbing
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        query = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        return parsed.path, query

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, query = self._route()
        if path == "/healthz":
            self._send_json(200, {"status": "ok"})
            return
        if path == "/metrics":
            self._send_json(200, self.service.metrics())
            return
        if path == "/jobs":
            self._send_json(
                200,
                {"jobs": [job.to_payload() for job in self.service.store.jobs()]},
            )
            return
        match = _JOB_PATH.match(path)
        if match:
            job = self.service.job(int(match.group(1)))
            if job is None:
                self._error(404, f"no such job: {match.group(1)}")
                return
            include_results = query.get("results") in ("1", "true", "yes")
            self._send_json(200, job.to_payload(include_results=include_results))
            return
        match = _EVENTS_PATH.match(path)
        if match:
            self._stream_events(int(match.group(1)), query)
            return
        self._error(404, f"unknown path: {path}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path, _ = self._route()
        if path != "/jobs":
            self._error(404, f"unknown path: {path}")
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._error(400, f"invalid JSON body: {error}")
            return
        if not isinstance(payload, dict):
            self._error(400, "campaign spec must be a JSON object")
            return
        tenant = str(payload.get("tenant") or "default")
        try:
            job = self.service.submit(payload, tenant=tenant)
        except (ValueError, KeyError) as error:
            message = error.args[0] if error.args else str(error)
            self._error(400, str(message))
            return
        except RuntimeError as error:
            self._error(503, str(error))
            return
        self._send_json(201, job.to_payload())

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        path, _ = self._route()
        match = _JOB_PATH.match(path)
        if not match:
            self._error(404, f"unknown path: {path}")
            return
        job_id = int(match.group(1))
        job = self.service.job(job_id)
        if job is None:
            self._error(404, f"no such job: {job_id}")
            return
        if not job.cancel():
            self._error(409, f"job {job_id} already {job.state.value}")
            return
        self._send_json(202, job.to_payload())

    # ------------------------------------------------------------------
    # NDJSON event stream
    # ------------------------------------------------------------------
    def _stream_events(self, job_id: int, query: Dict[str, str]) -> None:
        job = self.service.job(job_id)
        if job is None:
            self._error(404, f"no such job: {job_id}")
            return
        try:
            seq = max(0, int(query.get("since", "0")))
        except ValueError:
            self._error(400, f"invalid since={query.get('since')!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        try:
            last_write = time.monotonic()
            while True:
                events = job.events_since(seq, timeout=_STREAM_POLL_SECONDS)
                for event in events:
                    self.wfile.write(json.dumps(event).encode("utf-8") + b"\n")
                    seq = event["seq"] + 1
                if events:
                    self.wfile.flush()
                    last_write = time.monotonic()
                elif time.monotonic() - last_write >= _HEARTBEAT_SECONDS:
                    self.wfile.write(
                        json.dumps({"event": "heartbeat", "job": job.id}).encode(
                            "utf-8"
                        )
                        + b"\n"
                    )
                    self.wfile.flush()
                    last_write = time.monotonic()
                if job.state.terminal:
                    # The terminal transition's event may land just after we
                    # read the state; one final non-blocking drain gets it.
                    for event in job.events_since(seq, timeout=None):
                        self.wfile.write(
                            json.dumps(event).encode("utf-8") + b"\n"
                        )
                        seq = event["seq"] + 1
                    self.wfile.flush()
                    return
        except (BrokenPipeError, ConnectionResetError):
            return  # the watcher went away; nothing to clean up


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`CampaignService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: CampaignService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), ServiceRequestHandler)
        self.service = service
        self.verbose = verbose

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_in_background(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread (tests, docs, bench)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-service-http", daemon=True
        )
        thread.start()
        return thread


def create_server(
    service: Optional[CampaignService] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ServiceServer:
    """Bind a :class:`ServiceServer` (``port=0`` picks a free port)."""
    return ServiceServer(service or CampaignService(), host, port, verbose=verbose)

"""Service-facing surface of the worker-resident warm cache.

The implementation lives in :mod:`repro.sim.warmcache` — below the campaign
and service layers, so :class:`~repro.sim.engine.PhysicsStage` and the
batched group replay can consult it without upward imports.  The service
runtime (pool workers, metrics, benchmarks) imports it from here.
"""

from repro.sim.warmcache import (
    DEFAULT_SOLVER_ENTRIES,
    DEFAULT_TRACE_ENTRIES,
    ShmHandle,
    TraceRef,
    WARM_CACHE_ENV,
    WarmCache,
    publish_trace,
    resolve_trace,
    solver_bundle,
    solver_key,
    stamp_trace_source,
    warm_cache,
    warm_cache_enabled,
    warm_snapshot,
)

__all__ = [
    "DEFAULT_SOLVER_ENTRIES",
    "DEFAULT_TRACE_ENTRIES",
    "ShmHandle",
    "TraceRef",
    "WARM_CACHE_ENV",
    "WarmCache",
    "publish_trace",
    "resolve_trace",
    "solver_bundle",
    "solver_key",
    "stamp_trace_source",
    "warm_cache",
    "warm_cache_enabled",
    "warm_snapshot",
]

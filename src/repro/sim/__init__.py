"""Cycle-level simulation engine.

:class:`repro.sim.processor.Processor` ties together the frontend
(:mod:`repro.frontend`), the clustered backends (:mod:`repro.backend`), the
memory hierarchy (:mod:`repro.memory`) and the interconnect
(:mod:`repro.interconnect`), advances them cycle by cycle, and feeds
per-block activity counts to the power model (:mod:`repro.power`) and the
thermal model (:mod:`repro.thermal`) at every thermal interval.
"""

from repro.sim.config import (
    ProcessorConfig,
    FrontendConfig,
    TraceCacheConfig,
    BackendConfig,
    MemoryConfig,
    InterconnectConfig,
    PowerConfig,
    ThermalConfig,
    SteeringPolicy,
)
from repro.sim.activity_trace import ActivityTrace, timing_feedback_reason
from repro.sim.block_index import BlockIndex
from repro.sim.processor import Processor
from repro.sim.results import SimulationResult
from repro.sim.stats import ActivityCounters, SimulationStats

__all__ = [
    "ActivityTrace",
    "BlockIndex",
    "ProcessorConfig",
    "FrontendConfig",
    "TraceCacheConfig",
    "BackendConfig",
    "MemoryConfig",
    "InterconnectConfig",
    "PowerConfig",
    "ThermalConfig",
    "SteeringPolicy",
    "Processor",
    "SimulationResult",
    "ActivityCounters",
    "SimulationStats",
    "timing_feedback_reason",
]

/* Native interval core for the fast timing path.
 *
 * This is a line-by-line transcription of the Python fast loop in
 * repro/sim/fast_timing.py (itself locked byte-identical to the reference
 * per-uop Processor by tests/test_fast_timing_equivalence.py).  Where the
 * Python loop uses event-driven wakeup and quiet-cycle skipping to stay
 * fast in an interpreter, this core simply brute-forces every cycle and
 * scans the issue queues directly -- semantically the reference algorithm,
 * with fewer places to diverge.
 *
 * Scope: non-distributed frontends only (the Python fast loop keeps
 * handling distributed rename/commit configurations).  All steering
 * policies, fetch gates and bank gating/mapping control are supported.
 *
 * Built at runtime by repro/sim/native.py with the system C compiler and
 * loaded through ctypes; when no compiler is available the Python loop
 * runs instead, producing the same outputs.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;

/* ABI version: bump on any layout/parameter change so a stale cached
 * shared object is never loaded against newer Python glue. */
#define FP_ABI 5

/* Parameter vector layout (keep in sync with repro/sim/native.py). */
enum {
    P_N, P_NLINES, P_NCL, P_NF, P_NBLOCKS,
    P_FWIDTH, P_DWIDTH, P_CWIDTH, P_IWIDTH, P_DISPLAT,
    P_PRESCHED_CAP, P_MP_PENALTY, P_FBUF, P_DEADLOCK, P_READY_OFF,
    P_UL2_HIT, P_UL2_MISS, P_DC_HIT, P_COMMIT_LAG, P_ROB_CAP,
    P_QCAP0, P_QCAP1, P_QCAP2, P_QCAP3, P_MOB_CAP,
    P_INT_REGS, P_FP_REGS, P_REG_BITS, P_POLICY,
    P_NBUSES, P_BUS_ARB, P_BUS_XFER, P_NLINKS, P_P2P_HOP,
    P_TC_BANKS, P_TC_SETS, P_TC_ASSOC, P_TC_MAP_ENTRIES, P_TC_BUILD_OVH,
    P_UL2_SETS, P_UL2_ASSOC, P_UL2_LINE_BYTES,
    P_DL1_SETS, P_DL1_ASSOC, P_DL1_LINE_BYTES,
    P_NUM_INT_ARCH, P_ARCH_TOTAL, P_N_CODES,
    P_CODE_COPY, P_CODE_LOAD, P_CODE_STORE,
    P_ITLB_B, P_DECO_B, P_BP_B, P_UL2_B,
    P_COUNT
};

/* Stats snapshot layout (keep in sync with repro/sim/native.py). */
enum {
    S_CYCLE, S_FETCHED, S_COMMITTED, S_CCOPIES, S_COPYG, S_COPYREQ,
    S_BRANCHES, S_MISPRED, S_DHITS, S_DMISS, S_UL2H, S_UL2M,
    S_RSTALL, S_ROBSTALL, S_FSTALL,
    S_TC_HITS, S_TC_MISSES, S_TC_INSERTIONS, S_TC_HOPFLUSH,
    S_UL2C_HITS, S_UL2C_MISSES,
    S_FINISHED, S_LAST_COMMIT, S_DL_OCC, S_DL_RQ,
    S_DISP0, /* + n_clusters entries */
    S_COUNT_BASE
};

#define NOT_READY (1LL << 60)
#define CALSZ 4096           /* completion calendar span (cycles ahead) */
#define MAX_PREV 16          /* freed mappings per commit <= n_clusters */

typedef struct {
    i64 code, cluster, frontend, dest;
    i64 src0, src1;          /* -1 padded */
    int nsrc;
    int nprev;
    i64 prev[MAX_PREV];
    i64 comp;                /* completion cycle, -1 until writeback */
    i64 addr;                /* mem address; for copies: dest cluster */
    i64 lat;
    i64 arrival;
    int is_copy, is_store, is_load, mpb;
    int cal_next;            /* completion-calendar chain */
} Rec;

typedef struct { i64 *buf; int head, tail, cap; } Ring;

static void ring_init(Ring *r, int cap) {
    r->buf = (i64 *)malloc(sizeof(i64) * (size_t)cap);
    r->head = r->tail = 0;
    r->cap = cap;
}
static int ring_len(const Ring *r) {
    int d = r->tail - r->head;
    return d < 0 ? d + r->cap : d;
}
static void ring_push(Ring *r, i64 v) {
    r->buf[r->tail] = v;
    r->tail = (r->tail + 1) % r->cap;
}
static i64 ring_pop(Ring *r) {
    i64 v = r->buf[r->head];
    r->head = (r->head + 1) % r->cap;
    return v;
}
static i64 ring_peek(const Ring *r) { return r->buf[r->head]; }
static i64 ring_at(const Ring *r, int i) {
    return r->buf[(r->head + i) % r->cap];
}

/* Set-associative LRU tag store: ways ordered LRU-first within each set. */
typedef struct {
    i64 *tags;               /* sets * assoc, -1 = invalid */
    int *count;              /* valid ways per set */
    int sets, assoc;
} Cache;

static void cache_init(Cache *c, int sets, int assoc) {
    c->sets = sets;
    c->assoc = assoc;
    c->tags = (i64 *)malloc(sizeof(i64) * (size_t)sets * (size_t)assoc);
    c->count = (int *)calloc((size_t)sets, sizeof(int));
    for (int i = 0; i < sets * assoc; i++) c->tags[i] = -1;
}
/* Lookup tag; on hit move to MRU (last) slot.  Returns 1 on hit. */
static int cache_lookup(Cache *c, int set, i64 tag) {
    i64 *w = c->tags + (size_t)set * (size_t)c->assoc;
    int n = c->count[set];
    for (int i = 0; i < n; i++) {
        if (w[i] == tag) {
            for (int j = i; j < n - 1; j++) w[j] = w[j + 1];
            w[n - 1] = tag;
            return 1;
        }
    }
    return 0;
}
/* Insert tag as MRU, evicting LRU if the set is full (miss path). */
static void cache_insert(Cache *c, int set, i64 tag) {
    i64 *w = c->tags + (size_t)set * (size_t)c->assoc;
    int n = c->count[set];
    if (n >= c->assoc) {
        for (int j = 0; j < n - 1; j++) w[j] = w[j + 1];
        w[n - 1] = tag;
    } else {
        w[n] = tag;
        c->count[set] = n + 1;
    }
}

typedef struct {
    /* --- configuration (copied from the parameter vector) --- */
    i64 p[P_COUNT];
    /* --- block-id tables --- */
    int *rob_b, *front_of, *rat_b, *tc_b, *dl1_b, *dtlb_b, *ifu_b,
        *fpfu_b, *mob_b, *rfb, *sched_flat, *qsel, *fu_b;
    /* --- decoded workload (borrowed pointers, kept alive by Python) --- */
    const i64 *cls, *lat, *addr, *isbr, *mp, *dest, *srcs /* n x 2 */,
        *ineed, *fneed;
    const i64 *l_start, *l_end, *l_pc, *l_fc, *l_ex;
    /* --- activity accumulator (borrowed, block-index order) --- */
    i64 *acc;

    /* --- trace cache --- */
    Cache *tc_sets;          /* one per bank */
    int *tc_gated;
    int *tc_map;             /* mapping-table entries */
    i64 tc_hits, tc_misses, tc_insertions, tc_hopflush;

    /* --- UL2 / L1D --- */
    Cache ul2;
    i64 ul2_hits, ul2_misses;
    Cache *dl1;              /* one per cluster */

    /* --- core state --- */
    i64 cycle;
    Rec *pool;
    int pool_cap;
    int *freerec;
    int nfree;

    i64 *ready_flat;         /* span = 2*ncl << reg_bits */
    Ring *free_tab;          /* per bank: free phys regs, FIFO */
    i64 *maptab;             /* arch_total x ncl */

    int *queues;             /* 16-ish: per qi, rec idx in age order */
    int *qn;                 /* entries per queue */
    int qcap_max;
    Ring *pipes;             /* per cluster: rec idx (arrival in rec) */
    i64 *in_flight, *mob_occ;
    Ring rob;
    Ring fq_ready, fq_idx;   /* parallel rings */
    i64 *bus_free, *p2p_free;

    int *cal_head, *cal_tail;    /* completion calendar, CALSZ buckets */

    i64 line_idx, lbpos, lbend;
    int exhausted, waiting;
    i64 stall_until, live, last_commit, rr;
    int pending;             /* rec idx or -1 */

    /* --- stats --- */
    i64 s_fetched, s_committed, s_ccopies, s_copyg, s_copyreq;
    i64 s_branches, s_mispred, s_dhits, s_dmiss, s_ul2h, s_ul2m;
    i64 s_rstall, s_robstall, s_fstall;
    i64 *disp;
    i64 dl_occ, dl_rq;       /* deadlock diagnostics */
} S;

i64 fp_abi(void) { return FP_ABI; }
i64 fp_param_count(void) { return P_COUNT; }

static int *copy_i32(const i64 *src, int n) {
    int *out = (int *)malloc(sizeof(int) * (size_t)n);
    for (int i = 0; i < n; i++) out[i] = (int)src[i];
    return out;
}

void *fp_create(const i64 *params,
                const i64 *rob_b, const i64 *front_of, const i64 *rat_b,
                const i64 *tc_b, const i64 *dl1_b, const i64 *dtlb_b,
                const i64 *ifu_b, const i64 *fpfu_b, const i64 *mob_b,
                const i64 *rfb, const i64 *sched_flat, const i64 *qsel,
                const i64 *fu_b,
                const i64 *cls, const i64 *lat, const i64 *addr,
                const i64 *isbr, const i64 *mp, const i64 *dest,
                const i64 *srcs, const i64 *ineed, const i64 *fneed,
                const i64 *l_start, const i64 *l_end, const i64 *l_pc,
                const i64 *l_fc, const i64 *l_ex,
                i64 *acc) {
    S *s = (S *)calloc(1, sizeof(S));
    memcpy(s->p, params, sizeof(i64) * P_COUNT);
    int ncl = (int)s->p[P_NCL];
    int nf = (int)s->p[P_NF];
    int nbanks = 2 * ncl;
    int ncodes = (int)s->p[P_N_CODES];

    s->rob_b = copy_i32(rob_b, nf);
    s->front_of = copy_i32(front_of, ncl);
    s->rat_b = copy_i32(rat_b, ncl);
    s->tc_b = copy_i32(tc_b, (int)s->p[P_TC_BANKS]);
    s->dl1_b = copy_i32(dl1_b, ncl);
    s->dtlb_b = copy_i32(dtlb_b, ncl);
    s->ifu_b = copy_i32(ifu_b, ncl);
    s->fpfu_b = copy_i32(fpfu_b, ncl);
    s->mob_b = copy_i32(mob_b, ncl);
    s->rfb = copy_i32(rfb, nbanks);
    s->sched_flat = copy_i32(sched_flat, 4 * ncl);
    s->qsel = copy_i32(qsel, ncodes);
    s->fu_b = copy_i32(fu_b, ncl * ncodes);

    s->cls = cls; s->lat = lat; s->addr = addr; s->isbr = isbr; s->mp = mp;
    s->dest = dest; s->srcs = srcs; s->ineed = ineed; s->fneed = fneed;
    s->l_start = l_start; s->l_end = l_end; s->l_pc = l_pc;
    s->l_fc = l_fc; s->l_ex = l_ex;
    s->acc = acc;

    int tcb = (int)s->p[P_TC_BANKS];
    s->tc_sets = (Cache *)malloc(sizeof(Cache) * (size_t)tcb);
    for (int b = 0; b < tcb; b++)
        cache_init(&s->tc_sets[b], (int)s->p[P_TC_SETS], (int)s->p[P_TC_ASSOC]);
    s->tc_gated = (int *)calloc((size_t)tcb, sizeof(int));
    int me = (int)s->p[P_TC_MAP_ENTRIES];
    s->tc_map = (int *)malloc(sizeof(int) * (size_t)me);
    /* Balanced initial mapping over all banks (BankMappingTable ctor). */
    {
        int base = me / tcb, rem = me - base * tcb, pos = 0;
        for (int b = 0; b < tcb; b++) {
            int share = base + (b < rem ? 1 : 0);
            for (int k = 0; k < share; k++) s->tc_map[pos++] = b;
        }
    }

    cache_init(&s->ul2, (int)s->p[P_UL2_SETS], (int)s->p[P_UL2_ASSOC]);
    s->dl1 = (Cache *)malloc(sizeof(Cache) * (size_t)ncl);
    for (int c = 0; c < ncl; c++)
        cache_init(&s->dl1[c], (int)s->p[P_DL1_SETS], (int)s->p[P_DL1_ASSOC]);

    int reg_bits = (int)s->p[P_REG_BITS];
    int span = nbanks << reg_bits;
    s->ready_flat = (i64 *)calloc((size_t)span, sizeof(i64));
    s->free_tab = (Ring *)malloc(sizeof(Ring) * (size_t)nbanks);
    for (int b = 0; b < nbanks; b++) {
        int nregs = (int)((b & 1) ? s->p[P_FP_REGS] : s->p[P_INT_REGS]);
        ring_init(&s->free_tab[b], nregs + 1);
        for (int r = 0; r < nregs; r++) ring_push(&s->free_tab[b], r);
    }
    s->maptab = (i64 *)malloc(sizeof(i64) * (size_t)s->p[P_ARCH_TOTAL] * (size_t)ncl);
    for (i64 i = 0; i < s->p[P_ARCH_TOTAL] * ncl; i++) s->maptab[i] = -1;

    s->qcap_max = 0;
    for (int k = 0; k < 4; k++) {
        int cap = (int)s->p[P_QCAP0 + k];
        if (cap > s->qcap_max) s->qcap_max = cap;
    }
    s->queues = (int *)malloc(sizeof(int) * 4u * (size_t)ncl * (size_t)s->qcap_max);
    s->qn = (int *)calloc(4u * (size_t)ncl, sizeof(int));
    /* Copy uops are appended to the *source* cluster's pipe without a
     * capacity check (only the consumer's pipe is capped), so a pipe can
     * exceed the prescheduler limit by the number of live copies, itself
     * bounded by two per ROB entry. */
    int pipe_cap = (int)(s->p[P_PRESCHED_CAP] + 2 * s->p[P_ROB_CAP] + 16);
    s->pipes = (Ring *)malloc(sizeof(Ring) * (size_t)ncl);
    for (int c = 0; c < ncl; c++)
        ring_init(&s->pipes[c], pipe_cap);
    s->in_flight = (i64 *)calloc((size_t)ncl, sizeof(i64));
    s->mob_occ = (i64 *)calloc((size_t)ncl, sizeof(i64));
    ring_init(&s->rob, (int)s->p[P_ROB_CAP] + 2);
    int fqcap = (int)(s->p[P_FBUF] + s->p[P_FWIDTH] + 4);
    ring_init(&s->fq_ready, fqcap);
    ring_init(&s->fq_idx, fqcap);
    s->bus_free = (i64 *)calloc((size_t)s->p[P_NBUSES], sizeof(i64));
    s->p2p_free = (i64 *)calloc((size_t)s->p[P_NLINKS], sizeof(i64));

    /* Rec pool: live recs are ROB entries (<= cap + 1) plus copies in
     * flight (<= 2 per ROB entry: a copy's consumer holds its ROB slot
     * until after the copy completes and is freed). */
    s->pool_cap = (int)(3 * s->p[P_ROB_CAP] + 4 * ncl * s->qcap_max + 1024);
    s->pool = (Rec *)malloc(sizeof(Rec) * (size_t)s->pool_cap);
    s->freerec = (int *)malloc(sizeof(int) * (size_t)s->pool_cap);
    s->nfree = s->pool_cap;
    for (int i = 0; i < s->pool_cap; i++) s->freerec[i] = s->pool_cap - 1 - i;

    s->cal_head = (int *)malloc(sizeof(int) * CALSZ);
    s->cal_tail = (int *)malloc(sizeof(int) * CALSZ);
    for (int i = 0; i < CALSZ; i++) s->cal_head[i] = s->cal_tail[i] = -1;

    s->pending = -1;
    s->disp = (i64 *)calloc((size_t)ncl, sizeof(i64));
    return s;
}

void fp_destroy(void *sv) {
    S *s = (S *)sv;
    if (!s) return;
    int ncl = (int)s->p[P_NCL];
    free(s->rob_b); free(s->front_of); free(s->rat_b); free(s->tc_b);
    free(s->dl1_b); free(s->dtlb_b); free(s->ifu_b); free(s->fpfu_b);
    free(s->mob_b); free(s->rfb); free(s->sched_flat); free(s->qsel);
    free(s->fu_b);
    for (int b = 0; b < (int)s->p[P_TC_BANKS]; b++) {
        free(s->tc_sets[b].tags); free(s->tc_sets[b].count);
    }
    free(s->tc_sets); free(s->tc_gated); free(s->tc_map);
    free(s->ul2.tags); free(s->ul2.count);
    for (int c = 0; c < ncl; c++) { free(s->dl1[c].tags); free(s->dl1[c].count); }
    free(s->dl1);
    free(s->ready_flat);
    for (int b = 0; b < 2 * ncl; b++) free(s->free_tab[b].buf);
    free(s->free_tab); free(s->maptab);
    free(s->queues); free(s->qn);
    for (int c = 0; c < ncl; c++) free(s->pipes[c].buf);
    free(s->pipes); free(s->in_flight); free(s->mob_occ);
    free(s->rob.buf); free(s->fq_ready.buf); free(s->fq_idx.buf);
    free(s->bus_free); free(s->p2p_free);
    free(s->pool); free(s->freerec);
    free(s->cal_head); free(s->cal_tail);
    free(s->disp);
    free(s);
}

/* ---- trace cache ------------------------------------------------------ */

static int tc_hash(i64 address) {
    i64 low = (address >> 2) & 31;
    i64 high = (address >> 7) & 31;
    return (int)((low ^ high) & 31);
}

static int tc_bank_for(S *s, i64 pc) {
    int idx = tc_hash(pc) % (int)s->p[P_TC_MAP_ENTRIES];
    return s->tc_map[idx];
}

/* Returns latency (0 = hit); writes bank and hit flag. */
static i64 tc_access(S *s, i64 pc, int *bank_out, int *hit_out) {
    int bank = tc_bank_for(s, pc);
    if (s->tc_gated[bank]) {
        for (int b = 0; b < (int)s->p[P_TC_BANKS]; b++)
            if (!s->tc_gated[b]) { bank = b; break; }
    }
    Cache *bc = &s->tc_sets[bank];
    int set = (int)((pc >> 4) % bc->sets);
    *bank_out = bank;
    if (!s->tc_gated[bank] && cache_lookup(bc, set, pc)) {
        s->tc_hits++;
        *hit_out = 1;
        return 0;
    }
    s->tc_misses++;
    s->tc_insertions++;
    if (!s->tc_gated[bank]) cache_insert(bc, set, pc);
    *hit_out = 0;
    return s->p[P_UL2_HIT] + s->p[P_TC_BUILD_OVH];
}

void fp_tc_set_gated(void *sv, const i64 *gated, i64 n) {
    S *s = (S *)sv;
    (void)n;
    for (int b = 0; b < (int)s->p[P_TC_BANKS]; b++) {
        int g = (int)gated[b];
        if (g && !s->tc_gated[b]) {
            Cache *bc = &s->tc_sets[b];
            for (int st = 0; st < bc->sets; st++) {
                s->tc_hopflush += bc->count[st];
                bc->count[st] = 0;
            }
        }
        s->tc_gated[b] = g;
    }
}

void fp_tc_set_map(void *sv, const i64 *entries, i64 n) {
    S *s = (S *)sv;
    for (i64 i = 0; i < n; i++) s->tc_map[i] = (int)entries[i];
}

/* ---- UL2 / L1D -------------------------------------------------------- */

static i64 ul2_access(S *s, i64 address) {
    i64 line = address / s->p[P_UL2_LINE_BYTES];
    int set = (int)(line % s->ul2.sets);
    if (cache_lookup(&s->ul2, set, line)) {
        s->ul2_hits++;
        return s->p[P_UL2_HIT];
    }
    s->ul2_misses++;
    cache_insert(&s->ul2, set, line);
    return s->p[P_UL2_HIT] + s->p[P_UL2_MISS];
}

i64 fp_ul2_access(void *sv, i64 address) { return ul2_access((S *)sv, address); }

void fp_ul2_warm(void *sv, const i64 *addrs, i64 n) {
    S *s = (S *)sv;
    for (i64 i = 0; i < n; i++) ul2_access(s, addrs[i]);
}

void fp_ul2_reset_stats(void *sv) {
    S *s = (S *)sv;
    s->ul2_hits = 0;
    s->ul2_misses = 0;
}

static int dc_access(S *s, int cl, i64 address) {
    Cache *c = &s->dl1[cl];
    i64 line = address / s->p[P_DL1_LINE_BYTES];
    int set = (int)(line % c->sets);
    if (cache_lookup(c, set, line)) return 1;
    cache_insert(c, set, line);
    return 0;
}

/* ---- stats snapshot --------------------------------------------------- */

void fp_stats(void *sv, i64 *out) {
    S *s = (S *)sv;
    int ncl = (int)s->p[P_NCL];
    out[S_CYCLE] = s->cycle;
    out[S_FETCHED] = s->s_fetched;
    out[S_COMMITTED] = s->s_committed;
    out[S_CCOPIES] = s->s_ccopies;
    out[S_COPYG] = s->s_copyg;
    out[S_COPYREQ] = s->s_copyreq;
    out[S_BRANCHES] = s->s_branches;
    out[S_MISPRED] = s->s_mispred;
    out[S_DHITS] = s->s_dhits;
    out[S_DMISS] = s->s_dmiss;
    out[S_UL2H] = s->s_ul2h;
    out[S_UL2M] = s->s_ul2m;
    out[S_RSTALL] = s->s_rstall;
    out[S_ROBSTALL] = s->s_robstall;
    out[S_FSTALL] = s->s_fstall;
    out[S_TC_HITS] = s->tc_hits;
    out[S_TC_MISSES] = s->tc_misses;
    out[S_TC_INSERTIONS] = s->tc_insertions;
    out[S_TC_HOPFLUSH] = s->tc_hopflush;
    out[S_UL2C_HITS] = s->ul2_hits;
    out[S_UL2C_MISSES] = s->ul2_misses;
    out[S_FINISHED] =
        (s->exhausted && s->lbpos >= s->lbend && s->live == 0) ? 1 : 0;
    out[S_LAST_COMMIT] = s->last_commit;
    out[S_DL_OCC] = s->dl_occ;
    out[S_DL_RQ] = s->dl_rq;
    for (int c = 0; c < ncl; c++) out[S_DISP0 + c] = s->disp[c];
}

/* ---- the core loop ---------------------------------------------------- */

static void free_rec(S *s, int ri) { s->freerec[s->nfree++] = ri; }

/* Returns 0 on target reached / finished, 1 on deadlock, 2 on internal
 * resource exhaustion (pool/calendar overflow: a bug, surfaced loudly). */
i64 fp_run_to(void *sv, i64 target, i64 gate_on, i64 gate_period) {
    S *s = (S *)sv;
    Rec *pool = s->pool;
    i64 *acc = s->acc;
    i64 *ready_flat = s->ready_flat;
    i64 *maptab = s->maptab;
    const int ncl = (int)s->p[P_NCL];
    const int reg_bits = (int)s->p[P_REG_BITS];
    const i64 reg_mask = (1LL << reg_bits) - 1;
    const int fwidth = (int)s->p[P_FWIDTH];
    const int dwidth = (int)s->p[P_DWIDTH];
    const int cwidth = (int)s->p[P_CWIDTH];
    const int iwidth = (int)s->p[P_IWIDTH];
    const i64 displat = s->p[P_DISPLAT];
    const int presched_cap = (int)s->p[P_PRESCHED_CAP];
    const i64 mp_penalty = s->p[P_MP_PENALTY];
    const int fbuf = (int)s->p[P_FBUF];
    const i64 deadlock_after = s->p[P_DEADLOCK];
    const i64 ready_off = s->p[P_READY_OFF];
    const i64 ul2_hit = s->p[P_UL2_HIT];
    const i64 dc_hit = s->p[P_DC_HIT];
    const i64 commit_lag = s->p[P_COMMIT_LAG];
    const int rob_cap = (int)s->p[P_ROB_CAP];
    const int mob_cap = (int)s->p[P_MOB_CAP];
    const int policy = (int)s->p[P_POLICY];
    const int n_buses = (int)s->p[P_NBUSES];
    const i64 bus_arb = s->p[P_BUS_ARB];
    const i64 bus_xfer = s->p[P_BUS_XFER];
    const int n_links = (int)s->p[P_NLINKS];
    const i64 p2p_hop = s->p[P_P2P_HOP];
    const i64 num_int = s->p[P_NUM_INT_ARCH];
    const i64 n_lines = s->p[P_NLINES];
    const i64 code_copy = s->p[P_CODE_COPY];
    const i64 code_load = s->p[P_CODE_LOAD];
    const i64 code_store = s->p[P_CODE_STORE];
    const int ncodes = (int)s->p[P_N_CODES];
    const int itlb_b = (int)s->p[P_ITLB_B];
    const int deco_b = (int)s->p[P_DECO_B];
    const int bp_b = (int)s->p[P_BP_B];
    const int ul2_b = (int)s->p[P_UL2_B];
    const int qcap_max = s->qcap_max;
    const int has_gate = gate_period > 0;

    i64 cycle = s->cycle;

    while (cycle < target) {
        if (s->exhausted && s->lbpos >= s->lbend && s->live == 0) break;

        /* ---- commit ---- */
        {
            int committed = 0;
            while (ring_len(&s->rob) && committed < cwidth) {
                int ri = (int)ring_peek(&s->rob);
                Rec *r = &pool[ri];
                if (r->comp < 0 || r->comp + commit_lag > cycle) break;
                ring_pop(&s->rob);
                committed++;
                acc[s->rob_b[r->frontend]]++;
                for (int i = 0; i < r->nprev; i++) {
                    i64 pr = r->prev[i];
                    ring_push(&s->free_tab[pr >> reg_bits], pr & reg_mask);
                }
                int cl = (int)r->cluster;
                s->in_flight[cl]--;
                s->s_committed++;
                s->live--;
                if (r->is_store) {
                    for (int c = 0; c < ncl; c++) s->mob_occ[c]--;
                    dc_access(s, cl, r->addr);
                    acc[s->dl1_b[cl]]++;
                } else if (r->is_load) {
                    s->mob_occ[cl]--;
                }
                free_rec(s, ri);
            }
            if (committed) s->last_commit = cycle;
        }

        /* ---- complete (writeback) ---- */
        {
            int slot = (int)(cycle % CALSZ);
            int ri = s->cal_head[slot];
            if (ri >= 0) {
                s->cal_head[slot] = s->cal_tail[slot] = -1;
                while (ri >= 0) {
                    Rec *r = &pool[ri];
                    int nxt = r->cal_next;
                    r->comp = cycle;
                    if (r->dest >= 0) acc[s->rfb[r->dest >> reg_bits]]++;
                    if (r->is_copy) {
                        s->in_flight[r->cluster]--;
                        s->s_ccopies++;
                        s->live--;
                        free_rec(s, ri);
                    }
                    if (r->mpb && s->pending == ri) {
                        i64 resume = cycle + mp_penalty;
                        if (resume > s->stall_until) s->stall_until = resume;
                        s->waiting = 0;
                        s->pending = -1;
                    }
                    ri = nxt;
                }
            }
        }

        /* ---- issue + execute ---- */
        for (int qi = 0; qi < 4 * ncl; qi++) {
            int n = s->qn[qi];
            if (!n) continue;
            int *q = s->queues + (size_t)qi * (size_t)qcap_max;
            int cl = qi >> 2;
            int width = iwidth;
            int w = 0; /* write cursor for compaction */
            for (int i = 0; i < n; i++) {
                int ri = q[i];
                Rec *r = &pool[ri];
                if (width) {
                    i64 s0 = r->src0, s1 = r->src1;
                    if ((s0 < 0 || ready_flat[s0] <= cycle)
                        && (s1 < 0 || ready_flat[s1] <= cycle)) {
                        width--;
                        acc[s->sched_flat[qi]]++;
                        if (s0 >= 0) acc[s->rfb[s0 >> reg_bits]]++;
                        if (s1 >= 0) acc[s->rfb[s1 >> reg_bits]]++;
                        i64 lat;
                        if (r->is_copy) {
                            i64 hops = cl - r->addr;
                            if (hops < 0) hops = -hops;
                            if (hops > 2) hops = 2;
                            if (hops == 0) {
                                lat = 1;
                            } else {
                                i64 start0 = cycle + 1;
                                int li = 0;
                                i64 lg = s->p2p_free[0];
                                for (int l2 = 1; l2 < n_links; l2++)
                                    if (s->p2p_free[l2] < lg) {
                                        lg = s->p2p_free[l2];
                                        li = l2;
                                    }
                                i64 start = start0 > lg ? start0 : lg;
                                i64 finish = start + hops * p2p_hop;
                                s->p2p_free[li] = start + p2p_hop;
                                lat = finish - cycle;
                                if (lat < 1) lat = 1;
                            }
                        } else if (r->is_load) {
                            acc[s->dtlb_b[cl]]++;
                            acc[s->dl1_b[cl]]++;
                            acc[s->ifu_b[cl]]++;
                            if (dc_access(s, cl, r->addr)) {
                                s->s_dhits++;
                                lat = dc_hit;
                            } else {
                                s->s_dmiss++;
                                i64 grant0 = cycle + bus_arb;
                                int bi = 0;
                                i64 bg = s->bus_free[0];
                                if (bg < grant0) bg = grant0;
                                for (int b2 = 1; b2 < n_buses; b2++) {
                                    i64 g2 = s->bus_free[b2];
                                    if (g2 < grant0) g2 = grant0;
                                    if (g2 < bg) { bg = g2; bi = b2; }
                                }
                                i64 finish = bg + bus_xfer;
                                s->bus_free[bi] = finish;
                                i64 ul2_lat = ul2_access(s, r->addr);
                                if (ul2_lat > ul2_hit) s->s_ul2m++;
                                else s->s_ul2h++;
                                acc[ul2_b]++;
                                lat = (finish - cycle) + ul2_lat + dc_hit;
                            }
                        } else if (r->is_store) {
                            acc[s->dtlb_b[cl]]++;
                            acc[s->ifu_b[cl]]++;
                            for (int c = 0; c < ncl; c++) acc[s->mob_b[c]]++;
                            lat = 1;
                        } else {
                            acc[s->fu_b[cl * ncodes + r->code]]++;
                            lat = r->lat;
                        }
                        if (lat < 1) lat = 1;
                        i64 comp = cycle + lat;
                        if (comp - cycle >= CALSZ) return 2;
                        if (r->dest >= 0) ready_flat[r->dest] = comp;
                        int slot = (int)(comp % CALSZ);
                        r->cal_next = -1;
                        if (s->cal_head[slot] < 0) {
                            s->cal_head[slot] = s->cal_tail[slot] = ri;
                        } else {
                            pool[s->cal_tail[slot]].cal_next = ri;
                            s->cal_tail[slot] = ri;
                        }
                        continue; /* issued: not kept in the queue */
                    }
                }
                q[w++] = ri;
            }
            s->qn[qi] = w;
        }

        /* ---- dispatch arrival ---- */
        for (int cl = 0; cl < ncl; cl++) {
            Ring *pipe = &s->pipes[cl];
            while (ring_len(pipe)) {
                int ri = (int)ring_peek(pipe);
                Rec *r = &pool[ri];
                if (r->arrival > cycle) break;
                int k = s->qsel[r->code];
                int qi = cl * 4 + k;
                if (s->qn[qi] >= (int)s->p[P_QCAP0 + k]) break;
                ring_pop(pipe);
                s->queues[(size_t)qi * (size_t)qcap_max + s->qn[qi]] = ri;
                s->qn[qi]++;
                acc[s->sched_flat[qi]]++;
            }
        }

        /* ---- rename / steer / dispatch ---- */
        {
            i64 arrival = cycle + displat;
            int renamed = 0;
            while (ring_len(&s->fq_ready) && renamed < dwidth) {
                if (ring_peek(&s->fq_ready) > cycle) break;
                i64 idx = ring_peek(&s->fq_idx);
                const i64 *sp = s->srcs + idx * 2;
                i64 sf0 = sp[0], sf1 = sp[1];
                int cl;
                if (policy == 0) { /* dependence */
                    int best = 0;
                    i64 best_score = -(1LL << 40);
                    for (int c = 0; c < ncl; c++) {
                        i64 locality = 0;
                        if (sf0 >= 0 && maptab[sf0 * ncl + c] >= 0) locality++;
                        if (sf1 >= 0 && maptab[sf1 * ncl + c] >= 0) locality++;
                        i64 load = s->in_flight[c];
                        i64 score = locality * 24 - load;
                        if (score > best_score
                            || (score == best_score && load < s->in_flight[best])) {
                            best_score = score;
                            best = c;
                        }
                    }
                    cl = best;
                } else if (policy == 1) { /* round robin */
                    cl = (int)s->rr;
                    s->rr++;
                    if (s->rr >= ncl) s->rr = 0;
                } else { /* least loaded */
                    cl = 0;
                    i64 best_load = s->in_flight[0];
                    for (int c = 1; c < ncl; c++)
                        if (s->in_flight[c] < best_load) {
                            cl = c;
                            best_load = s->in_flight[c];
                        }
                }
                int f = s->front_of[cl];
                if (ring_len(&s->rob) >= rob_cap) {
                    s->s_robstall++;
                    break;
                }
                int b_int = cl * 2;
                i64 ineed = s->ineed[idx], fneed = s->fneed[idx];
                if (ring_len(&s->free_tab[b_int]) < ineed
                    || ring_len(&s->free_tab[b_int + 1]) < fneed) {
                    s->s_rstall++;
                    break;
                }
                if (ring_len(&s->pipes[cl]) >= presched_cap) {
                    s->s_rstall++;
                    break;
                }
                i64 code = s->cls[idx];
                int is_store = code == code_store;
                int is_load = code == code_load;
                if (is_store) {
                    int mob_ok = 1;
                    for (int c = 0; c < ncl; c++)
                        if (s->mob_occ[c] >= mob_cap) { mob_ok = 0; break; }
                    if (!mob_ok) {
                        s->s_rstall++;
                        break;
                    }
                } else if (is_load && s->mob_occ[cl] >= mob_cap) {
                    s->s_rstall++;
                    break;
                }

                ring_pop(&s->fq_ready);
                ring_pop(&s->fq_idx);
                i64 dfl = s->dest[idx];
                acc[deco_b] += ineed + fneed;
                i64 src_refs[2];
                int nsr = 0;
                int copies[2];
                int ncop = 0;
                int rat_cl = s->rat_b[cl];
                for (int si = 0; si < 2; si++) {
                    i64 flat = si == 0 ? sf0 : sf1;
                    if (flat < 0) break;
                    i64 *row = maptab + flat * ncl;
                    acc[rat_cl]++;
                    i64 local = row[cl];
                    if (local >= 0) {
                        src_refs[nsr++] = local;
                        continue;
                    }
                    /* Prefer a holder on the consumer's frontend, then the
                     * closest to the destination cluster (first match wins
                     * ties, scanning candidates in cluster order). */
                    int scl = -1;
                    i64 best_d = 0;
                    int any_same = 0;
                    for (int c = 0; c < ncl; c++)
                        if (row[c] >= 0 && s->front_of[c] == f) { any_same = 1; break; }
                    for (int c = 0; c < ncl; c++) {
                        if (row[c] < 0) continue;
                        if (any_same && s->front_of[c] != f) continue;
                        i64 d2 = c - cl;
                        if (d2 < 0) d2 = -d2;
                        if (scl < 0 || d2 < best_d) {
                            scl = c;
                            best_d = d2;
                        }
                    }
                    if (scl < 0) continue; /* no mapping anywhere */
                    i64 src_ref = row[scl];
                    int kk = flat >= num_int ? 1 : 0;
                    int b = cl * 2 + kk;
                    i64 phys = ring_pop(&s->free_tab[b]);
                    i64 new_ref = ((i64)b << reg_bits) | phys;
                    ready_flat[new_ref] = NOT_READY;
                    row[cl] = new_ref;
                    acc[s->rat_b[scl]]++;
                    acc[rat_cl]++;
                    int src_f = s->front_of[scl];
                    if (!s->nfree) return 2;
                    int cri = s->freerec[--s->nfree];
                    Rec *cr = &pool[cri];
                    cr->code = code_copy;
                    cr->cluster = scl;
                    cr->frontend = src_f;
                    cr->dest = new_ref;
                    cr->src0 = src_ref;
                    cr->src1 = -1;
                    cr->nsrc = 1;
                    cr->nprev = 0;
                    cr->comp = -1;
                    cr->addr = cl; /* copy: destination cluster */
                    cr->lat = 1;
                    cr->is_copy = 1;
                    cr->is_store = 0;
                    cr->is_load = 0;
                    cr->mpb = 0;
                    copies[ncop++] = cri;
                    src_refs[nsr++] = new_ref;
                    s->s_copyg++;
                    if (src_f != f) s->s_copyreq++;
                    s->live++;
                }
                i64 dref = -1;
                int nprev = 0;
                i64 prevs[MAX_PREV];
                if (dfl >= 0) {
                    int b = cl * 2 + (dfl >= num_int ? 1 : 0);
                    i64 phys = ring_pop(&s->free_tab[b]);
                    dref = ((i64)b << reg_bits) | phys;
                    ready_flat[dref] = NOT_READY;
                    i64 *row = maptab + dfl * ncl;
                    for (int c = 0; c < ncl; c++) {
                        if (row[c] >= 0) prevs[nprev++] = row[c];
                        row[c] = -1;
                    }
                    row[cl] = dref;
                    acc[rat_cl]++;
                }
                int mpb = s->isbr[idx] && s->mp[idx];
                if (!s->nfree) return 2;
                int ri = s->freerec[--s->nfree];
                Rec *r = &pool[ri];
                r->code = code;
                r->cluster = cl;
                r->frontend = f;
                r->dest = dref;
                r->src0 = nsr > 0 ? src_refs[0] : -1;
                r->src1 = nsr > 1 ? src_refs[1] : -1;
                r->nsrc = nsr;
                r->nprev = nprev;
                for (int i = 0; i < nprev; i++) r->prev[i] = prevs[i];
                r->comp = -1;
                r->addr = s->addr[idx];
                r->lat = s->lat[idx];
                r->arrival = arrival;
                r->is_copy = 0;
                r->is_store = is_store;
                r->is_load = is_load;
                r->mpb = mpb;
                ring_push(&s->rob, ri);
                acc[s->rob_b[f]]++;
                if (is_store) {
                    for (int c = 0; c < ncl; c++) {
                        s->mob_occ[c]++;
                        acc[s->mob_b[c]]++;
                    }
                } else if (is_load) {
                    s->mob_occ[cl]++;
                    acc[s->mob_b[cl]]++;
                }
                ring_push(&s->pipes[cl], ri);
                s->in_flight[cl]++;
                s->disp[cl]++;
                if (mpb && s->pending < 0) s->pending = ri;
                for (int i = 0; i < ncop; i++) {
                    Rec *cr = &pool[copies[i]];
                    cr->arrival = arrival + (cr->frontend != f ? 1 : 0);
                    ring_push(&s->pipes[cr->cluster], copies[i]);
                    s->in_flight[cr->cluster]++;
                }
                renamed++;
            }
        }

        /* ---- fetch ---- */
        if (has_gate && (cycle % gate_period) >= gate_on) {
            s->s_fstall++;
        } else if (ring_len(&s->fq_ready) < fbuf) {
            if (s->waiting || cycle < s->stall_until) {
                s->s_fstall++;
            } else {
                int fetched = 0;
                while (fetched < fwidth) {
                    if (s->lbpos >= s->lbend) {
                        if (s->line_idx >= n_lines) {
                            s->exhausted = 1;
                            break;
                        }
                        i64 li = s->line_idx++;
                        int bank, hit;
                        i64 lat = tc_access(s, s->l_pc[li], &bank, &hit);
                        acc[s->tc_b[bank]] += s->l_fc[li];
                        acc[itlb_b]++;
                        if (!hit) {
                            acc[ul2_b]++;
                            acc[s->tc_b[bank]]++;
                            i64 resume = cycle + lat;
                            if (resume > s->stall_until) s->stall_until = resume;
                        }
                        if (s->l_ex[li]) s->exhausted = 1;
                        s->lbpos = s->l_start[li];
                        s->lbend = s->l_end[li];
                        if (cycle < s->stall_until) break;
                    }
                    i64 idx = s->lbpos++;
                    fetched++;
                    s->s_fetched++;
                    acc[deco_b]++;
                    ring_push(&s->fq_ready, cycle + ready_off);
                    ring_push(&s->fq_idx, idx);
                    s->live++;
                    if (s->isbr[idx]) {
                        s->s_branches++;
                        acc[bp_b]++;
                        if (s->mp[idx]) {
                            s->s_mispred++;
                            s->waiting = 1;
                            break;
                        }
                    }
                }
            }
        }

        i64 old_cycle = cycle;
        cycle++;

        /* ---- deadlock guard ---- */
        if (old_cycle - s->last_commit > deadlock_after
            && !(s->exhausted && s->lbpos >= s->lbend && s->live == 0)) {
            s->dl_occ = ring_len(&s->rob);
            i64 rq = 0;
            i64 limit = old_cycle + 1;
            int fn = ring_len(&s->fq_ready);
            for (int i = 0; i < fn; i++) {
                if (ring_at(&s->fq_ready, i) <= limit) {
                    rq++;
                    if (rq >= fbuf) break;
                }
            }
            s->dl_rq = rq;
            s->cycle = cycle;
            return 1;
        }
    }
    s->cycle = cycle;
    return 0;
}

"""Serializable activity traces: the hand-off between the two simulation stages.

The engine's per-uop timing simulation is pure Python and dominates the cost
of a cell (~16 k uops/s), while the array-backed physics pipeline processes
thousands of intervals per second.  Yet only the *physics* side depends on
the power/thermal parameters a sweep typically varies — the timing model
never reads ``config.power`` or ``config.thermal`` beyond the interval
length.  An :class:`ActivityTrace` captures everything the physics stage
consumes from the timing stage:

* the per-interval activity-count matrix over the engine's
  :class:`~repro.sim.block_index.BlockIndex` (``counts``, accesses),
* the cycles each interval actually ran and the processor cycle at which it
  ended (the variable-length final interval is preserved exactly),
* the per-interval Vdd-gated-bank masks produced by the (deterministic,
  temperature-independent) bank-hopping rotation,
* the run's final :class:`~repro.sim.stats.SimulationStats`.

Replaying a trace through :class:`~repro.sim.engine.PhysicsStage` reproduces
the coupled run bit-for-bit — provided the timing stage genuinely never saw
a temperature.  :func:`timing_feedback_reason` is the single authority on
that: thermal-aware bank mapping and feedback-bearing DTM policies couple
temperatures back into timing, so such cells must never be captured or
replayed (the campaign layer falls back to the exact coupled path
automatically).

Traces serialize to canonical JSON (:meth:`ActivityTrace.to_json`): two
specs that differ only in physics-side parameters produce *byte-identical*
trace documents, which is what lets the campaign
:class:`~repro.campaign.cache.ResultCache` store one trace artifact per
:meth:`~repro.campaign.spec.RunSpec.timing_key` and share it across every
cell of a physics sweep.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim.stats import SimulationStats

#: Version stamp of the trace document format.  Bump on any change to the
#: captured fields; the campaign cache embeds it in trace-artifact keys so a
#: stale on-disk trace is never replayed by a newer implementation.
#: Version 2 added the ``provenance`` mapping (timing-side generation
#: parameters: seed, trace length), which the chip layer uses to identify the
#: single-core capture a per-core trace came from.
TRACE_SCHEMA_VERSION = 2

#: Magic prefix of the binary trace container (:meth:`ActivityTrace.to_bytes`).
TRACE_BIN_MAGIC = b"RTRC"
#: Version of the binary *container* layout (independent of the trace
#: document schema above, which is carried inside the header).
TRACE_BIN_VERSION = 1


def timing_feedback_reason(config, dtm_policy: Optional[str] = None) -> Optional[str]:
    """Why a cell's timing depends on its physics — or ``None`` if it doesn't.

    The two-stage split is only sound when temperatures never influence the
    instruction stream.  Two mechanisms break that:

    * the paper's thermal-aware bank mapping (Section 3.2.2) biases the
      trace-cache mapping table by sensor readings, steering fetch — and
      with it every downstream activity count — by temperature;
    * any DTM policy that actuates on sensor readings (fetch throttling,
      clock gating, DVFS — everything except the explicit no-op policy,
      see :attr:`repro.dtm.policies.DTMPolicy.feedback`).

    Returns a human-readable reason for the coupled fallback, or ``None``
    when the cell is safe to capture and replay.  ``dtm_policy`` is a
    :func:`repro.dtm.make_policy` spec string (or ``None``).
    """
    if config.frontend.trace_cache.thermal_aware_mapping:
        return "thermal-aware bank mapping steers fetch by temperature"
    if dtm_policy is not None:
        # Imported lazily: repro.dtm pulls in the block index and config
        # modules, and this helper is also called from the campaign layer.
        from repro.dtm import make_policy

        policy = make_policy(dtm_policy)
        if policy.feedback:
            return f"DTM policy {policy.name!r} actuates on temperatures"
    return None


@dataclass(frozen=True)
class ActivityTrace:
    """The timing stage's complete output for one (config, benchmark) cell.

    Arrays are laid out interval-major: row ``i`` of :attr:`counts` (and of
    :attr:`gated_masks`, when present) describes interval ``i``.  All content
    is timing-side only — nothing here depends on ``config.power`` or
    ``config.thermal``, which is what makes one trace replayable under every
    physics variant of its timing key.
    """

    #: Benchmark the trace was generated from.
    benchmark: str
    #: Block names in capture order (the engine's block-index order).
    block_names: Tuple[str, ...]
    #: Nominal thermal-interval length in cycles.
    interval_cycles: int
    #: Per-interval activity counts, shape (intervals, blocks), accesses.
    counts: np.ndarray
    #: Cycles each interval actually ran (the final one may be shorter).
    cycles: np.ndarray
    #: Processor cycle at the end of each interval.
    end_cycles: np.ndarray
    #: Per-interval Vdd-gated-bank masks, shape (intervals, blocks), or
    #: ``None`` when the configuration gates no banks.
    gated_masks: Optional[np.ndarray]
    #: Final timing statistics of the captured run.
    stats: SimulationStats
    #: Timing-side generation parameters of the capture (``seed``,
    #: ``trace_uops``, ...).  Strictly *timing* content only: two cells that
    #: differ in a physics parameter must still produce byte-identical trace
    #: documents, so nothing physics-side (and no DTM policy name — ``None``
    #: and ``"none"`` share a trace) may ever be recorded here.
    provenance: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.counts.shape[0])

    @property
    def num_blocks(self) -> int:
        return int(self.counts.shape[1])

    def gated_mask(self, interval: int) -> Optional[np.ndarray]:
        """Interval ``interval``'s gated-bank mask (or ``None``)."""
        if self.gated_masks is None:
            return None
        return self.gated_masks[interval]

    def stats_copy(self) -> SimulationStats:
        """A private stats object for one replayed result."""
        return self.stats.clone()

    # ------------------------------------------------------------------
    # Canonical serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-ready document (canonical: a pure function of the content)."""
        return {
            "trace_schema_version": TRACE_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "block_names": list(self.block_names),
            "interval_cycles": self.interval_cycles,
            "counts": self.counts.tolist(),
            "cycles": self.cycles.tolist(),
            "end_cycles": self.end_cycles.tolist(),
            "gated_masks": (
                None
                if self.gated_masks is None
                else [[bool(v) for v in row] for row in self.gated_masks]
            ),
            "stats": self.stats.to_payload(),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ActivityTrace":
        version = data.get("trace_schema_version")
        if version != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported activity-trace schema version {version!r} "
                f"(supported: {TRACE_SCHEMA_VERSION})"
            )
        stats = SimulationStats.from_payload(data["stats"])
        gated = data["gated_masks"]
        return cls(
            benchmark=data["benchmark"],
            block_names=tuple(data["block_names"]),
            interval_cycles=data["interval_cycles"],
            counts=np.asarray(data["counts"], dtype=np.int64),
            cycles=np.asarray(data["cycles"], dtype=np.int64),
            end_cycles=np.asarray(data["end_cycles"], dtype=np.int64),
            gated_masks=None if gated is None else np.asarray(gated, dtype=bool),
            stats=stats,
            provenance=data.get("provenance", {}),
        )

    def to_json(self) -> str:
        """Canonical JSON: byte-identical for identical timing content."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ActivityTrace":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        # Atomic (temp file + rename): concurrent captures of the same
        # timing key — two service jobs racing — are last-writer-wins and a
        # reader never sees a torn artifact.
        from repro.sim.serialization import atomic_write_text

        return atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ActivityTrace":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------
    # Compact binary serialization (cache artifacts, process boundaries)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Compact binary form: a zlib-compressed header + raw array bytes.

        Layout: the 4-byte :data:`TRACE_BIN_MAGIC`, one container-version
        byte, then a zlib stream of ``<I``-length-prefixed canonical-JSON
        header (schema version, benchmark, block names, interval length,
        array dimensions, stats, provenance) followed by the arrays as raw
        little-endian bytes (``counts``/``cycles``/``end_cycles`` as
        ``int64``, the gated masks — when present — as ``uint8``).  Stdlib
        only (``struct`` + ``zlib``), like the PNG encoder.  An order of
        magnitude smaller than :meth:`to_json` (counts compress well), which
        is what the campaign cache stores on disk (``*.trace.bin``) and what
        pickling ships across pool/service process boundaries.
        """
        header = {
            "trace_schema_version": TRACE_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "block_names": list(self.block_names),
            "interval_cycles": self.interval_cycles,
            "intervals": len(self),
            "blocks": self.num_blocks,
            "has_gated_masks": self.gated_masks is not None,
            "stats": self.stats.to_payload(),
            "provenance": dict(self.provenance),
        }
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        parts = [
            struct.pack("<I", len(header_bytes)),
            header_bytes,
            np.ascontiguousarray(self.counts, dtype="<i8").tobytes(),
            np.ascontiguousarray(self.cycles, dtype="<i8").tobytes(),
            np.ascontiguousarray(self.end_cycles, dtype="<i8").tobytes(),
        ]
        if self.gated_masks is not None:
            parts.append(
                np.ascontiguousarray(self.gated_masks, dtype=np.uint8).tobytes()
            )
        return (
            TRACE_BIN_MAGIC
            + struct.pack("<B", TRACE_BIN_VERSION)
            + zlib.compress(b"".join(parts), 6)
        )

    @classmethod
    def from_bytes(cls, data) -> "ActivityTrace":
        """Inverse of :meth:`to_bytes`; raises ``ValueError`` on bad input.

        Accepts any object exposing the buffer protocol (``bytes``,
        ``memoryview``, ``mmap.mmap``, a ``multiprocessing.shared_memory``
        buffer slice), so callers can decode straight out of a memory-mapped
        cache artifact or a shared-memory segment without first copying the
        compressed payload into a ``bytes`` object.
        """
        view = data if isinstance(data, memoryview) else memoryview(data)
        if bytes(view[: len(TRACE_BIN_MAGIC)]) != TRACE_BIN_MAGIC:
            raise ValueError("not a binary activity trace (bad magic)")
        version = view[len(TRACE_BIN_MAGIC)]
        if version != TRACE_BIN_VERSION:
            raise ValueError(
                f"unsupported binary trace container version {version} "
                f"(supported: {TRACE_BIN_VERSION})"
            )
        try:
            payload = zlib.decompress(view[len(TRACE_BIN_MAGIC) + 1 :])
        except zlib.error as error:
            raise ValueError(f"corrupt binary activity trace: {error}") from error
        (header_len,) = struct.unpack_from("<I", payload, 0)
        offset = 4
        header = json.loads(payload[offset : offset + header_len].decode("utf-8"))
        offset += header_len
        schema = header.get("trace_schema_version")
        if schema != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported activity-trace schema version {schema!r} "
                f"(supported: {TRACE_SCHEMA_VERSION})"
            )
        intervals = int(header["intervals"])
        blocks = int(header["blocks"])

        def take(count: int, dtype) -> np.ndarray:
            nonlocal offset
            array = np.frombuffer(
                payload, dtype=dtype, count=count, offset=offset
            )
            offset += array.nbytes
            return array

        counts = take(intervals * blocks, "<i8").reshape(intervals, blocks)
        cycles = take(intervals, "<i8")
        end_cycles = take(intervals, "<i8")
        gated = None
        if header["has_gated_masks"]:
            gated = (
                take(intervals * blocks, np.uint8)
                .reshape(intervals, blocks)
                .astype(bool)
            )
        if offset != len(payload):
            raise ValueError("binary activity trace has trailing bytes")
        return cls(
            benchmark=header["benchmark"],
            block_names=tuple(header["block_names"]),
            interval_cycles=int(header["interval_cycles"]),
            counts=counts.astype(np.int64),
            cycles=cycles.astype(np.int64),
            end_cycles=end_cycles.astype(np.int64),
            gated_masks=gated,
            stats=SimulationStats.from_payload(header["stats"]),
            provenance=header.get("provenance", {}),
        )

    def save_bytes(self, path: Union[str, Path]) -> Path:
        """Write the compact binary form atomically (see :meth:`save`)."""
        from repro.sim.serialization import atomic_write_bytes

        return atomic_write_bytes(path, self.to_bytes())

    @classmethod
    def load_bytes(cls, path: Union[str, Path]) -> "ActivityTrace":
        return cls.from_bytes(Path(path).read_bytes())

    def __reduce__(self):
        # Pickle as the compressed binary form: a replay-group task carries
        # its trace across the pool/service process boundary as a few kB of
        # zlib bytes instead of megabytes of pickled int64 arrays.
        return (ActivityTrace.from_bytes, (self.to_bytes(),))


class TraceRecorder:
    """Accumulates per-interval timing output during a coupled (capture) run.

    The engine calls :meth:`record` once per simulated interval — right
    after the activity counters are drained, with exactly the vectors the
    physics stage is about to consume — and :meth:`finish` at the end of the
    run.  Counts and masks are copied: the engine hands over live arrays.
    """

    def __init__(
        self,
        benchmark: str,
        block_names: Sequence[str],
        interval_cycles: int,
        provenance: Optional[Dict[str, object]] = None,
    ) -> None:
        self.benchmark = benchmark
        self.block_names = tuple(block_names)
        self.interval_cycles = interval_cycles
        self.provenance = dict(provenance or {})
        self._counts = []
        self._cycles = []
        self._end_cycles = []
        self._masks = []
        self._any_gated = False

    def record(
        self,
        counts: np.ndarray,
        cycles_elapsed: int,
        end_cycle: int,
        gated_mask: Optional[np.ndarray],
    ) -> None:
        self._counts.append(np.array(counts, dtype=np.int64))
        self._cycles.append(cycles_elapsed)
        self._end_cycles.append(end_cycle)
        if gated_mask is not None:
            self._any_gated = True
        self._masks.append(None if gated_mask is None else np.array(gated_mask, dtype=bool))

    def finish(self, stats: SimulationStats) -> ActivityTrace:
        if not self._counts:
            raise ValueError("cannot build an ActivityTrace from zero intervals")
        masks: Optional[np.ndarray] = None
        if self._any_gated:
            blocks = len(self.block_names)
            masks = np.stack(
                [
                    m if m is not None else np.zeros(blocks, dtype=bool)
                    for m in self._masks
                ]
            )
        return ActivityTrace(
            benchmark=self.benchmark,
            block_names=self.block_names,
            interval_cycles=self.interval_cycles,
            counts=np.stack(self._counts),
            cycles=np.asarray(self._cycles, dtype=np.int64),
            end_cycles=np.asarray(self._end_cycles, dtype=np.int64),
            gated_masks=masks,
            stats=stats.clone(),
            provenance=dict(self.provenance),
        )

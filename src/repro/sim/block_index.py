"""A fixed, ordered index of functional-block names.

The power and thermal fast path operates on NumPy vectors instead of
per-block dictionaries.  A :class:`BlockIndex` pins the order of those
vectors: position ``i`` of every activity / power / temperature array refers
to ``index.names[i]``.  The activity counters, the power and leakage models
and the simulation engine all share one index per run, so per-interval data
flows through the pipeline as arrays and dictionaries only appear at the
public result boundary (:class:`~repro.sim.results.IntervalRecord`,
serialization, metric queries).

The index is deliberately independent of any particular subsystem's naming
order — the processor's activity counters, the power parameters and the
floorplan each enumerate blocks in their own order, and the conversion
helpers here (plus :meth:`positions`) make the alignment explicit instead of
implicit.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence

import numpy as np


class BlockIndex:
    """An immutable ``name <-> position`` mapping for block-vector layouts."""

    __slots__ = ("names", "_positions")

    def __init__(self, names: Iterable[str]) -> None:
        self.names: tuple = tuple(names)
        if not self.names:
            raise ValueError("a block index needs at least one block")
        self._positions: Dict[str, int] = {
            name: i for i, name in enumerate(self.names)
        }
        if len(self._positions) != len(self.names):
            raise ValueError("duplicate block names in block index")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __contains__(self, name: object) -> bool:
        return name in self._positions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockIndex({len(self.names)} blocks)"

    def position(self, name: str) -> int:
        """Vector position of ``name`` (raises ``KeyError`` if unknown)."""
        return self._positions[name]

    # ------------------------------------------------------------------
    # Composition (the chip-multiprocessor layer)
    # ------------------------------------------------------------------
    def namespaced(self, prefix: str, separator: str = ".") -> "BlockIndex":
        """This index with every name prefixed ``<prefix><separator><name>``.

        Order is preserved, so a vector laid out by the namespaced index is
        element-for-element the same vector as one laid out by the original —
        namespacing is free on the fast path.
        """
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        return BlockIndex(f"{prefix}{separator}{name}" for name in self.names)

    @classmethod
    def concat(cls, indexes: Sequence["BlockIndex"]) -> "BlockIndex":
        """One index over the concatenation of several (already-namespaced)
        indexes, in order.

        The chip layer lays per-core vectors out back to back: core ``c`` of
        ``BlockIndex.concat([i0, i1, ...])`` occupies the contiguous slice
        ``[sum(len(i0..ic-1)), sum(len(i0..ic)))``, which is what lets
        per-core activity arrays concatenate into one physics solve.
        """
        if not indexes:
            raise ValueError("concat needs at least one block index")
        names = []
        for index in indexes:
            names.extend(index.names)
        return cls(names)

    def positions(self, names: Sequence[str]) -> np.ndarray:
        """Vector positions of several names, as an integer array."""
        return np.array([self._positions[name] for name in names], dtype=np.intp)

    # ------------------------------------------------------------------
    # Conversions between the array layout and the dict boundary
    # ------------------------------------------------------------------
    def array_from_mapping(
        self, mapping: Mapping[str, float], default: float = 0.0
    ) -> np.ndarray:
        """Dense float vector from a (possibly sparse) per-block mapping."""
        out = np.full(len(self.names), float(default))
        for i, name in enumerate(self.names):
            value = mapping.get(name)
            if value is not None:
                out[i] = value
        return out

    def mapping_from_array(self, values: np.ndarray) -> Dict[str, float]:
        """Per-block dictionary from a dense vector (the result boundary)."""
        return {name: float(values[i]) for i, name in enumerate(self.names)}

    def mask(self, names: Iterable[str]) -> np.ndarray:
        """Boolean vector with ``True`` at the positions of ``names``.

        Unknown names are ignored: the engine's gated-bank list can mention
        physical banks that a particular floorplan does not instantiate.
        """
        out = np.zeros(len(self.names), dtype=bool)
        for name in names:
            pos = self._positions.get(name)
            if pos is not None:
                out[pos] = True
        return out

"""Canonical names of the processor's functional blocks.

Activity counters, the power model and the thermal floorplan all refer to
blocks by these names, so they must be generated consistently from the
processor configuration.  The block set matches the floorplans of Figures 10
and 11 of the paper:

* frontend: reorder buffer (ROB), rename table (RAT), instruction TLB,
  decoder, branch predictor and the trace-cache banks;
* one group of blocks per backend cluster: L1 data cache, data TLB, integer
  and FP register files, integer and FP functional units, integer / FP / copy
  schedulers and the memory order buffer (with the microcode sequencer folded
  into it, as in the paper's cluster floorplan);
* the unified L2 (UL2).

When rename and commit are distributed (the paper's proposal), the ROB and
RAT are each split into one block per frontend partition (``ROB0``,
``ROB1``, ...), placed at the same floorplan location as the monolithic
structure they replace.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.config import ProcessorConfig

# Frontend block base names.
ROB = "ROB"
RAT = "RAT"
ITLB = "ITLB"
DECODER = "DECO"
BRANCH_PREDICTOR = "BP"
TRACE_CACHE_BANK = "TC"
UL2 = "UL2"

# Cluster block suffixes.
CLUSTER_DCACHE = "DL1"
CLUSTER_DTLB = "DTLB"
CLUSTER_INT_RF = "IRF"
CLUSTER_FP_RF = "FPRF"
CLUSTER_INT_FU = "IFU"
CLUSTER_FP_FU = "FPFU"
CLUSTER_INT_SCHED = "IS"
CLUSTER_FP_SCHED = "FPS"
CLUSTER_COPY_SCHED = "CS"
CLUSTER_MOB = "MOB"

CLUSTER_BLOCK_SUFFIXES: Tuple[str, ...] = (
    CLUSTER_DCACHE,
    CLUSTER_DTLB,
    CLUSTER_INT_RF,
    CLUSTER_FP_RF,
    CLUSTER_INT_FU,
    CLUSTER_FP_FU,
    CLUSTER_INT_SCHED,
    CLUSTER_FP_SCHED,
    CLUSTER_COPY_SCHED,
    CLUSTER_MOB,
)


def rob_block(frontend_id: int, num_frontends: int) -> str:
    """Name of the reorder-buffer block owned by ``frontend_id``."""
    return ROB if num_frontends == 1 else f"{ROB}{frontend_id}"


def rat_block(frontend_id: int, num_frontends: int) -> str:
    """Name of the rename-table block owned by ``frontend_id``."""
    return RAT if num_frontends == 1 else f"{RAT}{frontend_id}"


def trace_cache_bank_block(bank: int) -> str:
    """Name of physical trace-cache bank ``bank``."""
    return f"{TRACE_CACHE_BANK}{bank}"


def cluster_block(cluster: int, suffix: str) -> str:
    """Name of a block inside backend cluster ``cluster``."""
    return f"C{cluster}_{suffix}"


def rob_blocks(config: ProcessorConfig) -> List[str]:
    """All reorder-buffer blocks of a configuration."""
    n = config.frontend.num_frontends
    return [rob_block(i, n) for i in range(n)]


def rat_blocks(config: ProcessorConfig) -> List[str]:
    """All rename-table blocks of a configuration."""
    n = config.frontend.num_frontends
    return [rat_block(i, n) for i in range(n)]


def trace_cache_blocks(config: ProcessorConfig) -> List[str]:
    """All physical trace-cache bank blocks of a configuration."""
    return [
        trace_cache_bank_block(b)
        for b in range(config.frontend.trace_cache.physical_banks)
    ]


def frontend_blocks(config: ProcessorConfig) -> List[str]:
    """All frontend blocks of a configuration."""
    return (
        rob_blocks(config)
        + rat_blocks(config)
        + [ITLB, DECODER, BRANCH_PREDICTOR]
        + trace_cache_blocks(config)
    )


def cluster_blocks(config: ProcessorConfig, cluster: int) -> List[str]:
    """All blocks of one backend cluster."""
    return [cluster_block(cluster, suffix) for suffix in CLUSTER_BLOCK_SUFFIXES]


def backend_blocks(config: ProcessorConfig) -> List[str]:
    """All backend blocks (every cluster) of a configuration."""
    names: List[str] = []
    for c in range(config.backend.num_clusters):
        names.extend(cluster_blocks(config, c))
    return names


def all_blocks(config: ProcessorConfig) -> List[str]:
    """Every functional block of the processor, frontend first."""
    return frontend_blocks(config) + backend_blocks(config) + [UL2]


# ----------------------------------------------------------------------
# Block groups used by the paper's figures
# ----------------------------------------------------------------------
def block_groups(config: ProcessorConfig) -> dict:
    """Named groups of blocks over which temperature metrics are reported.

    The groups mirror the categories of the paper's figures: the whole
    processor, the frontend, the backend and the UL2 (Figure 1), and the
    reorder buffer, rename table and trace cache (Figures 12-14).
    """
    return {
        "Processor": all_blocks(config),
        "Frontend": frontend_blocks(config),
        "Backend": backend_blocks(config),
        "UL2": [UL2],
        "ReorderBuffer": rob_blocks(config),
        "RenameTable": rat_blocks(config),
        "TraceCache": trace_cache_blocks(config),
    }

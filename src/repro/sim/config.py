"""Processor configuration (Table 1 of the paper).

Every structural and timing parameter of the simulated processor lives in one
of the frozen dataclasses below.  :meth:`ProcessorConfig.baseline` reproduces
the paper's baseline: a quad-cluster backend with a monolithic (unified)
rename table and reorder buffer and a two-banked trace cache with a balanced
bank mapping function.  The configuration presets for the paper's proposed
techniques are built on top of this one in :mod:`repro.core.presets`.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field, replace
from typing import Tuple


class SteeringPolicy(enum.Enum):
    """Policy used by the centralized steering unit to pick a backend cluster."""

    #: Prefer the cluster that already holds most of the source operands,
    #: falling back to the least-loaded cluster (paper-style dependence-based
    #: steering with load balancing).
    DEPENDENCE = "dependence"
    #: Round-robin over clusters (used for ablations).
    ROUND_ROBIN = "round_robin"
    #: Always pick the cluster with the fewest in-flight micro-ops.
    LOAD_BALANCE = "load_balance"


@dataclass(frozen=True)
class TraceCacheConfig:
    """Trace cache organization and the paper's banking/hopping knobs.

    The baseline trace cache stores 32 K micro-ops, is 4-way set associative
    and is split into two banks with non-overlapping contents.  Bank hopping
    adds one extra physical bank so that one bank can always be Vdd-gated
    without reducing the effective capacity (Section 3.2.1).
    """

    capacity_uops: int = 32 * 1024
    associativity: int = 4
    line_uops: int = 16
    #: Number of banks that concurrently hold content (determines effective
    #: capacity per bank).
    active_banks: int = 2
    #: Number of physical banks on the floorplan.  ``active_banks`` of them
    #: are powered at any time; the rest are Vdd-gated.
    physical_banks: int = 2
    fetch_to_dispatch_latency: int = 4
    #: Enable the rotating Vdd-gating of one bank (Section 3.2.1).
    bank_hopping: bool = False
    #: Cycles between hops.  The paper uses 10 M cycles; experiments scale
    #: this down together with the trace length.
    hop_interval_cycles: int = 10_000_000
    #: Enable the thermal-aware biased mapping function (Section 3.2.2).
    thermal_aware_mapping: bool = False
    #: Cycles between recomputations of the mapping table (paper: 10 M).
    remap_interval_cycles: int = 10_000_000
    #: Temperature difference (in Celsius) above the bank average that halves
    #: a bank's share of mapping-table entries (paper: 3 degrees).
    bias_threshold_celsius: float = 3.0
    #: Number of entries of the bank mapping table (indexed by a 5-bit hash).
    mapping_table_entries: int = 32
    #: Statically gate one bank (the "blank silicon" comparison of Fig. 13).
    blank_silicon: bool = False

    def __post_init__(self) -> None:
        if self.capacity_uops <= 0 or self.line_uops <= 0:
            raise ValueError("trace cache capacity and line size must be positive")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.active_banks <= 0 or self.physical_banks < self.active_banks:
            raise ValueError(
                "physical_banks must be >= active_banks and both must be positive"
            )
        if self.bank_hopping and self.physical_banks <= self.active_banks:
            raise ValueError("bank hopping requires at least one spare physical bank")
        if self.blank_silicon and self.physical_banks <= self.active_banks:
            raise ValueError("blank silicon requires at least one gated physical bank")
        if self.mapping_table_entries < self.physical_banks:
            raise ValueError("mapping table must have at least one entry per bank")

    @property
    def total_lines(self) -> int:
        """Number of trace lines across all active banks."""
        return self.capacity_uops // self.line_uops

    @property
    def lines_per_bank(self) -> int:
        """Trace lines held by each active bank (non-overlapping contents)."""
        return max(1, self.total_lines // self.active_banks)

    @property
    def sets_per_bank(self) -> int:
        return max(1, self.lines_per_bank // self.associativity)


@dataclass(frozen=True)
class FrontendConfig:
    """Frontend organization: fetch, decode/rename/steer and the partitioning."""

    fetch_width: int = 8
    dispatch_width: int = 8
    #: Decode, rename and steer latency (cycles), regardless of destination
    #: cluster (Table 1).
    decode_rename_steer_latency: int = 8
    #: Number of frontend partitions. 1 reproduces the monolithic baseline;
    #: 2 reproduces the paper's bi-clustered frontend (each feeding two
    #: backends).
    num_frontends: int = 1
    #: Extra commit latency charged when commit is distributed (Section 3.1.2).
    distributed_commit_extra_latency: int = 1
    #: Total reorder buffer entries (split evenly across frontend partitions).
    rob_entries: int = 256
    commit_width: int = 8
    branch_predictor_entries: int = 4096
    #: Frontend refill penalty after a branch misprediction (cycles).
    misprediction_penalty: int = 12
    trace_cache: TraceCacheConfig = field(default_factory=TraceCacheConfig)

    def __post_init__(self) -> None:
        if self.fetch_width <= 0 or self.dispatch_width <= 0 or self.commit_width <= 0:
            raise ValueError("pipeline widths must be positive")
        if self.num_frontends <= 0:
            raise ValueError("num_frontends must be positive")
        if self.rob_entries < self.num_frontends:
            raise ValueError("rob_entries must be at least num_frontends")
        if self.rob_entries % self.num_frontends != 0:
            raise ValueError("rob_entries must divide evenly across frontends")

    @property
    def is_distributed(self) -> bool:
        """Whether rename and commit are distributed (the paper's proposal)."""
        return self.num_frontends > 1

    @property
    def rob_entries_per_frontend(self) -> int:
        return self.rob_entries // self.num_frontends


@dataclass(frozen=True)
class BackendConfig:
    """Per-cluster backend resources (Table 1, "Each backend")."""

    num_clusters: int = 4
    int_queue_entries: int = 40
    fp_queue_entries: int = 40
    copy_queue_entries: int = 40
    mem_queue_entries: int = 96
    #: Issue bandwidth of each queue (instructions per cycle).
    issue_width_per_queue: int = 1
    dispatch_latency: int = 10
    prescheduler_entries: int = 20
    int_registers: int = 160
    fp_registers: int = 160
    int_rf_read_ports: int = 6
    int_rf_write_ports: int = 3
    fp_rf_read_ports: int = 5
    fp_rf_write_ports: int = 3
    dcache_kb: int = 16
    dcache_associativity: int = 2
    dcache_hit_latency: int = 1
    dcache_line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.num_clusters <= 0:
            raise ValueError("num_clusters must be positive")
        for name in (
            "int_queue_entries", "fp_queue_entries", "copy_queue_entries",
            "mem_queue_entries", "int_registers", "fp_registers",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class MemoryConfig:
    """Unified L2 and main memory (Table 1)."""

    ul2_kb: int = 2 * 1024
    ul2_associativity: int = 8
    ul2_hit_latency: int = 12
    ul2_miss_latency: int = 500
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.ul2_kb <= 0 or self.line_bytes <= 0:
            raise ValueError("cache sizes must be positive")
        if self.ul2_hit_latency <= 0 or self.ul2_miss_latency <= 0:
            raise ValueError("latencies must be positive")


@dataclass(frozen=True)
class InterconnectConfig:
    """Buses and point-to-point links between the frontend and the clusters."""

    num_memory_buses: int = 2
    num_disambiguation_buses: int = 2
    bus_latency: int = 4
    bus_arbitration_latency: int = 1
    num_p2p_links: int = 2
    p2p_hop_latency: int = 1

    def __post_init__(self) -> None:
        if self.num_memory_buses <= 0 or self.num_disambiguation_buses <= 0:
            raise ValueError("bus counts must be positive")
        if self.bus_latency <= 0 or self.p2p_hop_latency <= 0:
            raise ValueError("latencies must be positive")


@dataclass(frozen=True)
class PowerConfig:
    """Design point and power-model constants (Section 2.1 and Section 4)."""

    technology_nm: int = 65
    frequency_ghz: float = 10.0
    vdd: float = 1.1
    #: Leakage power as a fraction of average dynamic power at ambient,
    #: inside-box temperature (paper: roughly 30% at 45 C).
    leakage_fraction_at_ambient: float = 0.30
    #: Exponential coefficient of leakage with temperature (per Celsius).
    leakage_temperature_coefficient: float = 0.014
    ambient_celsius: float = 45.0

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0 or self.vdd <= 0:
            raise ValueError("frequency and Vdd must be positive")
        if not 0.0 <= self.leakage_fraction_at_ambient <= 2.0:
            raise ValueError("leakage fraction out of range")


@dataclass(frozen=True)
class ThermalConfig:
    """Thermal model constants: package geometry and simulation intervals."""

    ambient_celsius: float = 45.0
    #: Thermal emergency limit (paper: 381 K).
    emergency_limit_kelvin: float = 381.0
    #: Cycles between temperature updates (paper: 10 M cycles).  Experiments
    #: scale this value together with the trace length so that each run still
    #: spans a comparable number of thermal intervals.
    interval_cycles: int = 10_000_000
    #: Wall-clock time represented by one thermal interval.  The paper's
    #: interval is 10 M cycles at 10 GHz = 1 ms; keeping this constant while
    #: scaling ``interval_cycles`` preserves the heating dynamics when the
    #: simulated traces are shorter than the paper's 200 M instructions.
    interval_seconds: float = 1.0e-3
    #: Copper heat spreader: 3.1 x 3.1 x 0.23 cm (paper, Pentium 4 Northwood).
    spreader_side_m: float = 0.031
    spreader_thickness_m: float = 0.0023
    #: Copper heat sink: 7 x 8.3 x 4.11 cm (paper).
    sink_width_m: float = 0.07
    sink_depth_m: float = 0.083
    sink_thickness_m: float = 0.0411
    #: Convection resistance from sink to ambient air (K/W).
    convection_resistance_k_per_w: float = 0.18
    #: Silicon die thickness (m).
    die_thickness_m: float = 0.0005
    #: Thermal interface material thickness (m).
    tim_thickness_m: float = 5.0e-5

    def __post_init__(self) -> None:
        if self.interval_cycles <= 0 or self.interval_seconds <= 0:
            raise ValueError("thermal interval must be positive")
        if self.emergency_limit_kelvin <= 273.15:
            raise ValueError("emergency limit must be above freezing")

    @property
    def emergency_limit_celsius(self) -> float:
        return self.emergency_limit_kelvin - 273.15


@dataclass(frozen=True)
class ProcessorConfig:
    """Complete configuration of the simulated processor."""

    name: str = "baseline"
    frontend: FrontendConfig = field(default_factory=FrontendConfig)
    backend: BackendConfig = field(default_factory=BackendConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    steering_policy: SteeringPolicy = SteeringPolicy.DEPENDENCE

    def __post_init__(self) -> None:
        if self.backend.num_clusters % self.frontend.num_frontends != 0:
            raise ValueError(
                "number of backend clusters must be a multiple of the number "
                "of frontend partitions"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def baseline(cls) -> "ProcessorConfig":
        """The paper's baseline configuration (Table 1).

        Quad-cluster backend, unified rename/commit, two-banked trace cache
        with a balanced (non thermal-aware) bank mapping function.
        """
        return cls(name="baseline")

    # ------------------------------------------------------------------
    # Derived quantities and convenience rewrites
    # ------------------------------------------------------------------
    @property
    def clusters_per_frontend(self) -> int:
        """Backend clusters fed by each frontend partition."""
        return self.backend.num_clusters // self.frontend.num_frontends

    def frontend_of_cluster(self, cluster: int) -> int:
        """Frontend partition that feeds backend cluster ``cluster``."""
        if not 0 <= cluster < self.backend.num_clusters:
            raise ValueError(f"cluster {cluster} out of range")
        return cluster // self.clusters_per_frontend

    def clusters_of_frontend(self, frontend: int) -> Tuple[int, ...]:
        """Backend clusters fed by frontend partition ``frontend``."""
        if not 0 <= frontend < self.frontend.num_frontends:
            raise ValueError(f"frontend {frontend} out of range")
        per = self.clusters_per_frontend
        return tuple(range(frontend * per, (frontend + 1) * per))

    def with_intervals(self, interval_cycles: int) -> "ProcessorConfig":
        """Return a copy with all periodic intervals set to ``interval_cycles``.

        The thermal update interval, the bank-hop interval and the
        thermal-aware remap interval all use the paper's 10 M-cycle period;
        experiments call this helper to scale the three of them consistently
        for shorter runs.
        """
        if interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        new_tc = replace(
            self.frontend.trace_cache,
            hop_interval_cycles=interval_cycles,
            remap_interval_cycles=interval_cycles,
        )
        return replace(
            self,
            frontend=replace(self.frontend, trace_cache=new_tc),
            thermal=replace(self.thermal, interval_cycles=interval_cycles),
        )

    def renamed(self, name: str) -> "ProcessorConfig":
        """Return a copy with a different configuration name."""
        return replace(self, name=name)

    def describe(self) -> str:
        """Multi-line, human-readable summary (mirrors Table 1)."""
        fe = self.frontend
        be = self.backend
        tc = fe.trace_cache
        lines = [
            f"Configuration: {self.name}",
            f"  Frontend   : {fe.num_frontends} partition(s), fetch width {fe.fetch_width}, "
            f"decode/rename/steer {fe.decode_rename_steer_latency} cycles, "
            f"ROB {fe.rob_entries} entries, commit width {fe.commit_width}",
            f"  Trace cache: {tc.capacity_uops} uops, {tc.associativity}-way, "
            f"{tc.active_banks} active / {tc.physical_banks} physical banks, "
            f"fetch-to-dispatch {tc.fetch_to_dispatch_latency} cycles"
            + (", bank hopping" if tc.bank_hopping else "")
            + (", thermal-aware mapping" if tc.thermal_aware_mapping else "")
            + (", blank silicon" if tc.blank_silicon else ""),
            f"  Backend    : {be.num_clusters} clusters, IQ {be.int_queue_entries}/"
            f"FPQ {be.fp_queue_entries}/CopyQ {be.copy_queue_entries}/"
            f"MemQ {be.mem_queue_entries}, dispatch latency {be.dispatch_latency} cycles, "
            f"{be.int_registers} int + {be.fp_registers} FP registers",
            f"  D-cache    : {be.dcache_kb} KB {be.dcache_associativity}-way, "
            f"{be.dcache_hit_latency} cycle hit",
            f"  UL2        : {self.memory.ul2_kb // 1024} MB {self.memory.ul2_associativity}-way, "
            f"{self.memory.ul2_hit_latency} cycle hit, {self.memory.ul2_miss_latency}+ miss",
            f"  Buses      : {self.interconnect.num_memory_buses} memory, "
            f"{self.interconnect.num_disambiguation_buses} disambiguation, "
            f"{self.interconnect.bus_latency}-cycle latency + "
            f"{self.interconnect.bus_arbitration_latency}-cycle arbiter; "
            f"{self.interconnect.num_p2p_links} bidirectional p2p links "
            f"({self.interconnect.p2p_hop_latency} cycle/hop)",
            f"  Design     : {self.power.technology_nm} nm, {self.power.frequency_ghz} GHz, "
            f"Vdd {self.power.vdd} V, steering {self.steering_policy.value}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Flatten the configuration to a plain dictionary (for reporting)."""
        return dataclasses.asdict(self)

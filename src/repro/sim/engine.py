"""Two-stage simulation core: per-uop timing capture + array-backed physics.

The engine couples two explicit stages, one thermal interval at a time:

* :class:`TimingStage` — the per-uop pipeline simulation.  It advances the
  :class:`~repro.sim.processor.Processor` by one interval, drains the
  per-block activity counters into a block-index-ordered vector, and runs
  the paper's *deterministic* timing-side mechanisms: the bank-hopping
  rotation of the Vdd-gated trace-cache bank and the mapping-table rebuild
  (every 10 M cycles in the paper).
* :class:`PhysicsStage` — everything downstream of the activity counts:
  dynamic power -> temperature-dependent leakage -> thermal RC advance ->
  sensors -> :class:`~repro.sim.results.IntervalRecord`.  The stage owns the
  floorplan, RC network, LU-factorized solver and power model, and is fully
  array-backed (see ``docs/interval-pipeline.md``).

:meth:`SimulationEngine.run` is the coupled loop over both stages — exactly
the historical per-interval pipeline, bit-for-bit (the golden-metric suite
locks it).  The split exists because the two stages have wildly different
costs and dependencies: the timing stage is pure Python (~16 k uops/s) but
never reads ``config.power``/``config.thermal``, while the physics stage is
fast NumPy but is what a parameter sweep actually varies.  So the timing
stage's complete output can be captured once as a serializable
:class:`~repro.sim.activity_trace.ActivityTrace`
(:meth:`SimulationEngine.run_with_trace`) and *replayed* under any
physics-side variant (:meth:`PhysicsStage.replay`) — bit-identical to the
coupled run, at physics-stage speed.  The campaign layer uses this to turn
an N-cell physics sweep into one timing simulation plus N cheap replays.

Replay is only sound when temperatures never feed back into timing.
Thermal-aware bank mapping and feedback-bearing DTM policies do exactly
that; :func:`~repro.sim.activity_trace.timing_feedback_reason` detects them
and such runs refuse to capture (the campaign layer falls back to the
coupled path automatically).

Before measurement the processor is *warmed up*: the steady-state
temperatures for the nominal average power (first interval's activity) are
computed, iterating the leakage-temperature feedback until convergence or
the 381 K emergency limit, mirroring Section 4 of the paper.

Optionally the engine hosts a dynamic-thermal-management policy
(``dtm_policy=``, see :mod:`repro.dtm`): before every interval after the
first, the policy reads a full-die :class:`~repro.thermal.sensors.SensorBank`
(quantized block temperatures in block-index order) and mutates the clamped
:class:`~repro.dtm.controls.DTMControls` — fetch duty, whole-interval clock
gating, per-cluster DVFS steps.  The engine translates the controls into a
processor fetch gate (DVFS frequency reductions ride the same gate, so the
activity counts carry the ``f`` factor of ``P = a C V^2 f``) and per-block
voltage power-multiplier vectors on the interval pipeline.  With no policy —
or the no-op policy — none of the DTM branches perturb the arithmetic, so
the golden metrics are reproduced bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.bank_hopping import BankHoppingController
from repro.core.thermal_mapping import BalancedMappingPolicy, ThermalAwareMappingPolicy
from repro.dtm.controls import DTMControls, DTMTelemetry, FETCH_DUTY_PERIOD
from repro.dtm.policies import DTMObservation, DTMPolicy
from repro.isa.microops import MicroOp
from repro.power.energy import build_block_parameters
from repro.power.power_model import PowerModel
from repro.sim import blocks
from repro.sim.activity_trace import ActivityTrace, TraceRecorder, timing_feedback_reason
from repro.sim.block_index import BlockIndex
from repro.sim.config import ProcessorConfig
from repro.sim.processor import Processor
from repro.sim.results import IntervalRecord, SimulationResult
from repro.sim.warmcache import solver_bundle
from repro.thermal.floorplan import build_floorplan
from repro.thermal.rc_model import ThermalRCNetwork
from repro.thermal.sensors import SensorBank
from repro.thermal.solver import ThermalSolver


class TimingStage:
    """Per-uop pipeline simulation: the processor plus its timing-side hooks.

    Owns the :class:`Processor`, the (optional) bank-hopping controller and
    the bank mapping policy.  The stage never reads a power or thermal
    parameter; the only physics input it can consume is the temperature
    vector handed to :meth:`apply_bank_management` — and only the
    thermal-aware mapping policy actually uses it, which is exactly the
    configuration :func:`timing_feedback_reason` excludes from replay.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        uop_source: Iterable[MicroOp],
        interval_cycles: int,
        block_index: BlockIndex,
        prewarm_caches: bool = True,
    ) -> None:
        self.config = config
        self.interval_cycles = interval_cycles
        #: The canonical block order every emitted activity/gating vector is
        #: laid out in (the physics stage's power-model index).
        self.block_index = block_index

        uop_stream: Iterator[MicroOp]
        if isinstance(uop_source, Sequence):
            # A materialized trace: the engine can functionally pre-warm the
            # UL2 with the trace's footprint, as sampled-simulation
            # methodologies do, so the short measured slice is not dominated
            # by cold misses the paper's 200 M-instruction slices would have
            # amortized.
            materialized: Optional[Sequence[MicroOp]] = list(uop_source)
            uop_stream = iter(materialized)
            self._prewarm_source: Optional[Sequence[MicroOp]] = uop_source
        else:
            materialized = None
            uop_stream = iter(uop_source)
            self._prewarm_source = None
        self.processor = self._build_processor(config, uop_stream, materialized)
        if prewarm_caches and self._prewarm_source is not None:
            self._prewarm_memory(self._prewarm_source)

        tc_config = config.frontend.trace_cache
        self.tc_bank_blocks = blocks.trace_cache_blocks(config)
        self.sensors = SensorBank(self.tc_bank_blocks)
        self.hopping: Optional[BankHoppingController] = None
        if tc_config.bank_hopping or tc_config.blank_silicon:
            static_gated = []
            if tc_config.blank_silicon:
                # Statically gate the extra (highest-numbered) banks.
                spare = tc_config.physical_banks - tc_config.active_banks
                static_gated = list(
                    range(tc_config.physical_banks - spare, tc_config.physical_banks)
                )
            self.hopping = BankHoppingController(
                physical_banks=tc_config.physical_banks,
                active_banks=tc_config.active_banks,
                hop_interval_cycles=tc_config.hop_interval_cycles,
                enabled=tc_config.bank_hopping,
                static_gated_banks=static_gated,
            )
            self.processor.trace_cache.set_enabled_banks(self.hopping.enabled_banks)
            self.processor.trace_cache.set_balanced_mapping()
        if tc_config.thermal_aware_mapping:
            self.mapping_policy = ThermalAwareMappingPolicy(
                tc_config.mapping_table_entries, tc_config.bias_threshold_celsius
            )
        else:
            self.mapping_policy = BalancedMappingPolicy(tc_config.mapping_table_entries)
        # Intervals between hops / remaps, expressed in thermal intervals.
        self._hop_every = max(1, round(tc_config.hop_interval_cycles / interval_cycles))
        self._remap_every = max(1, round(tc_config.remap_interval_cycles / interval_cycles))

        self._gated_cache: Tuple[tuple, list, np.ndarray] = (
            (),
            [],
            np.zeros(len(block_index), dtype=bool),
        )

    # ------------------------------------------------------------------
    def _build_processor(
        self,
        config: ProcessorConfig,
        uop_stream: Iterator[MicroOp],
        materialized: Optional[Sequence[MicroOp]],
    ) -> Processor:
        """Instantiate the timing core (overridden by the fast path)."""
        return Processor(config, uop_stream)

    # ------------------------------------------------------------------
    def _prewarm_memory(self, trace: Sequence[MicroOp]) -> None:
        """Touch the trace's data footprint in the UL2 (functional warm-up).

        Only the UL2 is warmed: the small per-cluster L1 caches reach steady
        state within the measured slice, but the 2 MB UL2 would otherwise
        spend the whole short slice taking cold misses with the 500-cycle
        memory latency, which the paper's long traces do not suffer.
        """
        warm = getattr(self.processor, "prewarm_ul2", None)
        if warm is not None:
            # Fast-path processors warm from their decoded address arrays
            # (one bulk call; avoids per-uop traffic into the native core).
            warm()
            return
        ul2 = self.processor.ul2
        for uop in trace:
            if uop.mem_addr is not None:
                ul2.access(uop.mem_addr)
        # The warm-up accesses are functional only; reset the statistics.
        ul2.hits = 0
        ul2.misses = 0

    def gated_state(self) -> Tuple[list, Optional[np.ndarray]]:
        """Names and block-index mask of the Vdd-gated trace-cache banks.

        Cached per gated-bank set: the set only changes when the hopping
        controller rotates, so the steady intervals between hops reuse one
        mask instead of rebuilding it.
        """
        if self.hopping is None:
            return [], None
        banks = tuple(self.hopping.gated_banks)
        cached = self._gated_cache
        if cached[0] != banks:
            names = [blocks.trace_cache_bank_block(b) for b in banks]
            cached = (banks, names, self.block_index.mask(names))
            self._gated_cache = cached
        return cached[1], cached[2]

    def run_interval(self, max_cycles: int) -> Tuple[Optional[np.ndarray], int]:
        """Advance the processor by one interval and drain the activity counts.

        Returns ``(counts, cycles_elapsed)`` in block-index order, or
        ``(None, 0)`` when the trace ended exactly on the previous interval
        boundary (no cycles ran).
        """
        processor = self.processor
        start_cycle = processor.cycle
        processor.run_cycles(max_cycles)
        cycles_elapsed = processor.cycle - start_cycle
        if cycles_elapsed == 0:
            return None, 0
        return processor.activity.end_interval_array(self.block_index), cycles_elapsed

    def apply_bank_management(self, interval_index: int, temperatures: np.ndarray) -> None:
        """Rotate the gated bank and rebuild the mapping table when due.

        ``temperatures`` is the physics stage's block-temperature vector
        (degrees Celsius, block-index order); only the thermal-aware mapping
        policy reads it.
        """
        tc = self.processor.trace_cache
        tc_config = self.config.frontend.trace_cache
        hopped = False
        if (
            self.hopping is not None
            and self.hopping.enabled
            and (interval_index + 1) % self._hop_every == 0
        ):
            self.hopping.hop()
            tc.set_enabled_banks(self.hopping.enabled_banks)
            self.processor.stats.trace_cache_hop_flushes = tc.hop_flushes
            hopped = True
        remap_due = (interval_index + 1) % self._remap_every == 0
        if hopped or (remap_due and tc_config.thermal_aware_mapping):
            enabled = tc.enabled_banks()
            # Sensors read only the trace-cache banks; build just that small
            # mapping from the temperature vector (the result boundary).
            index = self.block_index
            readings = self.sensors.read_all(
                {
                    name: float(temperatures[index.position(name)])
                    for name in self.tc_bank_blocks
                }
            )
            bank_temps = {
                bank: readings[blocks.trace_cache_bank_block(bank)] for bank in enabled
            }
            shares = self.mapping_policy.compute_shares(enabled, bank_temps)
            tc.set_mapping_shares(shares)


class PhysicsStage:
    """Power -> leakage -> thermal -> record, over activity-count vectors.

    Owns every physics-side model of one cell: block power parameters, the
    floorplan and its RC network, the LU-factorized
    :class:`~repro.thermal.solver.ThermalSolver` and the
    :class:`~repro.power.power_model.PowerModel` (whose
    :class:`~repro.sim.block_index.BlockIndex` is the canonical block order
    of every per-interval vector).  The coupled engine feeds it one drained
    activity-count vector per interval; :meth:`replay` feeds it a whole
    captured :class:`~repro.sim.activity_trace.ActivityTrace` instead —
    the same arithmetic, in the same order, so the results are bit-identical.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        interval_cycles: Optional[int] = None,
        *,
        block_parameters=None,
        floorplan=None,
        block_groups=None,
        solver_backend: str = "auto",
        solver_ordering: str = "colamd",
    ) -> None:
        """Build the physics of one die.

        By default the die is the single-core processor ``config`` describes:
        block power parameters from the power model, the paper's floorplan,
        the paper's block groups.  The chip layer (:mod:`repro.chip`) instead
        injects a *composite* die — per-core namespaced block parameters, a
        :func:`~repro.thermal.floorplan.compose_floorplans` core grid and
        chip-level block groups — and every downstream stage (RC network,
        solver, power model, block index) composes without change.

        ``solver_backend`` selects the thermal solver's factorization
        (``"auto"``, ``"dense"`` or ``"sparse"``; see
        :mod:`repro.thermal.solver`).  The default ``"auto"`` resolves to
        dense on every single-core die and small composite — bit-identical
        to the pre-sparse solver — and to sparse at
        :data:`~repro.thermal.solver.SPARSE_NODE_THRESHOLD` nodes and
        above.  ``solver_ordering`` is the sparse backend's fill-reducing
        column ordering (``"colamd"`` or ``"natural"``).
        """
        self.config = config
        self.interval_cycles = interval_cycles or config.thermal.interval_cycles
        if self.interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        self.block_parameters = (
            dict(block_parameters)
            if block_parameters is not None
            else build_block_parameters(config)
        )
        self.block_areas = {
            name: params.area_mm2 for name, params in self.block_parameters.items()
        }
        self.floorplan = (
            floorplan
            if floorplan is not None
            else build_floorplan(config, self.block_areas)
        )
        self.block_groups = (
            dict(block_groups) if block_groups is not None else blocks.block_groups(config)
        )
        # The RC network and factorized solver are pure functions of the
        # floorplan geometry + thermal config, so they come from the
        # process-global warm cache: a persistent pool worker (or process
        # pool child) replaying a sweep factorizes each distinct die once,
        # not once per cell.  A warm bundle is bit-identical to a fresh one
        # (same inputs, same factorization), and REPRO_WARM_CACHE=0 forces
        # fresh construction.
        self.network, self.solver = solver_bundle(
            self.floorplan,
            config.thermal,
            backend=solver_backend,
            ordering=solver_ordering,
        )
        #: The resolved solver backend ("dense" or "sparse").
        self.solver_backend = self.solver.backend
        self.power_model = PowerModel(config.power, self.block_parameters)

        # One block index (the power model's order) for every per-interval
        # vector, plus the explicit permutation that scatters block vectors
        # into thermal-node space.  The activity counters, the floorplan and
        # the power model each enumerate blocks in their own order, so
        # nothing here assumes the orders agree.
        self.block_index = self.power_model.index
        self._node_positions = self.network.node_positions(self.block_index.names)
        self._node_power = np.zeros(self.network.num_nodes)

        self._thermal_state = self.network.uniform_state(config.thermal.ambient_celsius)
        self.temperature_array: np.ndarray = self._thermal_state[self._node_positions]
        self.warmup_temperatures: Dict[str, float] = self.block_index.mapping_from_array(
            self.temperature_array
        )
        self.emergency_intervals = 0

    # ------------------------------------------------------------------
    def warmup(
        self,
        activity_counts: np.ndarray,
        cycles,
        gated_mask: Optional[np.ndarray],
    ) -> None:
        """Warm the die to the steady state of its nominal power.

        ``activity_counts`` are the first interval's per-block access counts
        (block-index order) over ``cycles`` cycles (a scalar, or a per-block
        vector on a composite die whose cores ran different cycle counts);
        the resulting dynamic power (W) is held constant while the
        leakage-temperature fixed point iterates (temperatures in degrees
        Celsius, limit 381 K).
        """
        leakage_model = self.power_model.leakage_model
        # The first interval's dynamic power (constant across the warm-up
        # fixed point) seeds the leakage model's nominal power; the iteration
        # below then couples leakage and temperature until convergence (or
        # the 381 K emergency limit).
        dynamic = self.power_model.dynamic_power_array(
            activity_counts, cycles, gated_mask
        )
        leakage_model.seed_nominal_power_array(dynamic)
        node_positions = self._node_positions
        node_power = self._node_power

        def node_power_at(state: np.ndarray) -> np.ndarray:
            temperatures = state[node_positions]
            leakage = leakage_model.leakage_power_array(temperatures, gated_mask)
            node_power[:] = 0.0
            node_power[node_positions] = dynamic + leakage
            return node_power

        state, _ = self.solver.warmup_nodes(
            node_power_at,
            emergency_limit_celsius=self.config.thermal.emergency_limit_celsius,
        )
        self._thermal_state = state
        self.temperature_array = state[node_positions]
        self.warmup_temperatures = self.block_index.mapping_from_array(
            self.temperature_array
        )

    def _advance_and_record(
        self,
        dynamic: np.ndarray,
        leakage: np.ndarray,
        dt: float,
        cycle: int,
        seconds: float,
    ) -> IntervalRecord:
        """Shared tail of every interval: power vectors -> thermal -> record.

        Scatters the block power vectors (W) into thermal-node space,
        advances the RC network by ``dt`` seconds, refreshes the cached
        block-temperature slice, counts emergency-limit intervals and
        returns the interval's record.  The coupled pipeline, the clock-gated
        DTM path and trace replay all end here, so the bookkeeping cannot
        diverge between them.
        """
        node_power = self._node_power
        node_power[:] = 0.0
        node_power[self._node_positions] = dynamic + leakage
        self._thermal_state = self.solver.advance_nodes(
            self._thermal_state, node_power, dt
        )
        # Fancy indexing copies, so each record owns its temperature vector.
        self.temperature_array = self._thermal_state[self._node_positions]
        if (
            float(self.temperature_array.max())
            >= self.config.thermal.emergency_limit_celsius
        ):
            self.emergency_intervals += 1
        return IntervalRecord.from_arrays(
            cycle=cycle,
            seconds=seconds,
            block_names=self.block_index.names,
            dynamic_power=dynamic,
            leakage_power=leakage,
            temperature=self.temperature_array,
        )

    def interval_pipeline(
        self,
        activity_counts: np.ndarray,
        cycles_elapsed,
        cycle: int,
        seconds: float,
        gated_mask: Optional[np.ndarray] = None,
        dynamic_scale: Optional[np.ndarray] = None,
        leakage_scale: Optional[np.ndarray] = None,
        dt_cycles: Optional[int] = None,
    ) -> IntervalRecord:
        """The power/thermal hot path of one interval: counts -> record.

        Converts a drained activity-count vector (block-index order) into
        dynamic and leakage power (W), advances the thermal RC network by the
        interval's wall-clock duration (s), tracks the emergency-limit
        counter and returns the interval's :class:`IntervalRecord` — all on
        NumPy vectors, with no per-block dict allocation.

        ``dynamic_scale`` / ``leakage_scale`` are the DTM DVFS power
        multiplier vectors (see :meth:`PowerModel.compute_arrays`); the
        frequency component of DVFS is realized through the fetch duty, so
        it arrives here already folded into ``activity_counts``.  The
        ``None`` defaults leave the arithmetic bit-identical to the pre-DTM
        pipeline.

        ``cycles_elapsed`` may be a per-block vector on a composite die (the
        chip layer concatenates per-core counts whose final intervals ran
        different lengths); ``dt_cycles`` then supplies the scalar cycle
        count the thermal network advances by (the chip clock: the longest
        any core ran this interval).  It defaults to ``cycles_elapsed``,
        which must be a scalar in that case.
        """
        dynamic, leakage = self.power_model.compute_arrays(
            activity_counts,
            cycles_elapsed,
            self.temperature_array,
            gated_mask,
            dynamic_scale,
            leakage_scale,
        )
        if dt_cycles is None:
            dt_cycles = cycles_elapsed
        dt = self.config.thermal.interval_seconds * (
            dt_cycles / self.interval_cycles
        )
        return self._advance_and_record(
            dynamic, leakage, dt, cycle=cycle, seconds=seconds
        )

    def leakage_only_interval(
        self,
        cycle: int,
        seconds: float,
        gated_mask: Optional[np.ndarray],
        leakage_scale: Optional[np.ndarray] = None,
    ) -> IntervalRecord:
        """Record one fully clock-gated interval (stop-go DTM).

        The processor executes nothing: dynamic power — clock distribution
        included — is 0 W, only leakage at the current temperatures is
        injected, and the thermal network advances by one full nominal
        interval of wall-clock (the clock is stopped; time is not).  The
        leakage model's running dynamic-power average is deliberately *not*
        updated: a gated interval says nothing about the workload's nominal
        power profile.
        """
        dynamic = np.zeros(len(self.block_index))
        leakage = self.power_model.leakage_model.leakage_power_array(
            self.temperature_array, gated_mask
        )
        if leakage_scale is not None:
            leakage = leakage * leakage_scale
        return self._advance_and_record(
            dynamic,
            leakage,
            self.config.thermal.interval_seconds,
            cycle=cycle,
            seconds=seconds,
        )

    # ------------------------------------------------------------------
    def new_result(self, benchmark: str) -> SimulationResult:
        """An empty result shell carrying this stage's physics metadata."""
        return SimulationResult(
            config_name=self.config.name,
            benchmark=benchmark,
            stats=None,  # filled in by the caller
            block_names=list(self.block_parameters.keys()),
            block_groups=self.block_groups,
            block_areas_mm2=self.block_areas,
            ambient_celsius=self.config.thermal.ambient_celsius,
            provenance={"interval_cycles": self.interval_cycles},
        )

    def replay(
        self,
        trace: ActivityTrace,
        max_intervals: Optional[int] = None,
        warmup: bool = True,
        dtm_policy: Optional[DTMPolicy] = None,
    ) -> SimulationResult:
        """Replay a captured activity trace through this cell's physics.

        Performs, in order, exactly the operations the coupled
        :meth:`SimulationEngine.run` loop performs downstream of the
        activity counters — the stacked per-interval dynamic-power matrix is
        computed in one vectorized pass (each row with the same scalar
        association order as the per-interval call, hence bit-identical),
        then the inherently sequential leakage/thermal chain walks the
        intervals.  The result is bit-identical to simulating the cell
        coupled, which ``tests/test_campaign_replay.py`` locks against the
        golden fixtures.

        ``dtm_policy`` may only be a non-feedback policy (the no-op
        ``"none"``); its telemetry is reconstructed exactly as the coupled
        run would have recorded it.
        """
        if list(trace.block_names) != list(self.block_index.names):
            raise ValueError(
                "activity trace was captured over a different block set; "
                "it cannot be replayed on this configuration"
            )
        if trace.interval_cycles != self.interval_cycles:
            raise ValueError(
                f"activity trace was captured at interval_cycles="
                f"{trace.interval_cycles}, not {self.interval_cycles}"
            )
        if dtm_policy is not None and dtm_policy.feedback:
            raise ValueError(
                f"DTM policy {dtm_policy.name!r} actuates on temperatures; "
                "its cells must be simulated coupled, not replayed"
            )

        intervals = len(trace)
        if max_intervals is not None:
            intervals = min(intervals, max_intervals)
        result = self.new_result(trace.benchmark)
        result.stats = trace.stats_copy()
        result.provenance["replayed"] = True

        power_model = self.power_model
        leakage_model = power_model.leakage_model
        interval_seconds = self.config.thermal.interval_seconds
        counts = trace.counts
        cycles = trace.cycles
        end_cycles = trace.end_cycles
        # The whole run's dynamic power in one (intervals x blocks) pass:
        # dynamic power depends only on counts and gating, never on the
        # temperatures the sequential loop below produces.
        dynamic_matrix = power_model.dynamic_power_matrix(
            counts[:intervals], cycles[:intervals],
            None if trace.gated_masks is None else trace.gated_masks[:intervals],
        )
        for i in range(intervals):
            gated_mask = trace.gated_mask(i)
            cycles_elapsed = int(cycles[i])
            if i == 0 and warmup:
                self.warmup(counts[0], cycles_elapsed, gated_mask)
            dynamic = dynamic_matrix[i]
            # Mirror PowerModel.compute_arrays: observe this interval's
            # dynamic power, then evaluate leakage at the current
            # temperatures (scalar math.exp loop — the bit-exact kernel).
            leakage_model.observe_dynamic_power_array(dynamic)
            leakage = leakage_model.leakage_power_array(
                self.temperature_array, gated_mask
            )
            dt = interval_seconds * (cycles_elapsed / self.interval_cycles)
            result.intervals.append(
                self._advance_and_record(
                    dynamic,
                    leakage,
                    dt,
                    cycle=int(end_cycles[i]),
                    seconds=(i + 1) * interval_seconds,
                )
            )
        result.warmup_temperature = self.warmup_temperatures
        if dtm_policy is not None:
            # A non-feedback policy never deviates from nominal, so its
            # telemetry is a pure function of the interval count — rebuild
            # it exactly as the coupled loop records it (interval 0's cycles
            # run before the policy can gate fetch).
            controls = DTMControls(self.block_index, table=dtm_policy.table)
            telemetry = DTMTelemetry(controls.table)
            for i in range(intervals):
                telemetry.record_interval(
                    controls, gated=False, fetch_actuated=i > 0
                )
            result.dtm = {"policy": dtm_policy.name, **telemetry.as_dict()}
        return result

    @staticmethod
    def replay_group(
        trace: ActivityTrace,
        configs: Sequence[ProcessorConfig],
        interval_cycles: Optional[int] = None,
        **kwargs,
    ) -> Sequence[SimulationResult]:
        """Replay one trace under many physics variants at once.

        Delegates to :func:`repro.sim.group_replay.replay_group`, which
        batches thermally-identical sub-groups into multi-RHS solves (see
        that module for the ``replay_mode`` semantics and the batched
        path's tolerance contract).
        """
        from repro.sim.group_replay import replay_group

        return replay_group(trace, configs, interval_cycles, **kwargs)


def replay_trace(
    config: ProcessorConfig,
    trace: ActivityTrace,
    interval_cycles: Optional[int] = None,
    warmup: bool = True,
    dtm_policy: Optional[DTMPolicy] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`PhysicsStage` and replay a trace."""
    stage = PhysicsStage(config, interval_cycles)
    return stage.replay(trace, warmup=warmup, dtm_policy=dtm_policy)


class SimulationEngine:
    """Runs one benchmark on one configuration, producing a SimulationResult.

    Composes a :class:`TimingStage` and a :class:`PhysicsStage` and drives
    them coupled, one thermal interval at a time.  The historical attribute
    surface (``engine.processor``, ``engine.solver``, ``engine.block_index``,
    ...) is preserved as delegating properties.
    """

    #: Consecutive fully clock-gated intervals after which the engine aborts:
    #: a sane stop-go policy releases as soon as leakage-only cooling brings
    #: the die below its trigger, so a streak this long means the trigger is
    #: unreachable (e.g. set below the ambient temperature).
    _MAX_GATED_STREAK = 10_000

    def __init__(
        self,
        config: ProcessorConfig,
        uop_source: Iterable[MicroOp],
        benchmark: str = "synthetic",
        interval_cycles: Optional[int] = None,
        prewarm_caches: bool = True,
        dtm_policy: Optional[DTMPolicy] = None,
        timing_mode: str = "auto",
    ) -> None:
        self.config = config
        self.benchmark = benchmark
        self.interval_cycles = interval_cycles or config.thermal.interval_cycles
        if self.interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")

        # --------------------------------------------------------------
        # Timing-mode selection.  The fast path only claims configurations
        # it provably reproduces byte-for-byte: no physics feedback into
        # timing (timing_feedback_reason — the same authority that gates
        # trace replay), no temperature-actuating DTM policy, and a
        # materialized workload it can batch-decode.  Everything else falls
        # back to the per-uop golden reference.
        # --------------------------------------------------------------
        if timing_mode not in ("auto", "fast", "reference"):
            raise ValueError(
                "timing_mode must be 'auto', 'fast' or 'reference', "
                f"not {timing_mode!r}"
            )
        self.timing_mode = timing_mode
        fallback: Optional[str] = None
        if timing_mode == "reference":
            fallback = "timing_mode='reference' requested"
        else:
            fallback = timing_feedback_reason(config)
            if fallback is None and dtm_policy is not None and dtm_policy.feedback:
                fallback = (
                    f"DTM policy {dtm_policy.name!r} actuates on temperatures"
                )
            if fallback is None and not isinstance(uop_source, Sequence):
                fallback = "streaming uop source cannot be batch-decoded"
            if timing_mode == "fast" and fallback is not None:
                raise ValueError(
                    f"timing_mode='fast' is not applicable: {fallback}"
                )
        self.timing_fallback_reason = fallback
        self.resolved_timing_mode = "reference" if fallback is not None else "fast"

        self.physics = PhysicsStage(config, self.interval_cycles)
        if self.resolved_timing_mode == "fast":
            from repro.sim.fast_timing import FastTimingStage

            stage_cls = FastTimingStage
        else:
            stage_cls = TimingStage
        self.timing = stage_cls(
            config,
            uop_source,
            self.interval_cycles,
            self.physics.block_index,
            prewarm_caches=prewarm_caches,
        )

        # --------------------------------------------------------------
        # Dynamic thermal management (optional).  The DTM sensor bank spans
        # every block (the paper's mapping function only needs the trace-
        # cache banks; DTM policies watch the whole die) in block-index
        # order, so policy observations are plain vectors.
        # --------------------------------------------------------------
        self.dtm_policy = dtm_policy
        self.dtm_controls: Optional[DTMControls] = None
        self.dtm_telemetry: Optional[DTMTelemetry] = None
        self.dtm_sensors: Optional[SensorBank] = None
        if dtm_policy is not None:
            # The controls adopt the policy's declared VF table (DVFS/hybrid
            # policies carry their ``table=`` parameter as ``policy.table``).
            self.dtm_controls = DTMControls(self.block_index, table=dtm_policy.table)
            self.dtm_telemetry = DTMTelemetry(self.dtm_controls.table)
            self.dtm_sensors = SensorBank(self.block_index.names)
            dtm_policy.bind(self.block_index, config, self.dtm_controls)

    # ------------------------------------------------------------------
    # Delegating views over the two stages (the historical engine surface)
    # ------------------------------------------------------------------
    @property
    def processor(self) -> Processor:
        return self.timing.processor

    @property
    def hopping(self) -> Optional[BankHoppingController]:
        return self.timing.hopping

    @property
    def mapping_policy(self):
        return self.timing.mapping_policy

    @property
    def sensors(self) -> SensorBank:
        return self.timing.sensors

    @property
    def block_parameters(self):
        return self.physics.block_parameters

    @property
    def block_areas(self):
        return self.physics.block_areas

    @property
    def floorplan(self):
        return self.physics.floorplan

    @property
    def network(self) -> ThermalRCNetwork:
        return self.physics.network

    @property
    def solver(self) -> ThermalSolver:
        return self.physics.solver

    @property
    def power_model(self) -> PowerModel:
        return self.physics.power_model

    @property
    def block_index(self) -> BlockIndex:
        return self.physics.block_index

    @property
    def warmup_temperatures(self) -> Dict[str, float]:
        return self.physics.warmup_temperatures

    @property
    def emergency_intervals(self) -> int:
        return self.physics.emergency_intervals

    @property
    def _temperature_array(self) -> np.ndarray:
        return self.physics.temperature_array

    @property
    def replay_safe_reason(self) -> Optional[str]:
        """Why this run cannot be captured for replay (``None`` = it can)."""
        reason = timing_feedback_reason(self.config)
        if reason is not None:
            return reason
        if self.dtm_policy is not None and self.dtm_policy.feedback:
            return (
                f"DTM policy {self.dtm_policy.name!r} actuates on temperatures"
            )
        return None

    def interval_pipeline(
        self,
        activity_counts: np.ndarray,
        cycles_elapsed: int,
        cycle: int,
        seconds: float,
        dynamic_scale: Optional[np.ndarray] = None,
        leakage_scale: Optional[np.ndarray] = None,
    ) -> IntervalRecord:
        """One coupled interval's physics (the benchmarked hot path).

        Resolves the current Vdd-gated-bank mask from the timing stage and
        delegates to :meth:`PhysicsStage.interval_pipeline`.
        """
        _, gated_mask = self.timing.gated_state()
        return self.physics.interval_pipeline(
            activity_counts,
            cycles_elapsed,
            cycle=cycle,
            seconds=seconds,
            gated_mask=gated_mask,
            dynamic_scale=dynamic_scale,
            leakage_scale=leakage_scale,
        )

    # ------------------------------------------------------------------
    # Dynamic thermal management
    # ------------------------------------------------------------------
    def _apply_dtm(self, interval_index: int) -> bool:
        """Run the DTM policy hook before simulating interval ``interval_index``.

        The policy observes the previous interval's sensor-quantized block
        temperatures (degrees Celsius, block-index order) and mutates the
        clamped controls; the granted fetch duty is translated into the
        processor's fetch gate.  Returns ``True`` when the policy was
        granted a fully clock-gated interval (never for interval 0, whose
        cycles have already run when the post-warm-up observation happens).
        """
        controls = self.dtm_controls
        controls.begin_interval(gating_allowed=interval_index > 0)
        readings = self.dtm_sensors.read_array(self.physics.temperature_array)
        observation = DTMObservation(
            interval_index=interval_index,
            temperatures=readings,
            index=self.block_index,
        )
        self.dtm_policy.apply(observation, controls)
        on_cycles = controls.effective_fetch_on_cycles
        if on_cycles < FETCH_DUTY_PERIOD:
            self.processor.set_fetch_gate(on_cycles, FETCH_DUTY_PERIOD)
        else:
            self.processor.clear_fetch_gate()
        return controls.gate_interval

    def _gated_interval(self, cycle: int, seconds: float) -> IntervalRecord:
        """Record one fully clock-gated interval (stop-go DTM).

        Bank hops and remaps are skipped — the paper's mechanisms are
        clocked, and the clock is off.
        """
        _, gated_mask = self.timing.gated_state()
        leakage_scale = None
        if self.dtm_controls is not None:
            _, leakage_scale = self.dtm_controls.power_scales()
        return self.physics.leakage_only_interval(
            cycle=cycle,
            seconds=seconds,
            gated_mask=gated_mask,
            leakage_scale=leakage_scale,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        max_intervals: Optional[int] = None,
        warmup: bool = True,
        recorder: Optional[TraceRecorder] = None,
    ) -> SimulationResult:
        """Run the benchmark to completion and return the full result.

        With a ``recorder``, every interval's timing-stage output (activity
        counts, cycles, gated-bank mask) is also captured for later replay;
        recording refuses configurations whose timing depends on
        temperature (see :func:`timing_feedback_reason`), because a trace
        captured under one physics variant would silently misrepresent
        another.
        """
        if recorder is not None:
            reason = self.replay_safe_reason
            if reason is not None:
                raise ValueError(f"cannot capture an activity trace: {reason}")
        result = self.physics.new_result(self.benchmark)
        result.stats = self.processor.stats
        timing = self.timing
        physics = self.physics
        interval_index = 0
        interval_seconds = self.config.thermal.interval_seconds
        dtm = self.dtm_policy is not None
        gated_streak = 0

        while not self.processor.finished:
            if max_intervals is not None and interval_index >= max_intervals:
                break
            if dtm and interval_index > 0 and self._apply_dtm(interval_index):
                # Fully clock-gated interval: wall-clock advances, the
                # processor does not.
                gated_streak += 1
                if gated_streak > self._MAX_GATED_STREAK:
                    raise RuntimeError(
                        f"DTM policy {self.dtm_policy.name!r} clock-gated "
                        f"{gated_streak} consecutive intervals; its trigger "
                        "temperature is unreachable by cooling"
                    )
                result.intervals.append(
                    self._gated_interval(
                        cycle=self.processor.cycle,
                        seconds=(interval_index + 1) * interval_seconds,
                    )
                )
                self.dtm_telemetry.record_interval(self.dtm_controls, gated=True)
                interval_index += 1
                continue
            gated_streak = 0
            activity_counts, cycles_elapsed = timing.run_interval(self.interval_cycles)
            if activity_counts is None:
                break
            _, gated_mask = timing.gated_state()
            if recorder is not None:
                recorder.record(
                    activity_counts, cycles_elapsed, self.processor.cycle, gated_mask
                )

            if interval_index == 0 and warmup:
                physics.warmup(activity_counts, cycles_elapsed, gated_mask)
                if dtm:
                    # Let the policy observe the warmed-up die before the
                    # first power/thermal step: under DTM the processor
                    # would have been managed throughout the warm-up
                    # history too, so interval 0's power already runs at
                    # the policy's operating point.  A whole-interval gate
                    # cannot apply here (the cycles already ran); the
                    # controls deny it and the policy re-decides next
                    # interval.
                    self._apply_dtm(0)

            dynamic_scale = leakage_scale = None
            if dtm:
                dynamic_scale, leakage_scale = self.dtm_controls.power_scales()

            result.intervals.append(
                physics.interval_pipeline(
                    activity_counts,
                    cycles_elapsed,
                    cycle=self.processor.cycle,
                    seconds=(interval_index + 1) * interval_seconds,
                    gated_mask=gated_mask,
                    dynamic_scale=dynamic_scale,
                    leakage_scale=leakage_scale,
                )
            )
            if dtm:
                # Interval 0's cycles ran before the policy could gate fetch
                # (it only observes the die after warm-up), so its duty and
                # frequency are charged at nominal.
                self.dtm_telemetry.record_interval(
                    self.dtm_controls,
                    gated=False,
                    fetch_actuated=interval_index > 0,
                )
            timing.apply_bank_management(interval_index, physics.temperature_array)
            interval_index += 1

        result.warmup_temperature = physics.warmup_temperatures
        result.stats.trace_cache_hits = self.processor.trace_cache.hits
        result.stats.trace_cache_misses = self.processor.trace_cache.misses
        result.stats.trace_cache_hop_flushes = self.processor.trace_cache.hop_flushes
        if dtm:
            result.dtm = {
                "policy": self.dtm_policy.name,
                **self.dtm_telemetry.as_dict(),
            }
        return result

    def run_with_trace(
        self,
        max_intervals: Optional[int] = None,
        warmup: bool = True,
        trace_provenance: Optional[Dict[str, object]] = None,
    ) -> Tuple[SimulationResult, ActivityTrace]:
        """Coupled run that also captures the timing stage's activity trace.

        The returned result is exactly what :meth:`run` would have produced
        (capture only *observes* the timing stage); the trace, replayed
        through a :class:`PhysicsStage` built from any physics-side variant
        of this configuration, reproduces that variant's coupled run
        bit-for-bit.  ``trace_provenance`` is stamped into the trace
        document; it may carry *timing-side* generation parameters only
        (seed, trace length), never anything a physics sweep varies.
        """
        recorder = TraceRecorder(
            self.benchmark,
            self.physics.block_index.names,
            self.interval_cycles,
            provenance=trace_provenance,
        )
        result = self.run(max_intervals=max_intervals, warmup=warmup, recorder=recorder)
        return result, recorder.finish(result.stats)


def run_benchmark(
    config: ProcessorConfig,
    uop_source: Iterable[MicroOp],
    benchmark: str = "synthetic",
    interval_cycles: Optional[int] = None,
    max_intervals: Optional[int] = None,
    warmup: bool = True,
    prewarm_caches: bool = True,
    dtm_policy: Optional[DTMPolicy] = None,
    timing_mode: str = "auto",
) -> SimulationResult:
    """Convenience wrapper: build an engine, run it, return the result."""
    engine = SimulationEngine(
        config,
        uop_source,
        benchmark,
        interval_cycles,
        prewarm_caches=prewarm_caches,
        dtm_policy=dtm_policy,
        timing_mode=timing_mode,
    )
    return engine.run(max_intervals=max_intervals, warmup=warmup)

"""Simulation engine: couples the timing model with power and temperature.

The engine advances the :class:`~repro.sim.processor.Processor` one thermal
interval at a time.  At the end of every interval it

1. drains the per-block activity counters and converts them to dynamic power,
2. evaluates the temperature-dependent leakage at the current temperatures,
3. advances the thermal RC network by the interval's wall-clock duration,
4. lets the bank-hopping controller rotate the gated trace-cache bank and the
   (balanced or thermal-aware) mapping policy rebuild the bank mapping table,
   exactly as the paper does every 10 M cycles.

Before measurement the processor is *warmed up*: the steady-state
temperatures for the nominal average power (first interval's activity) are
computed, iterating the leakage-temperature feedback until convergence or the
381 K emergency limit, mirroring Section 4 of the paper.

The per-interval power/thermal pipeline is array-backed end to end: activity
counts drain into a NumPy vector laid out by the engine's
:class:`~repro.sim.block_index.BlockIndex`, power and leakage are evaluated
as vectors, the thermal solve reuses a precomputed LU factorization of the
conductance matrix, and :class:`~repro.sim.results.IntervalRecord` stores
the vectors directly — per-block dictionaries are only materialized at the
result boundary.  The golden-metric suite (``tests/test_golden_metrics.py``)
locks this fast path bit-for-bit against the original dict-per-block
implementation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.bank_hopping import BankHoppingController
from repro.core.thermal_mapping import BalancedMappingPolicy, ThermalAwareMappingPolicy
from repro.isa.microops import MicroOp
from repro.power.energy import build_block_parameters
from repro.power.power_model import PowerModel
from repro.sim import blocks
from repro.sim.config import ProcessorConfig
from repro.sim.processor import Processor
from repro.sim.results import IntervalRecord, SimulationResult
from repro.thermal.floorplan import build_floorplan
from repro.thermal.rc_model import ThermalRCNetwork
from repro.thermal.sensors import SensorBank
from repro.thermal.solver import ThermalSolver


class SimulationEngine:
    """Runs one benchmark on one configuration, producing a SimulationResult."""

    def __init__(
        self,
        config: ProcessorConfig,
        uop_source: Iterable[MicroOp],
        benchmark: str = "synthetic",
        interval_cycles: Optional[int] = None,
        prewarm_caches: bool = True,
    ) -> None:
        self.config = config
        self.benchmark = benchmark
        self.interval_cycles = interval_cycles or config.thermal.interval_cycles
        if self.interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")

        uop_stream: Iterator[MicroOp]
        if isinstance(uop_source, Sequence):
            # A materialized trace: the engine can functionally pre-warm the
            # UL2 with the trace's footprint, as sampled-simulation
            # methodologies do, so the short measured slice is not dominated
            # by cold misses the paper's 200 M-instruction slices would have
            # amortized.
            uop_stream = iter(list(uop_source))
            self._prewarm_source: Optional[Sequence[MicroOp]] = uop_source
        else:
            uop_stream = iter(uop_source)
            self._prewarm_source = None
        self.processor = Processor(config, uop_stream)
        if prewarm_caches and self._prewarm_source is not None:
            self._prewarm_memory(self._prewarm_source)
        self.block_parameters = build_block_parameters(config)
        self.block_areas = {
            name: params.area_mm2 for name, params in self.block_parameters.items()
        }
        self.floorplan = build_floorplan(config, self.block_areas)
        self.network = ThermalRCNetwork(self.floorplan, config.thermal)
        self.solver = ThermalSolver(self.network)
        self.power_model = PowerModel(config.power, self.block_parameters)

        tc_config = config.frontend.trace_cache
        self._tc_bank_blocks = blocks.trace_cache_blocks(config)
        self.sensors = SensorBank(self._tc_bank_blocks)
        self.hopping: Optional[BankHoppingController] = None
        if tc_config.bank_hopping or tc_config.blank_silicon:
            static_gated = []
            if tc_config.blank_silicon:
                # Statically gate the extra (highest-numbered) banks.
                spare = tc_config.physical_banks - tc_config.active_banks
                static_gated = list(
                    range(tc_config.physical_banks - spare, tc_config.physical_banks)
                )
            self.hopping = BankHoppingController(
                physical_banks=tc_config.physical_banks,
                active_banks=tc_config.active_banks,
                hop_interval_cycles=tc_config.hop_interval_cycles,
                enabled=tc_config.bank_hopping,
                static_gated_banks=static_gated,
            )
            self.processor.trace_cache.set_enabled_banks(self.hopping.enabled_banks)
            self.processor.trace_cache.set_balanced_mapping()
        if tc_config.thermal_aware_mapping:
            self.mapping_policy = ThermalAwareMappingPolicy(
                tc_config.mapping_table_entries, tc_config.bias_threshold_celsius
            )
        else:
            self.mapping_policy = BalancedMappingPolicy(tc_config.mapping_table_entries)
        # Intervals between hops / remaps, expressed in thermal intervals.
        self._hop_every = max(1, round(tc_config.hop_interval_cycles / self.interval_cycles))
        self._remap_every = max(1, round(tc_config.remap_interval_cycles / self.interval_cycles))

        # --------------------------------------------------------------
        # Array fast path: one block index (the power model's order) for
        # every per-interval vector, plus the explicit permutation that
        # scatters block vectors into thermal-node space.  The activity
        # counters, the floorplan and the power model each enumerate blocks
        # in their own order, so nothing here assumes the orders agree.
        # --------------------------------------------------------------
        self.block_index = self.power_model.index
        self._node_positions = self.network.node_positions(self.block_index.names)
        self._node_power = np.zeros(self.network.num_nodes)
        self._gated_cache: Tuple[tuple, list, np.ndarray] = (
            (),
            [],
            np.zeros(len(self.block_index), dtype=bool),
        )

        self._thermal_state = self.network.uniform_state(config.thermal.ambient_celsius)
        self._temperature_array: np.ndarray = self._thermal_state[self._node_positions]
        self.warmup_temperatures: Dict[str, float] = self.block_index.mapping_from_array(
            self._temperature_array
        )
        self.emergency_intervals = 0

    # ------------------------------------------------------------------
    def _prewarm_memory(self, trace: Sequence[MicroOp]) -> None:
        """Touch the trace's data footprint in the UL2 (functional warm-up).

        Only the UL2 is warmed: the small per-cluster L1 caches reach steady
        state within the measured slice, but the 2 MB UL2 would otherwise
        spend the whole short slice taking cold misses with the 500-cycle
        memory latency, which the paper's long traces do not suffer.
        """
        ul2 = self.processor.ul2
        for uop in trace:
            if uop.mem_addr is not None:
                ul2.access(uop.mem_addr)
        # The warm-up accesses are functional only; reset the statistics.
        ul2.hits = 0
        ul2.misses = 0

    def _gated_state(self) -> Tuple[list, Optional[np.ndarray]]:
        """Names and block-index mask of the Vdd-gated trace-cache banks.

        Cached per gated-bank set: the set only changes when the hopping
        controller rotates, so the steady intervals between hops reuse one
        mask instead of rebuilding it.
        """
        if self.hopping is None:
            return [], None
        banks = tuple(self.hopping.gated_banks)
        cached = self._gated_cache
        if cached[0] != banks:
            names = [blocks.trace_cache_bank_block(b) for b in banks]
            cached = (banks, names, self.block_index.mask(names))
            self._gated_cache = cached
        return cached[1], cached[2]

    def _warmup(self, activity_counts: np.ndarray, cycles: int) -> None:
        """Warm the processor to the steady state of its nominal power."""
        _, gated_mask = self._gated_state()
        leakage_model = self.power_model.leakage_model
        # The first interval's dynamic power (constant across the warm-up
        # fixed point) seeds the leakage model's nominal power; the iteration
        # below then couples leakage and temperature until convergence (or
        # the 381 K emergency limit).
        dynamic = self.power_model.dynamic_power_array(
            activity_counts, cycles, gated_mask
        )
        leakage_model.seed_nominal_power_array(dynamic)
        node_positions = self._node_positions
        node_power = self._node_power

        def node_power_at(state: np.ndarray) -> np.ndarray:
            temperatures = state[node_positions]
            leakage = leakage_model.leakage_power_array(temperatures, gated_mask)
            node_power[:] = 0.0
            node_power[node_positions] = dynamic + leakage
            return node_power

        state, _ = self.solver.warmup_nodes(
            node_power_at,
            emergency_limit_celsius=self.config.thermal.emergency_limit_celsius,
        )
        self._thermal_state = state
        self._temperature_array = state[node_positions]
        self.warmup_temperatures = self.block_index.mapping_from_array(
            self._temperature_array
        )

    def _apply_bank_management(self, interval_index: int) -> None:
        """Rotate the gated bank and rebuild the mapping table when due."""
        tc = self.processor.trace_cache
        tc_config = self.config.frontend.trace_cache
        hopped = False
        if (
            self.hopping is not None
            and self.hopping.enabled
            and (interval_index + 1) % self._hop_every == 0
        ):
            self.hopping.hop()
            tc.set_enabled_banks(self.hopping.enabled_banks)
            self.processor.stats.trace_cache_hop_flushes = tc.hop_flushes
            hopped = True
        remap_due = (interval_index + 1) % self._remap_every == 0
        if hopped or (remap_due and tc_config.thermal_aware_mapping):
            enabled = tc.enabled_banks()
            # Sensors read only the trace-cache banks; build just that small
            # mapping from the temperature vector (the result boundary).
            temperatures = self._temperature_array
            index = self.block_index
            readings = self.sensors.read_all(
                {
                    name: float(temperatures[index.position(name)])
                    for name in self._tc_bank_blocks
                }
            )
            bank_temps = {
                bank: readings[blocks.trace_cache_bank_block(bank)] for bank in enabled
            }
            shares = self.mapping_policy.compute_shares(enabled, bank_temps)
            tc.set_mapping_shares(shares)

    # ------------------------------------------------------------------
    def interval_pipeline(
        self,
        activity_counts: np.ndarray,
        cycles_elapsed: int,
        cycle: int,
        seconds: float,
    ) -> IntervalRecord:
        """The power/thermal hot path of one interval: counts -> record.

        Converts a drained activity-count vector (block-index order) into
        dynamic and leakage power, advances the thermal RC network by the
        interval's wall-clock duration, tracks the emergency-limit counter
        and returns the interval's :class:`IntervalRecord` — all on NumPy
        vectors, with no per-block dict allocation.  ``run`` calls this once
        per interval; the throughput benchmark drives it directly.
        """
        _, gated_mask = self._gated_state()
        dynamic, leakage = self.power_model.compute_arrays(
            activity_counts, cycles_elapsed, self._temperature_array, gated_mask
        )
        node_power = self._node_power
        node_power[:] = 0.0
        node_power[self._node_positions] = dynamic + leakage
        dt = self.config.thermal.interval_seconds * (
            cycles_elapsed / self.interval_cycles
        )
        self._thermal_state = self.solver.advance_nodes(
            self._thermal_state, node_power, dt
        )
        # Fancy indexing copies, so each record owns its temperature vector.
        self._temperature_array = self._thermal_state[self._node_positions]
        if (
            float(self._temperature_array.max())
            >= self.config.thermal.emergency_limit_celsius
        ):
            self.emergency_intervals += 1
        return IntervalRecord.from_arrays(
            cycle=cycle,
            seconds=seconds,
            block_names=self.block_index.names,
            dynamic_power=dynamic,
            leakage_power=leakage,
            temperature=self._temperature_array,
        )

    def run(
        self,
        max_intervals: Optional[int] = None,
        warmup: bool = True,
    ) -> SimulationResult:
        """Run the benchmark to completion and return the full result."""
        result = SimulationResult(
            config_name=self.config.name,
            benchmark=self.benchmark,
            stats=self.processor.stats,
            block_names=list(self.block_parameters.keys()),
            block_groups=blocks.block_groups(self.config),
            block_areas_mm2=self.block_areas,
            ambient_celsius=self.config.thermal.ambient_celsius,
            provenance={"interval_cycles": self.interval_cycles},
        )
        interval_index = 0
        interval_seconds = self.config.thermal.interval_seconds

        while not self.processor.finished:
            if max_intervals is not None and interval_index >= max_intervals:
                break
            start_cycle = self.processor.cycle
            self.processor.run_cycles(self.interval_cycles)
            cycles_elapsed = self.processor.cycle - start_cycle
            if cycles_elapsed == 0:
                break
            activity_counts = self.processor.activity.end_interval_array(
                self.block_index
            )

            if interval_index == 0 and warmup:
                self._warmup(activity_counts, cycles_elapsed)

            result.intervals.append(
                self.interval_pipeline(
                    activity_counts,
                    cycles_elapsed,
                    cycle=self.processor.cycle,
                    seconds=(interval_index + 1) * interval_seconds,
                )
            )
            self._apply_bank_management(interval_index)
            interval_index += 1

        result.warmup_temperature = self.warmup_temperatures
        result.stats.trace_cache_hits = self.processor.trace_cache.hits
        result.stats.trace_cache_misses = self.processor.trace_cache.misses
        result.stats.trace_cache_hop_flushes = self.processor.trace_cache.hop_flushes
        return result


def run_benchmark(
    config: ProcessorConfig,
    uop_source: Iterable[MicroOp],
    benchmark: str = "synthetic",
    interval_cycles: Optional[int] = None,
    max_intervals: Optional[int] = None,
    warmup: bool = True,
    prewarm_caches: bool = True,
) -> SimulationResult:
    """Convenience wrapper: build an engine, run it, return the result."""
    engine = SimulationEngine(
        config, uop_source, benchmark, interval_cycles, prewarm_caches=prewarm_caches
    )
    return engine.run(max_intervals=max_intervals, warmup=warmup)

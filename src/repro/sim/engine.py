"""Simulation engine: couples the timing model with power and temperature.

The engine advances the :class:`~repro.sim.processor.Processor` one thermal
interval at a time.  At the end of every interval it

1. drains the per-block activity counters and converts them to dynamic power,
2. evaluates the temperature-dependent leakage at the current temperatures,
3. advances the thermal RC network by the interval's wall-clock duration,
4. lets the bank-hopping controller rotate the gated trace-cache bank and the
   (balanced or thermal-aware) mapping policy rebuild the bank mapping table,
   exactly as the paper does every 10 M cycles.

Before measurement the processor is *warmed up*: the steady-state
temperatures for the nominal average power (first interval's activity) are
computed, iterating the leakage-temperature feedback until convergence or the
381 K emergency limit, mirroring Section 4 of the paper.

The per-interval power/thermal pipeline is array-backed end to end: activity
counts drain into a NumPy vector laid out by the engine's
:class:`~repro.sim.block_index.BlockIndex`, power and leakage are evaluated
as vectors, the thermal solve reuses a precomputed LU factorization of the
conductance matrix, and :class:`~repro.sim.results.IntervalRecord` stores
the vectors directly — per-block dictionaries are only materialized at the
result boundary.  The golden-metric suite (``tests/test_golden_metrics.py``)
locks this fast path bit-for-bit against the original dict-per-block
implementation.

Optionally the engine hosts a dynamic-thermal-management policy
(``dtm_policy=``, see :mod:`repro.dtm`): before every interval after the
first, the policy reads a full-die :class:`~repro.thermal.sensors.SensorBank`
(quantized block temperatures in block-index order) and mutates the clamped
:class:`~repro.dtm.controls.DTMControls` — fetch duty, whole-interval clock
gating, per-cluster DVFS steps.  The engine translates the controls into a
processor fetch gate (DVFS frequency reductions ride the same gate, so the
activity counts carry the ``f`` factor of ``P = a C V^2 f``) and per-block
voltage power-multiplier vectors on the interval pipeline.  With no policy —
or the no-op policy — none of the DTM branches perturb the arithmetic, so
the golden metrics are reproduced bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.bank_hopping import BankHoppingController
from repro.core.thermal_mapping import BalancedMappingPolicy, ThermalAwareMappingPolicy
from repro.dtm.controls import DTMControls, DTMTelemetry, FETCH_DUTY_PERIOD
from repro.dtm.policies import DTMObservation, DTMPolicy
from repro.isa.microops import MicroOp
from repro.power.energy import build_block_parameters
from repro.power.power_model import PowerModel
from repro.sim import blocks
from repro.sim.config import ProcessorConfig
from repro.sim.processor import Processor
from repro.sim.results import IntervalRecord, SimulationResult
from repro.thermal.floorplan import build_floorplan
from repro.thermal.rc_model import ThermalRCNetwork
from repro.thermal.sensors import SensorBank
from repro.thermal.solver import ThermalSolver


class SimulationEngine:
    """Runs one benchmark on one configuration, producing a SimulationResult."""

    #: Consecutive fully clock-gated intervals after which the engine aborts:
    #: a sane stop-go policy releases as soon as leakage-only cooling brings
    #: the die below its trigger, so a streak this long means the trigger is
    #: unreachable (e.g. set below the ambient temperature).
    _MAX_GATED_STREAK = 10_000

    def __init__(
        self,
        config: ProcessorConfig,
        uop_source: Iterable[MicroOp],
        benchmark: str = "synthetic",
        interval_cycles: Optional[int] = None,
        prewarm_caches: bool = True,
        dtm_policy: Optional[DTMPolicy] = None,
    ) -> None:
        self.config = config
        self.benchmark = benchmark
        self.interval_cycles = interval_cycles or config.thermal.interval_cycles
        if self.interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")

        uop_stream: Iterator[MicroOp]
        if isinstance(uop_source, Sequence):
            # A materialized trace: the engine can functionally pre-warm the
            # UL2 with the trace's footprint, as sampled-simulation
            # methodologies do, so the short measured slice is not dominated
            # by cold misses the paper's 200 M-instruction slices would have
            # amortized.
            uop_stream = iter(list(uop_source))
            self._prewarm_source: Optional[Sequence[MicroOp]] = uop_source
        else:
            uop_stream = iter(uop_source)
            self._prewarm_source = None
        self.processor = Processor(config, uop_stream)
        if prewarm_caches and self._prewarm_source is not None:
            self._prewarm_memory(self._prewarm_source)
        self.block_parameters = build_block_parameters(config)
        self.block_areas = {
            name: params.area_mm2 for name, params in self.block_parameters.items()
        }
        self.floorplan = build_floorplan(config, self.block_areas)
        self.network = ThermalRCNetwork(self.floorplan, config.thermal)
        self.solver = ThermalSolver(self.network)
        self.power_model = PowerModel(config.power, self.block_parameters)

        tc_config = config.frontend.trace_cache
        self._tc_bank_blocks = blocks.trace_cache_blocks(config)
        self.sensors = SensorBank(self._tc_bank_blocks)
        self.hopping: Optional[BankHoppingController] = None
        if tc_config.bank_hopping or tc_config.blank_silicon:
            static_gated = []
            if tc_config.blank_silicon:
                # Statically gate the extra (highest-numbered) banks.
                spare = tc_config.physical_banks - tc_config.active_banks
                static_gated = list(
                    range(tc_config.physical_banks - spare, tc_config.physical_banks)
                )
            self.hopping = BankHoppingController(
                physical_banks=tc_config.physical_banks,
                active_banks=tc_config.active_banks,
                hop_interval_cycles=tc_config.hop_interval_cycles,
                enabled=tc_config.bank_hopping,
                static_gated_banks=static_gated,
            )
            self.processor.trace_cache.set_enabled_banks(self.hopping.enabled_banks)
            self.processor.trace_cache.set_balanced_mapping()
        if tc_config.thermal_aware_mapping:
            self.mapping_policy = ThermalAwareMappingPolicy(
                tc_config.mapping_table_entries, tc_config.bias_threshold_celsius
            )
        else:
            self.mapping_policy = BalancedMappingPolicy(tc_config.mapping_table_entries)
        # Intervals between hops / remaps, expressed in thermal intervals.
        self._hop_every = max(1, round(tc_config.hop_interval_cycles / self.interval_cycles))
        self._remap_every = max(1, round(tc_config.remap_interval_cycles / self.interval_cycles))

        # --------------------------------------------------------------
        # Array fast path: one block index (the power model's order) for
        # every per-interval vector, plus the explicit permutation that
        # scatters block vectors into thermal-node space.  The activity
        # counters, the floorplan and the power model each enumerate blocks
        # in their own order, so nothing here assumes the orders agree.
        # --------------------------------------------------------------
        self.block_index = self.power_model.index
        self._node_positions = self.network.node_positions(self.block_index.names)
        self._node_power = np.zeros(self.network.num_nodes)
        self._gated_cache: Tuple[tuple, list, np.ndarray] = (
            (),
            [],
            np.zeros(len(self.block_index), dtype=bool),
        )

        self._thermal_state = self.network.uniform_state(config.thermal.ambient_celsius)
        self._temperature_array: np.ndarray = self._thermal_state[self._node_positions]
        self.warmup_temperatures: Dict[str, float] = self.block_index.mapping_from_array(
            self._temperature_array
        )
        self.emergency_intervals = 0

        # --------------------------------------------------------------
        # Dynamic thermal management (optional).  The DTM sensor bank spans
        # every block (the paper's mapping function only needs the trace-
        # cache banks; DTM policies watch the whole die) in block-index
        # order, so policy observations are plain vectors.
        # --------------------------------------------------------------
        self.dtm_policy = dtm_policy
        self.dtm_controls: Optional[DTMControls] = None
        self.dtm_telemetry: Optional[DTMTelemetry] = None
        self.dtm_sensors: Optional[SensorBank] = None
        if dtm_policy is not None:
            # The controls adopt the policy's declared VF table (DVFS/hybrid
            # policies carry their ``table=`` parameter as ``policy.table``).
            self.dtm_controls = DTMControls(self.block_index, table=dtm_policy.table)
            self.dtm_telemetry = DTMTelemetry(self.dtm_controls.table)
            self.dtm_sensors = SensorBank(self.block_index.names)
            dtm_policy.bind(self.block_index, config, self.dtm_controls)

    # ------------------------------------------------------------------
    def _prewarm_memory(self, trace: Sequence[MicroOp]) -> None:
        """Touch the trace's data footprint in the UL2 (functional warm-up).

        Only the UL2 is warmed: the small per-cluster L1 caches reach steady
        state within the measured slice, but the 2 MB UL2 would otherwise
        spend the whole short slice taking cold misses with the 500-cycle
        memory latency, which the paper's long traces do not suffer.
        """
        ul2 = self.processor.ul2
        for uop in trace:
            if uop.mem_addr is not None:
                ul2.access(uop.mem_addr)
        # The warm-up accesses are functional only; reset the statistics.
        ul2.hits = 0
        ul2.misses = 0

    def _gated_state(self) -> Tuple[list, Optional[np.ndarray]]:
        """Names and block-index mask of the Vdd-gated trace-cache banks.

        Cached per gated-bank set: the set only changes when the hopping
        controller rotates, so the steady intervals between hops reuse one
        mask instead of rebuilding it.
        """
        if self.hopping is None:
            return [], None
        banks = tuple(self.hopping.gated_banks)
        cached = self._gated_cache
        if cached[0] != banks:
            names = [blocks.trace_cache_bank_block(b) for b in banks]
            cached = (banks, names, self.block_index.mask(names))
            self._gated_cache = cached
        return cached[1], cached[2]

    def _warmup(self, activity_counts: np.ndarray, cycles: int) -> None:
        """Warm the processor to the steady state of its nominal power.

        ``activity_counts`` are the first interval's per-block access counts
        (block-index order) over ``cycles`` cycles; the resulting dynamic
        power (W) is held constant while the leakage-temperature fixed point
        iterates (temperatures in degrees Celsius, limit 381 K).
        """
        _, gated_mask = self._gated_state()
        leakage_model = self.power_model.leakage_model
        # The first interval's dynamic power (constant across the warm-up
        # fixed point) seeds the leakage model's nominal power; the iteration
        # below then couples leakage and temperature until convergence (or
        # the 381 K emergency limit).
        dynamic = self.power_model.dynamic_power_array(
            activity_counts, cycles, gated_mask
        )
        leakage_model.seed_nominal_power_array(dynamic)
        node_positions = self._node_positions
        node_power = self._node_power

        def node_power_at(state: np.ndarray) -> np.ndarray:
            temperatures = state[node_positions]
            leakage = leakage_model.leakage_power_array(temperatures, gated_mask)
            node_power[:] = 0.0
            node_power[node_positions] = dynamic + leakage
            return node_power

        state, _ = self.solver.warmup_nodes(
            node_power_at,
            emergency_limit_celsius=self.config.thermal.emergency_limit_celsius,
        )
        self._thermal_state = state
        self._temperature_array = state[node_positions]
        self.warmup_temperatures = self.block_index.mapping_from_array(
            self._temperature_array
        )

    def _apply_bank_management(self, interval_index: int) -> None:
        """Rotate the gated bank and rebuild the mapping table when due."""
        tc = self.processor.trace_cache
        tc_config = self.config.frontend.trace_cache
        hopped = False
        if (
            self.hopping is not None
            and self.hopping.enabled
            and (interval_index + 1) % self._hop_every == 0
        ):
            self.hopping.hop()
            tc.set_enabled_banks(self.hopping.enabled_banks)
            self.processor.stats.trace_cache_hop_flushes = tc.hop_flushes
            hopped = True
        remap_due = (interval_index + 1) % self._remap_every == 0
        if hopped or (remap_due and tc_config.thermal_aware_mapping):
            enabled = tc.enabled_banks()
            # Sensors read only the trace-cache banks; build just that small
            # mapping from the temperature vector (the result boundary).
            temperatures = self._temperature_array
            index = self.block_index
            readings = self.sensors.read_all(
                {
                    name: float(temperatures[index.position(name)])
                    for name in self._tc_bank_blocks
                }
            )
            bank_temps = {
                bank: readings[blocks.trace_cache_bank_block(bank)] for bank in enabled
            }
            shares = self.mapping_policy.compute_shares(enabled, bank_temps)
            tc.set_mapping_shares(shares)

    # ------------------------------------------------------------------
    # Dynamic thermal management
    # ------------------------------------------------------------------
    def _apply_dtm(self, interval_index: int) -> bool:
        """Run the DTM policy hook before simulating interval ``interval_index``.

        The policy observes the previous interval's sensor-quantized block
        temperatures (degrees Celsius, block-index order) and mutates the
        clamped controls; the granted fetch duty is translated into the
        processor's fetch gate.  Returns ``True`` when the policy was
        granted a fully clock-gated interval (never for interval 0, whose
        cycles have already run when the post-warm-up observation happens).
        """
        controls = self.dtm_controls
        controls.begin_interval(gating_allowed=interval_index > 0)
        readings = self.dtm_sensors.read_array(self._temperature_array)
        observation = DTMObservation(
            interval_index=interval_index,
            temperatures=readings,
            index=self.block_index,
        )
        self.dtm_policy.apply(observation, controls)
        on_cycles = controls.effective_fetch_on_cycles
        if on_cycles < FETCH_DUTY_PERIOD:
            self.processor.set_fetch_gate(on_cycles, FETCH_DUTY_PERIOD)
        else:
            self.processor.clear_fetch_gate()
        return controls.gate_interval

    def _gated_interval(self, cycle: int, seconds: float) -> IntervalRecord:
        """Record one fully clock-gated interval (stop-go DTM).

        The processor executes nothing: dynamic power — clock distribution
        included — is 0 W, only leakage at the current temperatures is
        injected, and the thermal network advances by one full nominal
        interval of wall-clock (the clock is stopped; time is not).  The
        leakage model's running dynamic-power average is deliberately *not*
        updated: a gated interval says nothing about the workload's nominal
        power profile.  Bank hops and remaps are also skipped — the paper's
        mechanisms are clocked, and the clock is off.
        """
        _, gated_mask = self._gated_state()
        dynamic = np.zeros(len(self.block_index))
        leakage = self.power_model.leakage_model.leakage_power_array(
            self._temperature_array, gated_mask
        )
        if self.dtm_controls is not None:
            _, leakage_scale = self.dtm_controls.power_scales()
            if leakage_scale is not None:
                leakage = leakage * leakage_scale
        return self._advance_and_record(
            dynamic,
            leakage,
            self.config.thermal.interval_seconds,
            cycle=cycle,
            seconds=seconds,
        )

    def _advance_and_record(
        self,
        dynamic: np.ndarray,
        leakage: np.ndarray,
        dt: float,
        cycle: int,
        seconds: float,
    ) -> IntervalRecord:
        """Shared tail of every interval: power vectors -> thermal -> record.

        Scatters the block power vectors (W) into thermal-node space,
        advances the RC network by ``dt`` seconds, refreshes the cached
        block-temperature slice, counts emergency-limit intervals and
        returns the interval's record.  Both the normal interval pipeline
        and the clock-gated path end here, so the bookkeeping cannot
        diverge between them.
        """
        node_power = self._node_power
        node_power[:] = 0.0
        node_power[self._node_positions] = dynamic + leakage
        self._thermal_state = self.solver.advance_nodes(
            self._thermal_state, node_power, dt
        )
        # Fancy indexing copies, so each record owns its temperature vector.
        self._temperature_array = self._thermal_state[self._node_positions]
        if (
            float(self._temperature_array.max())
            >= self.config.thermal.emergency_limit_celsius
        ):
            self.emergency_intervals += 1
        return IntervalRecord.from_arrays(
            cycle=cycle,
            seconds=seconds,
            block_names=self.block_index.names,
            dynamic_power=dynamic,
            leakage_power=leakage,
            temperature=self._temperature_array,
        )

    # ------------------------------------------------------------------
    def interval_pipeline(
        self,
        activity_counts: np.ndarray,
        cycles_elapsed: int,
        cycle: int,
        seconds: float,
        dynamic_scale: Optional[np.ndarray] = None,
        leakage_scale: Optional[np.ndarray] = None,
    ) -> IntervalRecord:
        """The power/thermal hot path of one interval: counts -> record.

        Converts a drained activity-count vector (block-index order) into
        dynamic and leakage power (W), advances the thermal RC network by the
        interval's wall-clock duration (s), tracks the emergency-limit
        counter and returns the interval's :class:`IntervalRecord` — all on
        NumPy vectors, with no per-block dict allocation.  ``run`` calls this
        once per interval; the throughput benchmark drives it directly.

        ``dynamic_scale`` / ``leakage_scale`` are the DTM DVFS power
        multiplier vectors (see :meth:`PowerModel.compute_arrays`); the
        frequency component of DVFS is realized through the fetch duty, so
        it arrives here already folded into ``activity_counts``.  The
        ``None`` defaults leave the arithmetic bit-identical to the pre-DTM
        pipeline.
        """
        _, gated_mask = self._gated_state()
        dynamic, leakage = self.power_model.compute_arrays(
            activity_counts,
            cycles_elapsed,
            self._temperature_array,
            gated_mask,
            dynamic_scale,
            leakage_scale,
        )
        dt = self.config.thermal.interval_seconds * (
            cycles_elapsed / self.interval_cycles
        )
        return self._advance_and_record(
            dynamic, leakage, dt, cycle=cycle, seconds=seconds
        )

    def run(
        self,
        max_intervals: Optional[int] = None,
        warmup: bool = True,
    ) -> SimulationResult:
        """Run the benchmark to completion and return the full result."""
        result = SimulationResult(
            config_name=self.config.name,
            benchmark=self.benchmark,
            stats=self.processor.stats,
            block_names=list(self.block_parameters.keys()),
            block_groups=blocks.block_groups(self.config),
            block_areas_mm2=self.block_areas,
            ambient_celsius=self.config.thermal.ambient_celsius,
            provenance={"interval_cycles": self.interval_cycles},
        )
        interval_index = 0
        interval_seconds = self.config.thermal.interval_seconds
        dtm = self.dtm_policy is not None
        gated_streak = 0

        while not self.processor.finished:
            if max_intervals is not None and interval_index >= max_intervals:
                break
            if dtm and interval_index > 0 and self._apply_dtm(interval_index):
                # Fully clock-gated interval: wall-clock advances, the
                # processor does not.
                gated_streak += 1
                if gated_streak > self._MAX_GATED_STREAK:
                    raise RuntimeError(
                        f"DTM policy {self.dtm_policy.name!r} clock-gated "
                        f"{gated_streak} consecutive intervals; its trigger "
                        "temperature is unreachable by cooling"
                    )
                result.intervals.append(
                    self._gated_interval(
                        cycle=self.processor.cycle,
                        seconds=(interval_index + 1) * interval_seconds,
                    )
                )
                self.dtm_telemetry.record_interval(self.dtm_controls, gated=True)
                interval_index += 1
                continue
            gated_streak = 0
            start_cycle = self.processor.cycle
            self.processor.run_cycles(self.interval_cycles)
            cycles_elapsed = self.processor.cycle - start_cycle
            if cycles_elapsed == 0:
                break
            activity_counts = self.processor.activity.end_interval_array(
                self.block_index
            )

            if interval_index == 0 and warmup:
                self._warmup(activity_counts, cycles_elapsed)
                if dtm:
                    # Let the policy observe the warmed-up die before the
                    # first power/thermal step: under DTM the processor
                    # would have been managed throughout the warm-up
                    # history too, so interval 0's power already runs at
                    # the policy's operating point.  A whole-interval gate
                    # cannot apply here (the cycles already ran); the
                    # controls deny it and the policy re-decides next
                    # interval.
                    self._apply_dtm(0)

            dynamic_scale = leakage_scale = None
            if dtm:
                dynamic_scale, leakage_scale = self.dtm_controls.power_scales()

            result.intervals.append(
                self.interval_pipeline(
                    activity_counts,
                    cycles_elapsed,
                    cycle=self.processor.cycle,
                    seconds=(interval_index + 1) * interval_seconds,
                    dynamic_scale=dynamic_scale,
                    leakage_scale=leakage_scale,
                )
            )
            if dtm:
                # Interval 0's cycles ran before the policy could gate fetch
                # (it only observes the die after warm-up), so its duty and
                # frequency are charged at nominal.
                self.dtm_telemetry.record_interval(
                    self.dtm_controls,
                    gated=False,
                    fetch_actuated=interval_index > 0,
                )
            self._apply_bank_management(interval_index)
            interval_index += 1

        result.warmup_temperature = self.warmup_temperatures
        result.stats.trace_cache_hits = self.processor.trace_cache.hits
        result.stats.trace_cache_misses = self.processor.trace_cache.misses
        result.stats.trace_cache_hop_flushes = self.processor.trace_cache.hop_flushes
        if dtm:
            result.dtm = {
                "policy": self.dtm_policy.name,
                **self.dtm_telemetry.as_dict(),
            }
        return result


def run_benchmark(
    config: ProcessorConfig,
    uop_source: Iterable[MicroOp],
    benchmark: str = "synthetic",
    interval_cycles: Optional[int] = None,
    max_intervals: Optional[int] = None,
    warmup: bool = True,
    prewarm_caches: bool = True,
    dtm_policy: Optional[DTMPolicy] = None,
) -> SimulationResult:
    """Convenience wrapper: build an engine, run it, return the result."""
    engine = SimulationEngine(
        config,
        uop_source,
        benchmark,
        interval_cycles,
        prewarm_caches=prewarm_caches,
        dtm_policy=dtm_policy,
    )
    return engine.run(max_intervals=max_intervals, warmup=warmup)

"""Simulation engine: couples the timing model with power and temperature.

The engine advances the :class:`~repro.sim.processor.Processor` one thermal
interval at a time.  At the end of every interval it

1. drains the per-block activity counters and converts them to dynamic power,
2. evaluates the temperature-dependent leakage at the current temperatures,
3. advances the thermal RC network by the interval's wall-clock duration,
4. lets the bank-hopping controller rotate the gated trace-cache bank and the
   (balanced or thermal-aware) mapping policy rebuild the bank mapping table,
   exactly as the paper does every 10 M cycles.

Before measurement the processor is *warmed up*: the steady-state
temperatures for the nominal average power (first interval's activity) are
computed, iterating the leakage-temperature feedback until convergence or the
381 K emergency limit, mirroring Section 4 of the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence

from repro.core.bank_hopping import BankHoppingController
from repro.core.thermal_mapping import BalancedMappingPolicy, ThermalAwareMappingPolicy
from repro.isa.microops import MicroOp
from repro.power.energy import build_block_parameters
from repro.power.power_model import PowerModel
from repro.sim import blocks
from repro.sim.config import ProcessorConfig
from repro.sim.processor import Processor
from repro.sim.results import IntervalRecord, SimulationResult
from repro.thermal.floorplan import build_floorplan
from repro.thermal.rc_model import ThermalRCNetwork
from repro.thermal.sensors import SensorBank
from repro.thermal.solver import ThermalSolver


class SimulationEngine:
    """Runs one benchmark on one configuration, producing a SimulationResult."""

    def __init__(
        self,
        config: ProcessorConfig,
        uop_source: Iterable[MicroOp],
        benchmark: str = "synthetic",
        interval_cycles: Optional[int] = None,
        prewarm_caches: bool = True,
    ) -> None:
        self.config = config
        self.benchmark = benchmark
        self.interval_cycles = interval_cycles or config.thermal.interval_cycles
        if self.interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")

        uop_stream: Iterator[MicroOp]
        if isinstance(uop_source, Sequence):
            # A materialized trace: the engine can functionally pre-warm the
            # UL2 with the trace's footprint, as sampled-simulation
            # methodologies do, so the short measured slice is not dominated
            # by cold misses the paper's 200 M-instruction slices would have
            # amortized.
            uop_stream = iter(list(uop_source))
            self._prewarm_source: Optional[Sequence[MicroOp]] = uop_source
        else:
            uop_stream = iter(uop_source)
            self._prewarm_source = None
        self.processor = Processor(config, uop_stream)
        if prewarm_caches and self._prewarm_source is not None:
            self._prewarm_memory(self._prewarm_source)
        self.block_parameters = build_block_parameters(config)
        self.block_areas = {
            name: params.area_mm2 for name, params in self.block_parameters.items()
        }
        self.floorplan = build_floorplan(config, self.block_areas)
        self.network = ThermalRCNetwork(self.floorplan, config.thermal)
        self.solver = ThermalSolver(self.network)
        self.power_model = PowerModel(config.power, self.block_parameters)

        tc_config = config.frontend.trace_cache
        self._tc_bank_blocks = blocks.trace_cache_blocks(config)
        self.sensors = SensorBank(self._tc_bank_blocks)
        self.hopping: Optional[BankHoppingController] = None
        if tc_config.bank_hopping or tc_config.blank_silicon:
            static_gated = []
            if tc_config.blank_silicon:
                # Statically gate the extra (highest-numbered) banks.
                spare = tc_config.physical_banks - tc_config.active_banks
                static_gated = list(
                    range(tc_config.physical_banks - spare, tc_config.physical_banks)
                )
            self.hopping = BankHoppingController(
                physical_banks=tc_config.physical_banks,
                active_banks=tc_config.active_banks,
                hop_interval_cycles=tc_config.hop_interval_cycles,
                enabled=tc_config.bank_hopping,
                static_gated_banks=static_gated,
            )
            self.processor.trace_cache.set_enabled_banks(self.hopping.enabled_banks)
            self.processor.trace_cache.set_balanced_mapping()
        if tc_config.thermal_aware_mapping:
            self.mapping_policy = ThermalAwareMappingPolicy(
                tc_config.mapping_table_entries, tc_config.bias_threshold_celsius
            )
        else:
            self.mapping_policy = BalancedMappingPolicy(tc_config.mapping_table_entries)
        # Intervals between hops / remaps, expressed in thermal intervals.
        self._hop_every = max(1, round(tc_config.hop_interval_cycles / self.interval_cycles))
        self._remap_every = max(1, round(tc_config.remap_interval_cycles / self.interval_cycles))

        self._thermal_state = self.network.uniform_state(config.thermal.ambient_celsius)
        self._temperatures: Dict[str, float] = self.solver.block_temperatures(
            self._thermal_state
        )
        self.warmup_temperatures: Dict[str, float] = dict(self._temperatures)
        self.emergency_intervals = 0

    # ------------------------------------------------------------------
    def _prewarm_memory(self, trace: Sequence[MicroOp]) -> None:
        """Touch the trace's data footprint in the UL2 (functional warm-up).

        Only the UL2 is warmed: the small per-cluster L1 caches reach steady
        state within the measured slice, but the 2 MB UL2 would otherwise
        spend the whole short slice taking cold misses with the 500-cycle
        memory latency, which the paper's long traces do not suffer.
        """
        ul2 = self.processor.ul2
        for uop in trace:
            if uop.mem_addr is not None:
                ul2.access(uop.mem_addr)
        # The warm-up accesses are functional only; reset the statistics.
        ul2.hits = 0
        ul2.misses = 0

    def _gated_blocks(self) -> list:
        if self.hopping is None:
            return []
        return [
            blocks.trace_cache_bank_block(b) for b in self.hopping.gated_banks
        ]

    def _warmup(self, activity_counts: Dict[str, int], cycles: int) -> None:
        """Warm the processor to the steady state of its nominal power."""
        gated = self._gated_blocks()
        nominal = self.power_model.nominal_power(activity_counts, cycles, gated)

        def power_at(temperatures: Dict[str, float]) -> Dict[str, float]:
            dynamic = self.power_model.dynamic_power(activity_counts, cycles, gated)
            leakage = self.power_model.leakage_model.leakage_power(temperatures, gated)
            return {b: dynamic[b] + leakage[b] for b in dynamic}

        # ``nominal`` seeds the leakage model; the warm-up iteration then
        # couples leakage and temperature until convergence (or 381 K).
        del nominal
        state, temperatures = self.solver.warmup(
            power_at,
            emergency_limit_celsius=self.config.thermal.emergency_limit_celsius,
        )
        self._thermal_state = state
        self._temperatures = temperatures
        self.warmup_temperatures = dict(temperatures)

    def _apply_bank_management(self, interval_index: int) -> None:
        """Rotate the gated bank and rebuild the mapping table when due."""
        tc = self.processor.trace_cache
        tc_config = self.config.frontend.trace_cache
        hopped = False
        if (
            self.hopping is not None
            and self.hopping.enabled
            and (interval_index + 1) % self._hop_every == 0
        ):
            self.hopping.hop()
            tc.set_enabled_banks(self.hopping.enabled_banks)
            self.processor.stats.trace_cache_hop_flushes = tc.hop_flushes
            hopped = True
        remap_due = (interval_index + 1) % self._remap_every == 0
        if hopped or (remap_due and tc_config.thermal_aware_mapping):
            enabled = tc.enabled_banks()
            readings = self.sensors.read_all(self._temperatures)
            bank_temps = {
                bank: readings[blocks.trace_cache_bank_block(bank)] for bank in enabled
            }
            shares = self.mapping_policy.compute_shares(enabled, bank_temps)
            tc.set_mapping_shares(shares)

    # ------------------------------------------------------------------
    def run(
        self,
        max_intervals: Optional[int] = None,
        warmup: bool = True,
    ) -> SimulationResult:
        """Run the benchmark to completion and return the full result."""
        result = SimulationResult(
            config_name=self.config.name,
            benchmark=self.benchmark,
            stats=self.processor.stats,
            block_names=list(self.block_parameters.keys()),
            block_groups=blocks.block_groups(self.config),
            block_areas_mm2=self.block_areas,
            ambient_celsius=self.config.thermal.ambient_celsius,
            provenance={"interval_cycles": self.interval_cycles},
        )
        interval_index = 0
        emergency_limit = self.config.thermal.emergency_limit_celsius
        interval_seconds = self.config.thermal.interval_seconds

        while not self.processor.finished:
            if max_intervals is not None and interval_index >= max_intervals:
                break
            start_cycle = self.processor.cycle
            self.processor.run_cycles(self.interval_cycles)
            cycles_elapsed = self.processor.cycle - start_cycle
            if cycles_elapsed == 0:
                break
            activity_counts = self.processor.activity.end_interval()
            gated = self._gated_blocks()

            if interval_index == 0 and warmup:
                self._warmup(activity_counts, cycles_elapsed)

            breakdown = self.power_model.compute(
                activity_counts, cycles_elapsed, self._temperatures, gated
            )
            total_power = breakdown.per_block_total()
            dt = interval_seconds * (cycles_elapsed / self.interval_cycles)
            self._thermal_state = self.solver.advance(self._thermal_state, total_power, dt)
            self._temperatures = self.solver.block_temperatures(self._thermal_state)
            if max(self._temperatures.values()) >= emergency_limit:
                self.emergency_intervals += 1

            result.intervals.append(
                IntervalRecord(
                    cycle=self.processor.cycle,
                    seconds=(interval_index + 1) * interval_seconds,
                    dynamic_power=breakdown.dynamic,
                    leakage_power=breakdown.leakage,
                    temperature=dict(self._temperatures),
                )
            )
            self._apply_bank_management(interval_index)
            interval_index += 1

        result.warmup_temperature = self.warmup_temperatures
        result.stats.trace_cache_hits = self.processor.trace_cache.hits
        result.stats.trace_cache_misses = self.processor.trace_cache.misses
        result.stats.trace_cache_hop_flushes = self.processor.trace_cache.hop_flushes
        return result


def run_benchmark(
    config: ProcessorConfig,
    uop_source: Iterable[MicroOp],
    benchmark: str = "synthetic",
    interval_cycles: Optional[int] = None,
    max_intervals: Optional[int] = None,
    warmup: bool = True,
    prewarm_caches: bool = True,
) -> SimulationResult:
    """Convenience wrapper: build an engine, run it, return the result."""
    engine = SimulationEngine(
        config, uop_source, benchmark, interval_cycles, prewarm_caches=prewarm_caches
    )
    return engine.run(max_intervals=max_intervals, warmup=warmup)

"""Array-decoded fast path for the timing stage.

:class:`FastProcessor` is an alternative interpreter for the exact same
microarchitecture the per-uop :class:`~repro.sim.processor.Processor`
models.  Instead of walking ``MicroOp`` objects through object-per-unit
pipeline stages, it consumes a :class:`~repro.workloads.decode.DecodedWorkload`
(one up-front batch decode of the whole trace into dense arrays and
pre-segmented trace-cache lines) and advances time with three structural
shortcuts, none of which change any observable output:

* **flattened state** — uops in flight are plain lists of ints, a register
  reference is a single int ``(bank << reg_bits) | phys``, activity counters
  are a flat accumulator indexed by precomputed block ids;
* **event-driven wakeup** — instead of scanning every issue queue's entries
  each cycle, a queued uop is *parked* on its unproduced source registers
  (per-register waiter lists), moves to a global wake heap once every source
  has a known ready cycle, and is drained into its queue's age-ordered
  eligible list exactly when that cycle arrives;
* **quiet-cycle skip** — when a cycle performs no work (no fetch, rename,
  dispatch, issue, completion or commit), the next cycle at which anything
  *can* happen is computed from the heap/pipe/fetch heads and the clock jumps
  there, bumping the per-cycle stall counters by the number of skipped
  cycles.

The contract is strict: for any materialized workload and any configuration,
the fast path produces byte-identical :class:`~repro.sim.activity_trace.ActivityTrace`
serializations and equal :class:`~repro.sim.stats.SimulationStats` payloads
to the reference ``Processor``.  The per-uop path stays the golden reference;
the equivalence tests in ``tests/test_fast_timing_equivalence.py`` lock the
contract.  Stateful structures whose *evolution order* is observable (trace
cache, UL2, L1 data caches — all LRU) are reused from the reference
implementation rather than re-modeled, so their replacement behaviour cannot
drift.

What the fast path deliberately does **not** model are the reference's
write-only internals, proven unobservable in the emitted payloads: the
branch predictor's gshare tables (predictions never alter timing — only the
decode-time ``mispredicted`` flag does), the disambiguation buses, register
file port counters, and the steering/queue bookkeeping counters.
"""

from __future__ import annotations

import gc
from bisect import insort
from collections import deque
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.data_cache import L1DataCache
from repro.frontend.trace_cache import TraceCache
from repro.isa.microops import MicroOp
from repro.isa.registers import RegisterSpace
from repro.memory.ul2 import UnifiedL2Cache
from repro.sim import blocks, native
from repro.sim.config import ProcessorConfig, SteeringPolicy
from repro.sim.engine import TimingStage
from repro.sim.processor import Processor, SimulationDeadlockError
from repro.sim.stats import SimulationStats
from repro.workloads.decode import (
    CODE_COPY,
    CODE_LOAD,
    CODE_STORE,
    FP_CODES,
    UOP_CLASS_CODES,
    DecodedWorkload,
    decode_workload,
)

#: "Not yet produced" marker in the flat register ready array (any cycle
#: compares smaller).  Mirrors the reference register file's NOT_READY
#: sentinel.
_NOT_READY = 1 << 60

# Queue-entry record layout (plain lists: fastest mutable record in CPython).
# [0] class code          [5] prev mappings to free at commit (or None)
# [1] cluster             [6] completion cycle (-1 until written back)
# [2] frontend            [7] is_copy
# [3] dest reg ref or -1  [8] mem address (copies: destination cluster)
# [4] source reg refs     [9] base latency
# [10] is_store  [11] is_load  [12] unproduced-source count while parked
# [13] mispredicted br    [14] age sequence  [15] issue-queue index
#
# A register reference is the int ``(bank << reg_bits) | phys`` where
# ``bank = cluster * 2 + reg_class`` (0 = INT, 1 = FP).


class FastActivity:
    """Flat-accumulator drop-in for :class:`~repro.sim.activity_trace.ActivityCounters`.

    The fast core bumps ``acc[block_id]`` directly; the dict-shaped API
    (``record``/``interval_counts``/``total_counts``/``end_interval``) and the
    array drain (``end_interval_array``) behave exactly like the reference
    counters, including the duplicate-name and unknown-block errors.
    """

    __slots__ = ("_blocks", "_pos", "acc", "_totals", "_perm_cache")

    def __init__(self, block_names: Sequence[str]) -> None:
        self._blocks: Tuple[str, ...] = tuple(block_names)
        if len(set(self._blocks)) != len(self._blocks):
            raise ValueError("duplicate block names in activity counters")
        self._pos: Dict[str, int] = {n: i for i, n in enumerate(self._blocks)}
        self.acc: List[int] = [0] * len(self._blocks)
        self._totals: List[int] = [0] * len(self._blocks)
        self._perm_cache: Dict[Tuple[str, ...], List[int]] = {}

    @property
    def block_names(self) -> Tuple[str, ...]:
        return self._blocks

    def record(self, block: str, count: int = 1) -> None:
        pos = self._pos.get(block)
        if pos is None:
            raise KeyError(f"unknown block {block!r}")
        self.acc[pos] += count

    def interval_counts(self) -> Dict[str, int]:
        acc = self.acc
        return {name: acc[i] for i, name in enumerate(self._blocks)}

    def total_counts(self) -> Dict[str, int]:
        acc, totals = self.acc, self._totals
        return {name: totals[i] + acc[i] for i, name in enumerate(self._blocks)}

    def _flush(self) -> None:
        acc, totals = self.acc, self._totals
        for i, value in enumerate(acc):
            if value:
                totals[i] += value
                acc[i] = 0

    def end_interval(self) -> Dict[str, int]:
        snapshot = self.interval_counts()
        self._flush()
        return snapshot

    def end_interval_array(self, index=None) -> np.ndarray:
        if index is None:
            out = np.asarray(self.acc, dtype=np.int64)
            self._flush()
            return out
        names = tuple(index.names)
        perm = self._perm_cache.get(names)
        if perm is None:
            perm = [self._pos.get(name, -1) for name in names]
            self._perm_cache[names] = perm
        acc = self.acc
        out = np.asarray(
            [acc[p] if p >= 0 else 0 for p in perm], dtype=np.int64
        )
        self._flush()
        return out


class FastProcessor:
    """Interval-oriented interpreter over a batch-decoded workload.

    Exposes the slice of the reference :class:`~repro.sim.processor.Processor`
    surface the engines consume: ``config``, ``cycle``, ``stats``,
    ``activity``, ``trace_cache``, ``ul2``, ``finished``, ``run``,
    ``run_cycles`` and the fetch-gate controls.
    """

    _DEADLOCK_THRESHOLD = Processor._DEADLOCK_THRESHOLD
    _FRONTEND_BUFFER_LIMIT = Processor._FRONTEND_BUFFER_LIMIT

    def __init__(
        self,
        config: ProcessorConfig,
        uops: Sequence[MicroOp],
        register_space: Optional[RegisterSpace] = None,
        decoded: Optional[DecodedWorkload] = None,
    ) -> None:
        self.config = config
        self.registers = register_space or RegisterSpace()
        if decoded is None:
            decoded = decode_workload(uops, self.registers.num_int)
        self.decoded = decoded
        fe = config.frontend
        be = config.backend
        ic = config.interconnect

        self.cycle = 0
        self.stats = SimulationStats()
        self.activity = FastActivity(blocks.all_blocks(config))
        self.fetch_gate: Optional[Tuple[int, int]] = None
        n_clusters = be.num_clusters
        self._distributed = fe.is_distributed
        self._policy = config.steering_policy
        #: Delay from fetch to the first cycle an entry can be renamed.
        self._ready_offset = (
            fe.trace_cache.fetch_to_dispatch_latency
            + fe.decode_rename_steer_latency
            + 1
        )

        # Precomputed block-id tables (indexes into FastActivity.acc).
        # Computed before the interpreter state: the native backend marshals
        # them into the C core and skips the Python structures entirely.
        pos = self.activity._pos
        nf = fe.num_frontends
        self._ROB_B = [pos[blocks.rob_block(f, nf)] for f in range(nf)]
        self._FRONT_OF = [config.frontend_of_cluster(c) for c in range(n_clusters)]
        self._RAT_B = [
            pos[blocks.rat_block(self._FRONT_OF[c], nf)] for c in range(n_clusters)
        ]
        self._ITLB_B = pos[blocks.ITLB]
        self._DECO_B = pos[blocks.DECODER]
        self._BP_B = pos[blocks.BRANCH_PREDICTOR]
        self._UL2_B = pos[blocks.UL2]
        self._TC_B = [
            pos[blocks.trace_cache_bank_block(b)]
            for b in range(fe.trace_cache.physical_banks)
        ]
        cb = blocks.cluster_block
        self._DL1_B = [pos[cb(c, blocks.CLUSTER_DCACHE)] for c in range(n_clusters)]
        self._DTLB_B = [pos[cb(c, blocks.CLUSTER_DTLB)] for c in range(n_clusters)]
        self._IFU_B = [pos[cb(c, blocks.CLUSTER_INT_FU)] for c in range(n_clusters)]
        self._FPFU_B = [pos[cb(c, blocks.CLUSTER_FP_FU)] for c in range(n_clusters)]
        self._MOB_B = [pos[cb(c, blocks.CLUSTER_MOB)] for c in range(n_clusters)]
        # Register-file block id per bank (parallel to the flat reg layout).
        self._RFB_OF: List[int] = []
        for c in range(n_clusters):
            self._RFB_OF.append(pos[cb(c, blocks.CLUSTER_INT_RF)])
            self._RFB_OF.append(pos[cb(c, blocks.CLUSTER_FP_RF)])
        self._SCHED_B = [
            [
                pos[cb(c, blocks.CLUSTER_INT_SCHED)],
                pos[cb(c, blocks.CLUSTER_FP_SCHED)],
                pos[cb(c, blocks.CLUSTER_MOB)],
                pos[cb(c, blocks.CLUSTER_COPY_SCHED)],
            ]
            for c in range(n_clusters)
        ]
        self._SCHED_FLAT = [
            self._SCHED_B[c][k] for c in range(n_clusters) for k in range(4)
        ]
        n_codes = len(UOP_CLASS_CODES)
        self._QSEL = [
            3 if code == CODE_COPY
            else 2 if code in (CODE_LOAD, CODE_STORE)
            else 1 if code in FP_CODES
            else 0
            for code in range(n_codes)
        ]
        self._FU_B = [
            [
                self._FPFU_B[c] if code in FP_CODES else self._IFU_B[c]
                for code in range(n_codes)
            ]
            for c in range(n_clusters)
        ]

        # Optional compiled core: same algorithm, same outputs, built at
        # runtime from _native_core.c when a C compiler is available (see
        # repro.sim.native).  The Python loop below stays as the fallback
        # and serves the configurations the native core excludes.
        self._native = native.try_create_backend(self)
        if self._native is not None:
            self.trace_cache = self._native.trace_cache
            self.ul2 = self._native.ul2
            return

        # Stateful memory structures shared with the reference implementation
        # (their LRU evolution is observable through hit/miss counts).
        self.trace_cache = TraceCache(fe.trace_cache, config.memory.ul2_hit_latency)
        self.ul2 = UnifiedL2Cache(config.memory)
        self._dcaches = [
            L1DataCache(
                be.dcache_kb,
                be.dcache_associativity,
                be.dcache_line_bytes,
                be.dcache_hit_latency,
            )
            for _ in range(n_clusters)
        ]
        self._dcache_hit_latency = be.dcache_hit_latency
        self._bus_free = [0] * ic.num_memory_buses
        self._bus_arb = ic.bus_arbitration_latency
        self._bus_xfer = ic.bus_latency
        self._p2p_free = [0] * ic.num_p2p_links
        self._p2p_hop = ic.p2p_hop_latency

        # Register files, flattened: one ready array across all banks where
        # ``bank = cluster * 2 + reg_class``.  Waiter lists hold parked queue
        # entries per physical register; free lists are per-bank deques.
        reg_bits = (max(be.int_registers, be.fp_registers) - 1).bit_length()
        self._reg_bits = reg_bits
        n_banks = 2 * n_clusters
        span = n_banks << reg_bits
        self._ready_flat: List[int] = [0] * span
        self._wait_flat: List[list] = [[] for _ in range(span)]
        self._free_tab = [
            deque(range(be.int_registers if b & 1 == 0 else be.fp_registers))
            for b in range(n_banks)
        ]

        # Rename table: per flat architectural register, one physical
        # register reference per cluster (-1 = no mapping).
        self._maptab: List[List[int]] = [
            [-1] * n_clusters for _ in range(self.registers.total)
        ]

        # Issue scheduling is event-driven.  A queued uop is in exactly one
        # of three states: *parked* (some source not yet produced; it sits in
        # those registers' waiter lists with rec[12] counting them),
        # *pending* in the global wake heap (all sources produced, ready at
        # a known future cycle), or *eligible* (ready now, ordered by age in
        # its queue's eligible list).  Queues (0 int / 1 fp / 2 mem /
        # 3 copy) exist only as occupancy counters plus eligible lists.
        self._eligible: List[list] = [[] for _ in range(4 * n_clusters)]
        self._qcount = [0] * (4 * n_clusters)
        self._active_mask = 0
        self._wakeq: List[Tuple[int, int, list]] = []
        self._arrival_seq = 0
        self._queue_caps = (
            be.int_queue_entries,
            be.fp_queue_entries,
            be.mem_queue_entries,
            be.copy_queue_entries,
        )
        self._pipes = [deque() for _ in range(n_clusters)]
        self._in_flight = [0] * n_clusters
        self._mob_occ = [0] * n_clusters
        self._mob_cap = be.mem_queue_entries

        # Completion events, bucketed by cycle: recs append in issue order
        # (the reference's writeback tie-break) and a small heap of distinct
        # completion cycles drives the drain and the quiet-cycle skip.
        self._comp_buckets: Dict[int, List[list]] = {}
        self._comp_heap: List[int] = []
        if self._distributed:
            self._partitions = [deque() for _ in range(fe.num_frontends)]
            self._head_frontend: Optional[int] = None
            self._last_allocated: Optional[list] = None
            self._commit_lag = max(1, fe.distributed_commit_extra_latency)
        else:
            self._rob = deque()
            self._commit_lag = 1

        # Fetch state over pre-segmented trace lines.
        self._lines = decoded.lines(fe.trace_cache.line_uops, fe.fetch_width)
        self._line_idx = 0
        self._lbpos = 0
        self._lbend = 0
        self._exhausted = False
        self._stall_until = 0
        self._waiting = False
        self._pending: Optional[list] = None
        self._fq: deque = deque()
        self._live = 0
        self._last_commit = 0
        self._rr_pointer = 0

    # ------------------------------------------------------------------
    # Reference-compatible control surface
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        if self._native is not None:
            return self._native.finished
        return self._exhausted and self._lbpos >= self._lbend and self._live == 0

    @property
    def uses_native_core(self) -> bool:
        """Whether this processor runs on the compiled core (vs the Python loop)."""
        return self._native is not None

    def prewarm_ul2(self, addresses: Optional[Sequence[int]] = None) -> None:
        """Functionally warm the UL2 with the workload's data footprint.

        Touches every memory address (the decoded workload's by default),
        then resets the UL2 hit/miss counters — the warm-up is functional
        only.  The engine calls this instead of its generic per-uop loop.
        """
        if addresses is None:
            addresses = [a for a in self.decoded.mem_addr_list if a >= 0]
        if self._native is not None:
            self._native.warm_ul2(addresses)
            return
        access = self.ul2.access
        for address in addresses:
            access(address)
        self.ul2.hits = 0
        self.ul2.misses = 0

    def set_fetch_gate(self, on_cycles: int, period: int) -> None:
        if period <= 0 or not 1 <= on_cycles <= period:
            raise ValueError("fetch gate needs 1 <= on_cycles <= period")
        self.fetch_gate = (on_cycles, period) if on_cycles < period else None

    def clear_fetch_gate(self) -> None:
        self.fetch_gate = None

    def run_cycles(self, cycles: int) -> bool:
        self._run_to(self.cycle + cycles)
        return self.finished

    def run(self, max_cycles: Optional[int] = None) -> int:
        while not self.finished:
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            self._run_to(
                max_cycles if max_cycles is not None else self.cycle + 1_000_000
            )
        return self.cycle

    # ------------------------------------------------------------------
    # The interpreter
    # ------------------------------------------------------------------
    def _run_to(self, target: int) -> None:  # noqa: C901 - deliberately flat
        if self._native is not None:
            self._native.run_to(target)
            return
        # Hot state lives in locals; the finally block writes it back so the
        # object is consistent even if the deadlock guard raises.
        cycle = self.cycle
        acc = self.activity.acc
        d = self.decoded
        cls_l = d.cls_list
        lat_l = d.latency_list
        addr_l = d.mem_addr_list
        isbr_l = d.is_branch_list
        mp_l = d.mispredicted_list
        dest_l = d.dest_flat_list
        destfp_l = d.dest_is_fp_list
        srcs_l = d.src_flats_list
        ineed_l = d.int_needed_list
        fneed_l = d.fp_needed_list

        maptab = self._maptab
        caps = self._queue_caps
        pipes = self._pipes
        in_flight = self._in_flight
        mob_occ = self._mob_occ
        mob_cap = self._mob_cap
        ready_flat = self._ready_flat
        wait_flat = self._wait_flat
        free_tab = self._free_tab
        reg_bits = self._reg_bits
        reg_mask = (1 << reg_bits) - 1
        eligible = self._eligible
        qcount = self._qcount
        active_mask = self._active_mask
        wakeq = self._wakeq
        aseq = self._arrival_seq
        comp_buckets = self._comp_buckets
        comp_heap = self._comp_heap
        fq = self._fq
        lines = self._lines
        n_lines = len(lines)
        line_idx = self._line_idx
        lbpos = self._lbpos
        lbend = self._lbend
        exhausted = self._exhausted
        stall_until = self._stall_until
        waiting = self._waiting
        pending = self._pending
        live = self._live
        last_commit = self._last_commit
        rr = self._rr_pointer
        distributed = self._distributed
        if distributed:
            partitions = self._partitions
            head_f = self._head_frontend
            last_alloc = self._last_allocated
            rob_cap = self.config.frontend.rob_entries_per_frontend
        else:
            rob = self._rob
            rob_cap = self.config.frontend.rob_entries
        commit_lag = self._commit_lag

        fe = self.config.frontend
        n_clusters = self.config.backend.num_clusters
        cluster_range = range(n_clusters)
        fwidth = fe.fetch_width
        dwidth = fe.dispatch_width
        cwidth = fe.commit_width
        iwidth = self.config.backend.issue_width_per_queue
        displat = self.config.backend.dispatch_latency
        presched_cap = self.config.backend.prescheduler_entries * 4
        mp_penalty = fe.misprediction_penalty
        fbuf = self._FRONTEND_BUFFER_LIMIT
        deadlock_after = self._DEADLOCK_THRESHOLD
        ready_off = self._ready_offset
        ul2_hit = self.config.memory.ul2_hit_latency
        dc_hit = self._dcache_hit_latency
        bus_free = self._bus_free
        bus_arb = self._bus_arb
        bus_xfer = self._bus_xfer
        n_buses = len(bus_free)
        p2p_free = self._p2p_free
        p2p_hop = self._p2p_hop
        n_links = len(p2p_free)
        policy = self._policy
        dep_policy = policy is SteeringPolicy.DEPENDENCE
        rr_policy = policy is SteeringPolicy.ROUND_ROBIN
        num_int = self.registers.num_int

        ROB_B = self._ROB_B
        RAT_B = self._RAT_B
        FRONT_OF = self._FRONT_OF
        ITLB_B = self._ITLB_B
        DECO_B = self._DECO_B
        BP_B = self._BP_B
        UL2_B = self._UL2_B
        TC_B = self._TC_B
        DL1_B = self._DL1_B
        DTLB_B = self._DTLB_B
        IFU_B = self._IFU_B
        MOB_B = self._MOB_B
        RFB_OF = self._RFB_OF
        SCHED_FLAT = self._SCHED_FLAT
        QSEL = self._QSEL
        FU_B = self._FU_B
        tc_access = self.trace_cache.access
        ul2_access = self.ul2.access
        dc_access = [dc.access for dc in self._dcaches]
        disp = self.stats.dispatched_per_cluster

        # Per-call stats deltas (flushed in the finally block).
        s_fetched = s_committed = s_ccopies = s_copyg = s_copyreq = 0
        s_branches = s_mispred = 0
        s_dhits = s_dmiss = s_ul2h = s_ul2m = 0
        s_rstall = s_robstall = s_fstall = 0
        disp_l = [0] * n_clusters

        # The loop allocates steadily (records, heap entries) but almost
        # nothing becomes garbage mid-interval; pausing the cyclic collector
        # avoids pointless gen-0 sweeps over the live simulation state.
        gc_on = gc.isenabled()
        if gc_on:
            gc.disable()
        try:
            while cycle < target:
                if exhausted and lbpos >= lbend and live == 0:
                    break
                busy = False
                stall_kind = 0

                # ---- commit -------------------------------------------------
                committed = 0
                if distributed:
                    while head_f is not None and committed < cwidth:
                        part = partitions[head_f]
                        if not part:
                            break
                        entry = part[0]
                        rec = entry[0]
                        comp = rec[6]
                        if comp < 0 or comp + commit_lag > cycle:
                            break
                        part.popleft()
                        committed += 1
                        acc[ROB_B[rec[2]]] += 1
                        prev = rec[5]
                        if prev:
                            # No ready-array reset needed: in-order commit
                            # means every consumer of a displaced mapping is
                            # older than this committing uop, so the freed
                            # ref has no live readers; realloc re-marks it.
                            for r in prev:
                                free_tab[r >> reg_bits].append(r & reg_mask)
                        cl = rec[1]
                        in_flight[cl] -= 1
                        s_committed += 1
                        live -= 1
                        if rec[10]:  # store
                            for c in cluster_range:
                                mob_occ[c] -= 1
                            dc_access[cl](rec[8], True)
                            acc[DL1_B[cl]] += 1
                        elif rec[11]:  # load
                            mob_occ[cl] -= 1
                        nxt = entry[1]
                        if nxt is None:
                            if entry is last_alloc:
                                last_alloc = None
                            head_f = None
                            break
                        head_f = nxt
                else:
                    while rob and committed < cwidth:
                        rec = rob[0]
                        comp = rec[6]
                        if comp < 0 or comp + commit_lag > cycle:
                            break
                        rob.popleft()
                        committed += 1
                        acc[ROB_B[rec[2]]] += 1
                        prev = rec[5]
                        if prev:
                            # No ready-array reset needed: in-order commit
                            # means every consumer of a displaced mapping is
                            # older than this committing uop, so the freed
                            # ref has no live readers; realloc re-marks it.
                            for r in prev:
                                free_tab[r >> reg_bits].append(r & reg_mask)
                        cl = rec[1]
                        in_flight[cl] -= 1
                        s_committed += 1
                        live -= 1
                        if rec[10]:
                            for c in cluster_range:
                                mob_occ[c] -= 1
                            dc_access[cl](rec[8], True)
                            acc[DL1_B[cl]] += 1
                        elif rec[11]:
                            mob_occ[cl] -= 1
                if committed:
                    last_commit = cycle
                    busy = True

                # ---- complete (writeback) ----------------------------------
                while comp_heap and comp_heap[0] <= cycle:
                    comp = heappop(comp_heap)
                    busy = True
                    for rec in comp_buckets.pop(comp):
                        rec[6] = comp
                        dr = rec[3]
                        if dr >= 0:
                            acc[RFB_OF[dr >> reg_bits]] += 1
                        if rec[7]:  # copy retires at completion
                            in_flight[rec[1]] -= 1
                            s_ccopies += 1
                            live -= 1
                        if rec[13] and pending is rec:
                            resume = comp + mp_penalty
                            if resume > stall_until:
                                stall_until = resume
                            waiting = False
                            pending = None

                # ---- issue + execute ---------------------------------------
                # Event-driven: drain newly-ready uops from the wake heap
                # into their queue's age-ordered eligible list, then issue
                # from the active queues in cluster/queue order — the
                # reference's scan order, which fixes the access order on
                # every shared structure (UL2, buses, links, the completion
                # heap's tie-break sequence).
                while wakeq and wakeq[0][0] <= cycle:
                    ent = heappop(wakeq)
                    rec = ent[2]
                    qi = rec[15]
                    insort(eligible[qi], (ent[1], rec))
                    active_mask |= 1 << qi
                if active_mask:
                    mask = active_mask
                    while mask:
                        low = mask & -mask
                        mask -= low
                        qi = low.bit_length() - 1
                        el = eligible[qi]
                        cl = qi >> 2
                        width = iwidth
                        while el and width:
                            rec = el.pop(0)[1]
                            width -= 1
                            qcount[qi] -= 1
                            busy = True
                            acc[SCHED_FLAT[qi]] += 1
                            for r in rec[4]:
                                acc[RFB_OF[r >> reg_bits]] += 1
                            if rec[7]:  # copy: point-to-point transfer
                                dcl = rec[8]
                                hops = cl - dcl
                                if hops < 0:
                                    hops = -hops
                                if hops > 2:
                                    hops = 2
                                if hops == 0:
                                    lat = 1
                                else:
                                    start0 = cycle + 1
                                    li = 0
                                    lg = p2p_free[0]
                                    for l2 in range(1, n_links):
                                        if p2p_free[l2] < lg:
                                            lg = p2p_free[l2]
                                            li = l2
                                    start = start0 if start0 > lg else lg
                                    finish = start + hops * p2p_hop
                                    p2p_free[li] = start + p2p_hop
                                    lat = finish - cycle
                                    if lat < 1:
                                        lat = 1
                            elif rec[11]:  # load
                                acc[DTLB_B[cl]] += 1
                                acc[DL1_B[cl]] += 1
                                acc[IFU_B[cl]] += 1
                                if dc_access[cl](rec[8]):
                                    s_dhits += 1
                                    lat = dc_hit
                                else:
                                    s_dmiss += 1
                                    grant0 = cycle + bus_arb
                                    bi = 0
                                    bg = bus_free[0]
                                    if bg < grant0:
                                        bg = grant0
                                    for b2 in range(1, n_buses):
                                        g2 = bus_free[b2]
                                        if g2 < grant0:
                                            g2 = grant0
                                        if g2 < bg:
                                            bg = g2
                                            bi = b2
                                    finish = bg + bus_xfer
                                    bus_free[bi] = finish
                                    ul2_lat = ul2_access(rec[8])
                                    if ul2_lat > ul2_hit:
                                        s_ul2m += 1
                                    else:
                                        s_ul2h += 1
                                    acc[UL2_B] += 1
                                    lat = (finish - cycle) + ul2_lat + dc_hit
                            elif rec[10]:  # store: address generation only
                                acc[DTLB_B[cl]] += 1
                                acc[IFU_B[cl]] += 1
                                for mb in MOB_B:
                                    acc[mb] += 1
                                lat = 1
                            else:
                                acc[FU_B[cl][rec[0]]] += 1
                                lat = rec[9]
                            if lat < 1:
                                lat = 1
                            comp = cycle + lat
                            dr = rec[3]
                            if dr >= 0:
                                ready_flat[dr] = comp
                                wl = wait_flat[dr]
                                if wl:
                                    # Wake parked consumers; once the last
                                    # source is produced the max ready cycle
                                    # is known (> cycle, since this result
                                    # lands at comp).
                                    for r2 in wl:
                                        n2 = r2[12] - 1
                                        r2[12] = n2
                                        if not n2:
                                            m2 = 0
                                            for sr2 in r2[4]:
                                                v2 = ready_flat[sr2]
                                                if v2 > m2:
                                                    m2 = v2
                                            heappush(wakeq, (m2, r2[14], r2))
                                    del wl[:]
                            bkt = comp_buckets.get(comp)
                            if bkt is None:
                                comp_buckets[comp] = [rec]
                                heappush(comp_heap, comp)
                            else:
                                bkt.append(rec)
                        if not el:
                            active_mask &= ~low

                # ---- dispatch arrival --------------------------------------
                for cl in cluster_range:
                    pipe = pipes[cl]
                    while pipe:
                        rec = pipe[0]
                        # Slot 14 holds the dispatch-arrival cycle until the
                        # pop below, after which it becomes the age sequence.
                        if rec[14] > cycle:
                            break
                        k = QSEL[rec[0]]
                        qi = cl * 4 + k
                        if qcount[qi] >= caps[k]:
                            break
                        pipe.popleft()
                        qcount[qi] += 1
                        acc[SCHED_FLAT[qi]] += 1
                        busy = True
                        nun = 0
                        m = 0
                        for r in rec[4]:
                            v = ready_flat[r]
                            if v >= _NOT_READY:
                                wait_flat[r].append(rec)
                                nun += 1
                            elif v > m:
                                m = v
                        sq = aseq
                        aseq += 1
                        rec[14] = sq
                        rec[15] = qi
                        if nun:
                            rec[12] = nun
                        elif m > cycle:
                            heappush(wakeq, (m, sq, rec))
                        else:
                            insort(eligible[qi], (sq, rec))
                            active_mask |= 1 << qi

                # ---- rename / steer / dispatch -----------------------------
                arrival = cycle + displat
                renamed = 0
                while fq and renamed < dwidth:
                    head = fq[0]
                    if head[0] > cycle:
                        break
                    idx = head[1]
                    srcs = srcs_l[idx]
                    # Steering decision (made before resource checks, and
                    # repeated every retry cycle — the round-robin pointer
                    # advances on stalled retries exactly like the reference).
                    if dep_policy:
                        if not srcs:
                            # Zero sources: score reduces to -load, whose
                            # first-minimum is the same cluster the general
                            # scan would pick (equal score implies equal
                            # load, so the tie-break never switches).
                            cl = 0
                            best_load = in_flight[0]
                            for c in range(1, n_clusters):
                                if in_flight[c] < best_load:
                                    cl = c
                                    best_load = in_flight[c]
                        elif len(srcs) == 1:
                            row0 = maptab[srcs[0]]
                            best = 0
                            best_score = -(1 << 40)
                            for c in cluster_range:
                                load = in_flight[c]
                                score = (24 - load) if row0[c] >= 0 else -load
                                if score > best_score or (
                                    score == best_score
                                    and load < in_flight[best]
                                ):
                                    best_score = score
                                    best = c
                            cl = best
                        else:
                            rows = [maptab[flat] for flat in srcs]
                            best = 0
                            best_score = -(1 << 40)
                            for c in cluster_range:
                                locality = 0
                                for row0 in rows:
                                    if row0[c] >= 0:
                                        locality += 1
                                load = in_flight[c]
                                score = locality * 24 - load
                                if score > best_score or (
                                    score == best_score
                                    and load < in_flight[best]
                                ):
                                    best_score = score
                                    best = c
                            cl = best
                    elif rr_policy:
                        cl = rr
                        rr += 1
                        if rr >= n_clusters:
                            rr = 0
                    else:  # least-loaded
                        cl = 0
                        best_load = in_flight[0]
                        for c in range(1, n_clusters):
                            if in_flight[c] < best_load:
                                cl = c
                                best_load = in_flight[c]
                    f = FRONT_OF[cl]
                    # Resource stalls: first failing check counts and blocks.
                    if distributed:
                        rob_ok = len(partitions[f]) < rob_cap
                    else:
                        rob_ok = len(rob) < rob_cap
                    if not rob_ok:
                        s_robstall += 1
                        stall_kind = 1
                        break
                    b_int = cl * 2
                    ineed = ineed_l[idx]
                    fneed = fneed_l[idx]
                    if (
                        len(free_tab[b_int]) < ineed
                        or len(free_tab[b_int + 1]) < fneed
                    ):
                        s_rstall += 1
                        stall_kind = 2
                        break
                    if len(pipes[cl]) >= presched_cap:
                        s_rstall += 1
                        stall_kind = 2
                        break
                    code = cls_l[idx]
                    is_store = code == CODE_STORE
                    is_load = code == CODE_LOAD
                    if is_store:
                        mob_ok = True
                        for c in cluster_range:
                            if mob_occ[c] >= mob_cap:
                                mob_ok = False
                                break
                        if not mob_ok:
                            s_rstall += 1
                            stall_kind = 2
                            break
                    elif is_load and mob_occ[cl] >= mob_cap:
                        s_rstall += 1
                        stall_kind = 2
                        break

                    fq.popleft()
                    dfl = dest_l[idx]
                    # Every operand (sources + dest) is exactly one register.
                    acc[DECO_B] += ineed + fneed
                    src_refs: list = []
                    copies = None
                    rat_cl = RAT_B[cl]
                    for flat in srcs:
                        row = maptab[flat]
                        acc[rat_cl] += 1
                        local = row[cl]
                        if local >= 0:
                            src_refs.append(local)
                            continue
                        holders = [c for c in cluster_range if row[c] >= 0]
                        if not holders:
                            continue
                        # Prefer a holder on the consumer's frontend, then
                        # the one closest to the destination cluster.
                        same = [c for c in holders if FRONT_OF[c] == f]
                        cands = same if same else holders
                        scl = cands[0]
                        best_d = scl - cl
                        if best_d < 0:
                            best_d = -best_d
                        for c in cands[1:]:
                            d2 = c - cl
                            if d2 < 0:
                                d2 = -d2
                            if d2 < best_d:
                                scl = c
                                best_d = d2
                        src_ref = row[scl]
                        kk = 1 if flat >= num_int else 0
                        b = cl * 2 + kk
                        fd = free_tab[b]
                        phys = fd.popleft()
                        new_ref = (b << reg_bits) | phys
                        ready_flat[new_ref] = _NOT_READY
                        row[cl] = new_ref
                        acc[RAT_B[scl]] += 1
                        acc[rat_cl] += 1
                        src_f = FRONT_OF[scl]
                        crec = [
                            CODE_COPY, scl, src_f, new_ref, (src_ref,), None,
                            -1, True, cl, 1, False, False, 0, False, 0, 0,
                        ]
                        if copies is None:
                            copies = [crec]
                        else:
                            copies.append(crec)
                        src_refs.append(new_ref)
                        s_copyg += 1
                        if src_f != f:
                            s_copyreq += 1
                        live += 1
                    if dfl >= 0:
                        kk = 1 if destfp_l[idx] else 0
                        b = cl * 2 + kk
                        fd = free_tab[b]
                        phys = fd.popleft()
                        dref = (b << reg_bits) | phys
                        ready_flat[dref] = _NOT_READY
                        row = maptab[dfl]
                        prev = [r for r in row if r >= 0]
                        new_row = [-1] * n_clusters
                        new_row[cl] = dref
                        maptab[dfl] = new_row
                        acc[rat_cl] += 1
                    else:
                        dref = -1
                        prev = None
                    mpb = isbr_l[idx] and mp_l[idx]
                    rec = [
                        code, cl, f, dref, tuple(src_refs), prev, -1, False,
                        addr_l[idx], lat_l[idx], is_store, is_load, 0, mpb,
                        arrival, 0,
                    ]
                    if distributed:
                        entry = [rec, None]
                        partitions[f].append(entry)
                        if last_alloc is not None:
                            last_alloc[1] = f
                        if head_f is None:
                            head_f = f
                        last_alloc = entry
                    else:
                        rob.append(rec)
                    acc[ROB_B[f]] += 1
                    if is_store:
                        for c in cluster_range:
                            mob_occ[c] += 1
                            acc[MOB_B[c]] += 1
                    elif is_load:
                        mob_occ[cl] += 1
                        acc[MOB_B[cl]] += 1
                    pipes[cl].append(rec)
                    in_flight[cl] += 1
                    disp_l[cl] += 1
                    if mpb and pending is None:
                        pending = rec
                    if copies is not None:
                        for crec in copies:
                            crec[14] = arrival + (1 if crec[2] != f else 0)
                            pipes[crec[1]].append(crec)
                            in_flight[crec[1]] += 1
                    renamed += 1
                if renamed:
                    busy = True

                # ---- fetch -------------------------------------------------
                gate = self.fetch_gate
                if gate is not None and (cycle % gate[1]) >= gate[0]:
                    s_fstall += 1
                elif len(fq) < fbuf:
                    if waiting or cycle < stall_until:
                        s_fstall += 1
                    else:
                        fetched = 0
                        while fetched < fwidth:
                            if lbpos >= lbend:
                                if line_idx >= n_lines:
                                    if not exhausted:
                                        exhausted = True
                                        busy = True
                                    break
                                line = lines[line_idx]
                                line_idx += 1
                                result = tc_access(line[2])
                                acc[TC_B[result.bank]] += line[3]
                                acc[ITLB_B] += 1
                                if not result.hit:
                                    acc[UL2_B] += 1
                                    acc[TC_B[result.bank]] += 1
                                    resume = cycle + result.latency
                                    if resume > stall_until:
                                        stall_until = resume
                                if line[4]:
                                    exhausted = True
                                lbpos = line[0]
                                lbend = line[1]
                                busy = True
                                if cycle < stall_until:
                                    break
                            idx = lbpos
                            lbpos += 1
                            fetched += 1
                            s_fetched += 1
                            acc[DECO_B] += 1
                            fq.append((cycle + ready_off, idx))
                            live += 1
                            if isbr_l[idx]:
                                s_branches += 1
                                acc[BP_B] += 1
                                if mp_l[idx]:
                                    s_mispred += 1
                                    waiting = True
                                    break
                        if fetched:
                            busy = True

                old_cycle = cycle
                cycle += 1

                # ---- deadlock guard ----------------------------------------
                if old_cycle - last_commit > deadlock_after and not (
                    exhausted and lbpos >= lbend and live == 0
                ):
                    if distributed:
                        occupancy = sum(len(p) for p in partitions)
                    else:
                        occupancy = len(rob)
                    rq = 0
                    limit = old_cycle + 1
                    for r0, _ in fq:
                        if r0 <= limit:
                            rq += 1
                            if rq >= fbuf:
                                break
                    raise SimulationDeadlockError(
                        f"no commit for {old_cycle - last_commit} cycles at "
                        f"cycle {old_cycle}; ROB occupancy {occupancy}, "
                        f"rename queue {rq}"
                    )

                # ---- quiet-cycle skip --------------------------------------
                if busy or gate is not None or (rr_policy and stall_kind):
                    continue
                t_next = target
                t = last_commit + deadlock_after + 1
                if cycle <= t < t_next:
                    t_next = t
                if comp_heap:
                    t = comp_heap[0]
                    if cycle <= t < t_next:
                        t_next = t
                if distributed:
                    if head_f is not None:
                        part = partitions[head_f]
                        if part:
                            comp = part[0][0][6]
                            if comp >= 0:
                                t = comp + commit_lag
                                if cycle <= t < t_next:
                                    t_next = t
                elif rob:
                    comp = rob[0][6]
                    if comp >= 0:
                        t = comp + commit_lag
                        if cycle <= t < t_next:
                            t_next = t
                for pipe in pipes:
                    if pipe:
                        t = pipe[0][14]
                        if cycle <= t < t_next:
                            t_next = t
                if fq:
                    t = fq[0][0]
                    if cycle <= t < t_next:
                        t_next = t
                fq_open = len(fq) < fbuf
                if fq_open and not waiting and cycle <= stall_until < t_next:
                    t_next = stall_until
                # Queue wakeups: in a quiet stretch no uop issues, so parked
                # uops stay parked and the wake heap's head is the only cycle
                # at which any queue can turn eligible (eligible uops would
                # have issued this cycle, making it busy).
                if wakeq:
                    t = wakeq[0][0]
                    if cycle <= t < t_next:
                        t_next = t
                skipped = t_next - cycle
                if skipped > 0:
                    if stall_kind == 1:
                        s_robstall += skipped
                    elif stall_kind == 2:
                        s_rstall += skipped
                    if fq_open and (waiting or cycle < stall_until):
                        s_fstall += skipped
                    cycle = t_next
        finally:
            if gc_on:
                gc.enable()
            self.cycle = cycle
            self._active_mask = active_mask
            self._arrival_seq = aseq
            self._line_idx = line_idx
            self._lbpos = lbpos
            self._lbend = lbend
            self._exhausted = exhausted
            self._stall_until = stall_until
            self._waiting = waiting
            self._pending = pending
            self._live = live
            self._last_commit = last_commit
            self._rr_pointer = rr
            if distributed:
                self._head_frontend = head_f
                self._last_allocated = last_alloc
            st = self.stats
            st.cycles = cycle
            st.fetched_uops += s_fetched
            st.committed_uops += s_committed
            st.committed_copies += s_ccopies
            st.copy_uops_generated += s_copyg
            st.copy_requests_between_frontends += s_copyreq
            st.branches += s_branches
            st.mispredicted_branches += s_mispred
            st.dcache_hits += s_dhits
            st.dcache_misses += s_dmiss
            st.ul2_hits += s_ul2h
            st.ul2_misses += s_ul2m
            st.rename_stall_cycles += s_rstall
            st.rob_full_stall_cycles += s_robstall
            st.fetch_stall_cycles += s_fstall
            for c in cluster_range:
                if disp_l[c]:
                    disp[c] = disp.get(c, 0) + disp_l[c]
            st.trace_cache_hits = self.trace_cache.hits
            st.trace_cache_misses = self.trace_cache.misses


class FastTimingStage(TimingStage):
    """:class:`~repro.sim.engine.TimingStage` running a :class:`FastProcessor`.

    Only constructible over a *materialized* uop source: the batch decode
    needs the whole workload up front.  Streaming sources must use the
    reference stage (the engine's ``timing_mode="auto"`` does this
    automatically).
    """

    def _build_processor(
        self,
        config: ProcessorConfig,
        uop_stream: Iterable[MicroOp],
        materialized: Optional[Sequence[MicroOp]],
    ):
        if materialized is None:
            raise ValueError(
                "FastTimingStage needs a materialized uop sequence; "
                "streaming sources must use the reference TimingStage"
            )
        return FastProcessor(config, materialized)

"""Batched group replay: solve whole physics sweeps per interval, not per cell.

After the two-stage split, a campaign's physics sweep replays N cells over
one shared :class:`~repro.sim.activity_trace.ActivityTrace` — and
:meth:`~repro.sim.engine.PhysicsStage.replay` walks each cell's interval
chain *alone*: one scalar leakage loop and one single-RHS thermal solve per
cell per interval, plus a full floorplan/RC-network/LU construction per
cell.  This module batches the sweep instead:

* cells of one timing-key replay group are **sub-grouped by thermal key**
  (the ``thermal`` config section plus the block areas — identical key means
  identical floorplan, RC network and factorization, so one
  :class:`~repro.thermal.solver.ThermalSolver` serves the whole sub-group);
* each sub-group's dynamic power is stacked into a ``(cells x intervals x
  blocks)`` tensor in one vectorized pass per cell;
* the interval chain advances **all cells of a sub-group at once**: leakage
  via the :func:`~repro.power.leakage.batched_leakage_kernel` ``np.exp``
  kernel over the ``(cells x blocks)`` temperature matrix, then one
  multi-RHS :meth:`~repro.thermal.solver.ThermalSolver.advance_nodes_batch`
  solve per interval for the entire sub-group.

The knob is ``replay_mode`` (same discipline as ``backend=`` /
``timing_mode=``):

* ``"exact"`` — the per-cell :meth:`PhysicsStage.replay` path, bit-identical
  to the coupled run and locked to the golden fixtures.  This remains the
  default everywhere: an unchanged campaign produces unchanged bytes.
* ``"batched"`` — the tensor path above.  Tolerance-locked, not bit-exact:
  the multi-RHS LAPACK kernels and ``np.exp`` may round the last ulp
  differently, and the nominal-power running average is reassociated into a
  cumulative sum.  ``tests/test_group_replay.py`` locks batched==exact at
  rtol/atol 1e-8.  Sub-groups of one cell still take the exact path — a
  batch of one is pure stacking overhead.
* ``"auto"`` — batches every sub-group with >= 2 cells whose cells agree on
  their DTM policy (no per-cell DTM divergence), exact otherwise.

Per-cell *warm-up* stays on the exact scalar fixed point (shared
factorization, per-cell iteration): the warm-up convergence test stops at a
0.05 C tolerance, so running cells in lock-step until the *slowest*
converges would move early-converging cells by far more than the 1e-8
contract allows.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dtm.controls import DTMControls, DTMTelemetry
from repro.dtm.policies import DTMPolicy
from repro.power.energy import build_block_parameters
from repro.power.leakage import batched_leakage_kernel
from repro.power.power_model import PowerModel
from repro.sim import blocks
from repro.sim.activity_trace import ActivityTrace
from repro.sim.config import ProcessorConfig
from repro.sim.results import IntervalRecord, SimulationResult
from repro.sim.warmcache import solver_bundle
from repro.thermal.floorplan import build_floorplan
from repro.thermal.solver import ThermalSolver

#: Accepted values of the ``replay_mode`` execution knob.
REPLAY_MODES = ("auto", "exact", "batched")

#: Equivalence contract of the batched path versus the exact per-cell path.
BATCHED_RTOL = 1e-8
BATCHED_ATOL = 1e-8


def validate_replay_mode(mode: str) -> str:
    """Normalize and validate a ``replay_mode`` value."""
    normalized = (mode or "auto").strip().lower()
    if normalized not in REPLAY_MODES:
        raise ValueError(
            f"replay_mode must be one of {', '.join(REPLAY_MODES)}, "
            f"not {mode!r}"
        )
    return normalized


def thermal_group_key(config: ProcessorConfig, block_areas: Dict[str, float]) -> str:
    """Hash of everything that shapes a cell's thermal network.

    Two configs of one timing-key group (same structure, same block names)
    with equal key here build the same floorplan, the same RC network and
    therefore the same factorization — the sharing unit of batched replay.
    The material is the ``thermal`` config section (R/C parameters, ambient,
    interval seconds, emergency limit) plus the block areas the floorplan is
    laid out from.
    """
    material = {
        "thermal": dataclasses.asdict(config.thermal),
        "areas": {name: float(area) for name, area in block_areas.items()},
    }
    payload = json.dumps(material, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _normalize_policy(policy) -> Optional[DTMPolicy]:
    if policy is None:
        return None
    if isinstance(policy, str):
        from repro.dtm import make_policy

        return make_policy(policy)
    return policy


class _GroupCell:
    """Per-cell bookkeeping of one batched replay group."""

    __slots__ = (
        "position",
        "config",
        "policy",
        "block_parameters",
        "block_areas",
        "power_model",
    )

    def __init__(self, position: int, config: ProcessorConfig, policy) -> None:
        self.position = position
        self.config = config
        self.policy = _normalize_policy(policy)
        self.block_parameters = build_block_parameters(config)
        self.block_areas = {
            name: params.area_mm2 for name, params in self.block_parameters.items()
        }
        self.power_model = PowerModel(config.power, self.block_parameters)


def exact_warmup_state(
    solver: ThermalSolver,
    power_model: PowerModel,
    config: ProcessorConfig,
    activity_counts: np.ndarray,
    cycles,
    gated_mask: Optional[np.ndarray],
    node_positions: np.ndarray,
) -> np.ndarray:
    """One cell's warm-up fixed point, bit-exact to :meth:`PhysicsStage.warmup`.

    Same seeding, same scalar leakage kernel, same per-cell convergence test
    — only the (temperature-independent) factorization is shared with the
    sub-group.  Returns the converged node-state vector.
    """
    leakage_model = power_model.leakage_model
    dynamic = power_model.dynamic_power_array(activity_counts, cycles, gated_mask)
    leakage_model.seed_nominal_power_array(dynamic)
    node_power = np.zeros(solver.network.num_nodes)

    def node_power_at(state: np.ndarray) -> np.ndarray:
        temperatures = state[node_positions]
        leakage = leakage_model.leakage_power_array(temperatures, gated_mask)
        node_power[:] = 0.0
        node_power[node_positions] = dynamic + leakage
        return node_power

    state, _ = solver.warmup_nodes(
        node_power_at,
        emergency_limit_celsius=config.thermal.emergency_limit_celsius,
    )
    return state


def batched_interval_walk(
    solver: ThermalSolver,
    node_positions: np.ndarray,
    states: np.ndarray,
    dynamic_tensor: np.ndarray,
    nominal_tensor: np.ndarray,
    fraction_col: np.ndarray,
    coefficient_col: np.ndarray,
    ambient_col: np.ndarray,
    gated_masks: Optional[np.ndarray],
    dts: Sequence[float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Advance every cell of one sub-group through all intervals together.

    ``states`` is the ``(nodes x cells)`` warm node-state matrix (mutated
    into the final states); ``dynamic_tensor`` / ``nominal_tensor`` are the
    precomputed ``(cells x intervals x blocks)`` dynamic-power and
    nominal-average tensors; the three ``(cells x 1)`` columns carry each
    cell's leakage parameters.  Per interval this performs exactly two
    batched kernels — the ``np.exp`` leakage over the ``(cells x blocks)``
    temperature matrix and one multi-RHS
    :meth:`~repro.thermal.solver.ThermalSolver.advance_nodes_batch` — and
    returns the ``(cells x intervals x blocks)`` temperature and leakage
    trajectories.
    """
    cells, intervals, blocks_ = dynamic_tensor.shape
    # Work in (blocks x cells) orientation throughout: the solver's native
    # column-per-cell layout.  One up-front transpose of the two tensors
    # replaces the two per-interval ``.T`` temporaries of the naive loop,
    # and the trajectories are written contiguously then viewed back to the
    # caller's (cells x intervals x blocks) layout at the end.  Elementwise
    # arithmetic does not reassociate, so this is bit-identical to the
    # cell-major spelling.
    temps_traj = np.empty((intervals, blocks_, cells))
    leak_traj = np.empty((intervals, blocks_, cells))
    dyn_t = np.ascontiguousarray(dynamic_tensor.transpose(1, 2, 0))
    nom_t = np.ascontiguousarray(nominal_tensor.transpose(1, 2, 0))
    fraction_row = fraction_col.T  # (1 x cells) views
    coefficient_row = coefficient_col.T
    ambient_row = ambient_col.T
    node_power = np.zeros((states.shape[0], cells))
    power_buf = np.empty((blocks_, cells))
    # Die blocks usually occupy the leading node positions in index order;
    # when they do, plain slices replace the fancy-index gather/scatter.
    contiguous = bool(
        np.array_equal(node_positions, np.arange(blocks_, dtype=node_positions.dtype))
    )
    # Per distinct interval length (all intervals but a truncated final one
    # share a dt), fetch the solver's precomputed affine advance and
    # restrict its power map to the block rows once: the hot loop then runs
    # on two gemms per interval, no factorized solve.  ``None`` (sparse
    # backend) falls back to the per-interval ``advance_nodes_batch``.
    affine_maps: Dict[float, Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
    for dt in dts:
        if dt not in affine_maps:
            full = solver.interval_affine_map(dt)
            if full is None:
                affine_maps[dt] = None
            else:
                propagator, source_map, offset = full
                affine_maps[dt] = (
                    propagator,
                    np.ascontiguousarray(source_map[:, node_positions]),
                    offset,
                )
    temps = states[:blocks_] if contiguous else states[node_positions, :]
    for i in range(intervals):
        leakage = batched_leakage_kernel(
            nom_t[i],
            temps,
            ambient_celsius=ambient_row,
            fraction_at_ambient=fraction_row,
            temperature_coefficient=coefficient_row,
        )
        if gated_masks is not None:
            leakage[gated_masks[i], :] = 0.0
        np.add(dyn_t[i], leakage, out=power_buf)
        affine = affine_maps[dts[i]]
        if affine is not None:
            propagator, power_map, offset = affine
            states = propagator @ states
            states += power_map @ power_buf
            states += offset
        else:
            if contiguous:
                node_power[:blocks_] = power_buf
            else:
                node_power[node_positions, :] = power_buf
            states = solver.advance_nodes_batch(states, node_power, dts[i])
        temps = states[:blocks_] if contiguous else states[node_positions, :]
        temps_traj[i] = temps
        leak_traj[i] = leakage
    return temps_traj.transpose(2, 0, 1), leak_traj.transpose(2, 0, 1)


def nominal_power_tensor(
    dynamic_tensor: np.ndarray, seeded: bool
) -> np.ndarray:
    """The leakage model's running average, precomputed for every interval.

    The exact path updates ``sum/n`` incrementally (observe, then evaluate);
    over a whole trace that running average is a cumulative sum.  With a
    warm-up, the first interval's dynamic power seeds the average before
    interval 0 observes it again — hence the extra ``D[:, 0]`` term and the
    ``n = i + 2`` denominator.  The reassociation (cumsum versus repeated
    ``+=``) is one of the documented last-ulp divergences of batched mode.
    """
    csum = np.cumsum(dynamic_tensor, axis=1)
    intervals = dynamic_tensor.shape[1]
    if seeded:
        denominator = np.arange(2, intervals + 2, dtype=float)[None, :, None]
        return (dynamic_tensor[:, 0:1, :] + csum) / denominator
    denominator = np.arange(1, intervals + 1, dtype=float)[None, :, None]
    return csum / denominator


def _reconstructed_dtm(
    policy: DTMPolicy, index, intervals: int
) -> Dict[str, object]:
    """Non-feedback-policy telemetry as a pure function of the interval count."""
    controls = DTMControls(index, table=policy.table)
    telemetry = DTMTelemetry(controls.table)
    for i in range(intervals):
        telemetry.record_interval(controls, gated=False, fetch_actuated=i > 0)
    return {"policy": policy.name, **telemetry.as_dict()}


def _replay_cell_exact(
    trace: ActivityTrace,
    config: ProcessorConfig,
    interval_cycles: Optional[int],
    policy,
    max_intervals: Optional[int],
    warmup: bool,
) -> SimulationResult:
    from repro.sim.engine import PhysicsStage

    stage = PhysicsStage(config, interval_cycles)
    return stage.replay(
        trace,
        max_intervals=max_intervals,
        warmup=warmup,
        dtm_policy=_normalize_policy(policy),
    )


def _replay_subgroup_batched(
    trace: ActivityTrace,
    cells: Sequence[_GroupCell],
    interval_cycles: int,
    intervals: int,
    warmup: bool,
) -> List[SimulationResult]:
    """The tensor path over one thermal sub-group (>= 2 cells)."""
    rep = cells[0]
    config = rep.config
    floorplan = build_floorplan(config, rep.block_areas)
    # Warm-cached: a persistent worker replaying many sub-groups of the
    # same thermal die factorizes once (see repro.sim.warmcache).
    network, solver = solver_bundle(floorplan, config.thermal)
    index = rep.power_model.index
    node_positions = network.node_positions(index.names)
    width = len(cells)
    interval_seconds = config.thermal.interval_seconds

    counts = trace.counts
    cycles = trace.cycles
    end_cycles = trace.end_cycles
    gated = None if trace.gated_masks is None else trace.gated_masks[:intervals]

    # Warm every cell on the exact scalar fixed point (see module docstring),
    # against the one shared factorization.
    states = np.empty((network.num_nodes, width))
    warmup_maps: List[Dict[str, float]] = []
    seeded = warmup and intervals > 0
    if seeded:
        gated0 = trace.gated_mask(0)
        cycles0 = int(cycles[0])
        for k, cell in enumerate(cells):
            state = exact_warmup_state(
                solver,
                cell.power_model,
                cell.config,
                counts[0],
                cycles0,
                gated0,
                node_positions,
            )
            states[:, k] = state
            warmup_maps.append(index.mapping_from_array(state[node_positions]))
    else:
        ambient_state = network.uniform_state(config.thermal.ambient_celsius)
        ambient_map = index.mapping_from_array(ambient_state[node_positions])
        for k in range(width):
            states[:, k] = ambient_state
            warmup_maps.append(dict(ambient_map))

    # Stack the whole sub-group's dynamic power: (cells x intervals x blocks).
    dynamic_tensor = np.stack(
        [
            cell.power_model.dynamic_power_matrix(
                counts[:intervals], cycles[:intervals], gated
            )
            for cell in cells
        ]
    )
    nominal_tensor = nominal_power_tensor(dynamic_tensor, seeded)
    fraction_col = np.array(
        [cell.config.power.leakage_fraction_at_ambient for cell in cells]
    )[:, None]
    coefficient_col = np.array(
        [cell.config.power.leakage_temperature_coefficient for cell in cells]
    )[:, None]
    ambient_col = np.array(
        [cell.config.power.ambient_celsius for cell in cells]
    )[:, None]
    dts = [
        interval_seconds * (int(cycles[i]) / interval_cycles)
        for i in range(intervals)
    ]

    temps_traj, leak_traj = batched_interval_walk(
        solver,
        node_positions,
        states,
        dynamic_tensor,
        nominal_tensor,
        fraction_col,
        coefficient_col,
        ambient_col,
        gated,
        dts,
    )

    results = []
    for k, cell in enumerate(cells):
        result = SimulationResult(
            config_name=cell.config.name,
            benchmark=trace.benchmark,
            stats=trace.stats_copy(),
            block_names=list(cell.block_parameters.keys()),
            block_groups=blocks.block_groups(cell.config),
            block_areas_mm2=cell.block_areas,
            ambient_celsius=cell.config.thermal.ambient_celsius,
            provenance={
                "interval_cycles": interval_cycles,
                "replayed": True,
                "replay_mode": "batched",
            },
        )
        for i in range(intervals):
            result.intervals.append(
                IntervalRecord.from_arrays(
                    cycle=int(end_cycles[i]),
                    seconds=(i + 1) * interval_seconds,
                    block_names=index.names,
                    dynamic_power=dynamic_tensor[k, i],
                    leakage_power=leak_traj[k, i],
                    temperature=temps_traj[k, i],
                )
            )
        result.warmup_temperature = warmup_maps[k]
        if cell.policy is not None:
            result.dtm = _reconstructed_dtm(cell.policy, index, intervals)
        results.append(result)
    return results


def replay_group(
    trace: ActivityTrace,
    configs: Sequence[ProcessorConfig],
    interval_cycles: Optional[int] = None,
    *,
    dtm_policies: Optional[Sequence[Union[DTMPolicy, str, None]]] = None,
    replay_mode: str = "auto",
    max_intervals: Optional[int] = None,
    warmup: bool = True,
) -> List[SimulationResult]:
    """Replay one captured trace under many physics variants at once.

    The group analogue of :meth:`~repro.sim.engine.PhysicsStage.replay`:
    ``configs`` are the physics variants of one timing-key group (same
    structure and block names — each is validated against the trace exactly
    as the per-cell path validates), ``dtm_policies`` optionally attaches a
    non-feedback policy per cell.  Results come back in ``configs`` order,
    each equivalent to ``PhysicsStage(config).replay(trace, ...)`` — bit-
    identical in ``"exact"`` mode, within :data:`BATCHED_RTOL` /
    :data:`BATCHED_ATOL` in ``"batched"``/``"auto"`` (see module docstring
    for the mode semantics and sub-grouping).
    """
    mode = validate_replay_mode(replay_mode)
    configs = list(configs)
    if not configs:
        return []
    if dtm_policies is None:
        policies: List = [None] * len(configs)
    else:
        policies = list(dtm_policies)
        if len(policies) != len(configs):
            raise ValueError(
                f"{len(policies)} DTM policies for {len(configs)} configs"
            )
    for policy in policies:
        normalized = _normalize_policy(policy)
        if normalized is not None and normalized.feedback:
            raise ValueError(
                f"DTM policy {normalized.name!r} actuates on temperatures; "
                "its cells must be simulated coupled, not replayed"
            )

    resolved_interval = interval_cycles or configs[0].thermal.interval_cycles
    intervals = len(trace)
    if max_intervals is not None:
        intervals = min(intervals, max_intervals)

    if mode == "exact" or len(configs) == 1:
        return [
            _replay_cell_exact(
                trace, config, interval_cycles, policy, max_intervals, warmup
            )
            for config, policy in zip(configs, policies)
        ]

    # Sub-group by thermal/floorplan key; validate each cell against the
    # trace with the same checks (and error text) as the per-cell path.
    cells = [
        _GroupCell(position, config, policy)
        for position, (config, policy) in enumerate(zip(configs, policies))
    ]
    for cell in cells:
        if list(trace.block_names) != list(cell.power_model.index.names):
            raise ValueError(
                "activity trace was captured over a different block set; "
                "it cannot be replayed on this configuration"
            )
        cell_interval = interval_cycles or cell.config.thermal.interval_cycles
        if trace.interval_cycles != cell_interval:
            raise ValueError(
                f"activity trace was captured at interval_cycles="
                f"{trace.interval_cycles}, not {cell_interval}"
            )

    subgroups: Dict[str, List[_GroupCell]] = {}
    for cell in cells:
        subgroups.setdefault(
            thermal_group_key(cell.config, cell.block_areas), []
        ).append(cell)

    results: List[Optional[SimulationResult]] = [None] * len(configs)
    for members in subgroups.values():
        policy_names = {
            None if cell.policy is None else cell.policy.name for cell in members
        }
        batch = len(members) >= 2 and (mode == "batched" or len(policy_names) == 1)
        if batch:
            for cell, result in zip(
                members,
                _replay_subgroup_batched(
                    trace, members, resolved_interval, intervals, warmup
                ),
            ):
                results[cell.position] = result
        else:
            for cell in members:
                results[cell.position] = _replay_cell_exact(
                    trace,
                    cell.config,
                    interval_cycles,
                    cell.policy,
                    max_intervals,
                    warmup,
                )
    return results  # type: ignore[return-value]
